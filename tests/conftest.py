"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import pytest

from repro.baselines.static_dbscan import StaticClustering, dbscan_brute
from repro.core.framework import Clustering

Point = Tuple[float, ...]


def canonical_clusters(
    clusters: Iterable[Set[int]], idmap: Dict[int, int]
) -> FrozenSet[FrozenSet[int]]:
    """Clusters translated through ``idmap`` into an order-free form."""
    return frozenset(frozenset(idmap[pid] for pid in c) for c in clusters)


def assert_matches_static(
    clustering: Clustering,
    idmap: Dict[int, int],
    reference: StaticClustering,
) -> None:
    """Exact equality of a dynamic clustering with the static oracle."""
    got = canonical_clusters(clustering.clusters, idmap)
    want = reference.canonical()
    assert got == want, f"clusters differ:\n got {got}\nwant {want}"
    got_noise = {idmap[pid] for pid in clustering.noise}
    assert got_noise == reference.noise, (
        f"noise differs: got {got_noise}, want {reference.noise}"
    )


def random_points(
    n: int, dim: int, extent: float, seed: int
) -> List[Point]:
    rng = random.Random(seed)
    return [tuple(rng.random() * extent for _ in range(dim)) for _ in range(n)]


def clustered_points(
    n: int, dim: int, seed: int, centers: int = 4, spread: float = 1.5
) -> List[Point]:
    """A few Gaussian blobs plus scattered outliers — varied densities."""
    rng = random.Random(seed)
    hubs = [tuple(rng.random() * 30 for _ in range(dim)) for _ in range(centers)]
    points: List[Point] = []
    for i in range(n):
        if i % 10 == 9:
            points.append(tuple(rng.random() * 30 for _ in range(dim)))
        else:
            hub = hubs[i % centers]
            points.append(tuple(c + rng.gauss(0, spread) for c in hub))
    return points


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def brute_reference(
    points: Sequence[Point], eps: float, minpts: int
) -> StaticClustering:
    return dbscan_brute(points, eps, minpts)
