"""Streaming scenarios: arrival regimes, traffic mixes, window runs.

Satellites of the service PR: the burst-arrival / evolving-density
seed-spreader regimes (:mod:`repro.workload.seed_spreader`), the
fit-and-sample :class:`TrafficMixSampler`
(:mod:`repro.workload.traffic`), and the sliding-window scenario
builder + runner (:mod:`repro.workload.scenarios`).
"""

from __future__ import annotations

import math

import pytest

import repro.api as api
from repro.errors import ConfigError
from repro.workload import (
    RunResult,
    SlidingWindowScenario,
    TrafficMixSampler,
    TrafficOp,
    burst_arrival_stream,
    default_service_mix,
    evolving_density_stream,
    run_sliding_window,
    sliding_window_scenario,
)
from repro.workload.traffic import DEFAULT_SERVICE_TRACE


def _flat(batches):
    return [p for batch in batches for p in batch]


class TestBurstArrivalStream:
    def test_total_points_and_dim(self):
        batches = burst_arrival_stream(500, 3, seed=7)
        points = _flat(batches)
        assert len(points) == 500
        assert all(len(p) == 3 for p in points)
        assert all(batch for batch in batches), "no empty ticks"

    def test_deterministic_under_seed(self):
        a = burst_arrival_stream(400, 2, seed=42)
        b = burst_arrival_stream(400, 2, seed=42)
        assert a == b
        c = burst_arrival_stream(400, 2, seed=43)
        assert a != c

    def test_burstiness_has_two_modes(self):
        """Hot ticks are an order of magnitude larger than quiet ones;
        a long run must show both small and large batches."""
        sizes = [len(b) for b in burst_arrival_stream(4000, 2, seed=1)]
        assert min(sizes) <= 8
        assert max(sizes) >= 48
        # Heavy tail: the biggest tick dwarfs the median.
        sizes.sort()
        median = sizes[len(sizes) // 2]
        assert sizes[-1] >= 4 * median

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_arrival_stream(0, 2)
        with pytest.raises(ValueError):
            burst_arrival_stream(10, 0)
        with pytest.raises(ValueError):
            burst_arrival_stream(10, 2, quiet_mean=0)
        with pytest.raises(ValueError):
            burst_arrival_stream(10, 2, hot_probability=1.5)


class TestEvolvingDensityStream:
    def test_total_points_and_tick_size(self):
        batches = evolving_density_stream(325, 2, seed=3, tick_size=50)
        assert [len(b) for b in batches[:-1]] == [50] * 6
        assert len(batches[-1]) == 25
        assert all(len(p) == 2 for p in _flat(batches))

    def test_deterministic_under_seed(self):
        a = evolving_density_stream(300, 2, seed=11)
        b = evolving_density_stream(300, 2, seed=11)
        assert a == b
        assert a != evolving_density_stream(300, 2, seed=12)

    def test_density_actually_evolves(self):
        """Early arrivals are diffuse, late arrivals dense: the mean
        nearest-neighbor spacing must shrink from head to tail."""

        def mean_nn(points):
            total = 0.0
            for i, p in enumerate(points):
                best = math.inf
                for j, q in enumerate(points):
                    if i != j:
                        d = math.dist(p, q)
                        if d < best:
                            best = d
                total += best
            return total / len(points)

        pts = _flat(
            evolving_density_stream(
                600,
                2,
                seed=5,
                start_radius=150.0,
                end_radius=25.0,
                noise_fraction=0.0,
            )
        )
        head, tail = pts[:150], pts[-150:]
        assert mean_nn(tail) < mean_nn(head)

    def test_validation(self):
        with pytest.raises(ValueError):
            evolving_density_stream(0, 2)
        with pytest.raises(ValueError):
            evolving_density_stream(10, 2, tick_size=0)
        with pytest.raises(ValueError):
            evolving_density_stream(10, 2, start_radius=0.0)


class TestTrafficMixSampler:
    def test_fit_and_weights(self):
        sampler = TrafficMixSampler.fit(
            [("ingest", 10), ("ingest", 20), ("cgroup_by", 5), ("ingest", 10)]
        )
        assert sampler.kinds == ["cgroup_by", "ingest"]
        assert sampler.weight("ingest") == pytest.approx(0.75)
        assert sampler.weight("cgroup_by") == pytest.approx(0.25)
        assert sampler.weight("unheard_of") == 0.0

    def test_sample_is_deterministic_and_from_support(self):
        sampler = default_service_mix()
        a = sampler.sample(200, seed=9)
        b = sampler.sample(200, seed=9)
        assert a == b
        assert a != sampler.sample(200, seed=10)
        support = set(DEFAULT_SERVICE_TRACE)
        assert all((op.kind, op.size) in support for op in a)
        assert all(isinstance(op, TrafficOp) for op in a)

    def test_sample_tracks_fitted_weights(self):
        sampler = default_service_mix()
        ops = sampler.sample(3000, seed=1)
        for kind in sampler.kinds:
            got = sum(1 for op in ops if op.kind == kind) / len(ops)
            assert got == pytest.approx(sampler.weight(kind), abs=0.05)

    def test_describe_summarizes_each_kind(self):
        sampler = TrafficMixSampler.fit([("ingest", 10), ("ingest", 30)])
        summary = sampler.describe()
        assert summary["ingest"]["weight"] == 1.0
        assert summary["ingest"]["mean_size"] == 20.0
        assert summary["ingest"]["max_size"] == 30.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrafficMixSampler({})
        with pytest.raises(ConfigError):
            TrafficMixSampler({"ingest": []})
        with pytest.raises(ConfigError):
            TrafficMixSampler({"ingest": [0]})
        with pytest.raises(ConfigError):
            default_service_mix().sample(-1)

    def test_empty_sample(self):
        assert default_service_mix().sample(0, seed=4) == []


class TestSlidingWindowScenario:
    def test_defaults(self):
        scenario = sliding_window_scenario(400, 2, seed=8)
        assert scenario.capacity == 100  # n // 4
        assert scenario.arrival == "burst"
        assert scenario.dim == 2
        assert scenario.total_points == 400

    def test_capacity_floor_for_tiny_n(self):
        assert sliding_window_scenario(2, 2, seed=8).capacity == 1

    @pytest.mark.parametrize("arrival", ["burst", "evolving"])
    def test_arrival_regimes(self, arrival):
        scenario = sliding_window_scenario(300, 2, arrival=arrival, seed=8)
        assert scenario.arrival == arrival
        assert scenario.total_points == 300

    def test_validation(self):
        with pytest.raises(ConfigError):
            sliding_window_scenario(100, 2, arrival="tsunami")
        with pytest.raises(ConfigError):
            sliding_window_scenario(100, 2, query_frequency=0)
        with pytest.raises(ConfigError):
            sliding_window_scenario(100, 2, query_size=0)


class TestRunSlidingWindow:
    @staticmethod
    def _engine(**overrides):
        knobs = dict(algorithm="full", eps=2.0, minpts=3, rho=0.0, dim=2)
        knobs.update(overrides)
        return api.open(**knobs)

    def test_result_shape_and_scenario_stamp(self):
        scenario = sliding_window_scenario(
            200, 2, capacity=50, query_frequency=3, seed=17
        )
        with self._engine() as engine:
            result = run_sliding_window(engine, scenario)
        assert isinstance(result, RunResult)
        assert result.scenario == "sliding-window"
        assert result.shards == 1
        kinds = set(result.op_kinds)
        assert kinds == {"window_append", "query"}
        assert len(result.op_kinds) == len(result.op_costs)
        assert len(result.op_kinds) == len(result.op_sizes)
        appends = result.op_kinds.count("window_append")
        assert appends == len(scenario.batches)
        # Every append's size covers its inserts plus its expiries:
        # totals across the run are n inserts + (n - capacity) expiries.
        append_sizes = [
            s
            for k, s in zip(result.op_kinds, result.op_sizes)
            if k == "window_append"
        ]
        assert sum(append_sizes) == 200 + (200 - 50)
        assert all(c >= 0 for c in result.op_costs)

    def test_same_scenario_same_op_sequence(self):
        """Two runs of one scenario execute identical op sequences
        (costs differ, kinds and sizes don't)."""
        scenario = sliding_window_scenario(150, 2, seed=23)
        with self._engine() as a, self._engine() as b:
            ra = run_sliding_window(a, scenario)
            rb = run_sliding_window(b, scenario)
        assert ra.op_kinds == rb.op_kinds
        assert ra.op_sizes == rb.op_sizes

    def test_max_batches_prefix(self):
        scenario = sliding_window_scenario(
            200, 2, arrival="evolving", seed=2
        )
        with self._engine() as engine:
            result = run_sliding_window(engine, scenario, max_batches=2)
            assert result.op_kinds.count("window_append") == 2
            fed = sum(len(b) for b in scenario.batches[:2])
            assert len(engine) == min(fed, scenario.capacity)

    def test_window_capacity_is_respected_end_to_end(self):
        scenario = sliding_window_scenario(120, 2, capacity=30, seed=5)
        with self._engine() as engine:
            run_sliding_window(engine, scenario)
            assert len(engine) == 30

    def test_sharded_engine_runs_scenario(self):
        scenario = sliding_window_scenario(120, 2, capacity=40, seed=19)
        with self._engine(shards=2, shard_executor="serial") as engine:
            result = run_sliding_window(engine, scenario)
        assert result.scenario == "sliding-window"
        assert result.shards == 2
        assert result.transport == "inline"
