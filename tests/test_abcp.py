"""Tests for the aBCP witness-pair protocol (Lemma 3)."""

from __future__ import annotations

import random
from typing import Dict

import pytest

from repro.core.abcp import ABCPInstance, RescanBCP, SIDE_A, SIDE_B
from repro.geometry.emptiness import EmptinessStructure
from repro.geometry.points import sq_dist


class Harness:
    """Two cells' emptiness structures plus a brute-force oracle."""

    def __init__(self, eps: float = 1.0, rho: float = 0.0, dim: int = 2):
        self.eps = eps
        self.rho = rho
        self.empt = (
            EmptinessStructure(dim, eps, rho),
            EmptinessStructure(dim, eps, rho),
        )
        self.coords: Dict[int, tuple] = {}
        self.side_of: Dict[int, int] = {}
        self.next_id = 0

    def add(self, side: int, point) -> int:
        pid = self.next_id
        self.next_id += 1
        self.coords[pid] = tuple(point)
        self.side_of[pid] = side
        self.empt[side].insert(pid, tuple(point))
        return pid

    def remove(self, pid: int) -> int:
        side = self.side_of.pop(pid)
        self.empt[side].delete(pid)
        return side

    def make(self, cls=ABCPInstance):
        return cls(self.empt[0], self.empt[1], self.coords.__getitem__)

    def exists_tight_pair(self) -> bool:
        sq_eps = self.eps * self.eps
        a_side = [p for p, s in self.side_of.items() if s == SIDE_A]
        b_side = [p for p, s in self.side_of.items() if s == SIDE_B]
        return any(
            sq_dist(self.coords[a], self.coords[b]) <= sq_eps
            for a in a_side
            for b in b_side
        )

    def check_contract(self, inst: ABCPInstance) -> None:
        if self.exists_tight_pair():
            assert inst.has_witness, "witness must exist when a pair is <= eps"
        if inst.has_witness:
            a, b = inst.witness
            assert self.side_of[a] == SIDE_A and self.side_of[b] == SIDE_B
            relaxed = self.eps * (1 + self.rho)
            assert sq_dist(self.coords[a], self.coords[b]) <= relaxed**2 + 1e-12


class TestInitialScan:
    def test_empty_cells_no_witness(self):
        h = Harness()
        inst = h.make()
        assert not inst.has_witness

    def test_finds_existing_pair(self):
        h = Harness()
        h.add(SIDE_A, (0.0, 0.0))
        h.add(SIDE_B, (0.5, 0.0))
        inst = h.make()
        h.check_contract(inst)
        assert inst.has_witness

    def test_no_pair_no_witness(self):
        h = Harness()
        h.add(SIDE_A, (0.0, 0.0))
        h.add(SIDE_B, (5.0, 0.0))
        inst = h.make()
        assert not inst.has_witness

    def test_early_exit_suffix_still_covered(self):
        """The fix documented in the module: initial points after the first
        witness must be de-listable later."""
        h = Harness()
        a1 = h.add(SIDE_A, (0.0, 0.0))
        a2 = h.add(SIDE_A, (0.0, 2.0))
        h.add(SIDE_B, (0.9, 0.0))   # pairs with a1
        b2 = h.add(SIDE_B, (0.9, 2.0))   # pairs with a2
        inst = h.make()
        assert inst.has_witness
        # Remove the first pair entirely; (a2, b2) must surface.
        w = inst.witness
        for pid in w:
            side = h.remove(pid)
            inst.delete(pid, side)
        h.check_contract(inst)
        assert inst.has_witness
        assert set(inst.witness) == {a2, b2}


class TestUpdates:
    def test_insert_creates_witness(self):
        h = Harness()
        h.add(SIDE_A, (0.0, 0.0))
        inst = h.make()
        assert not inst.has_witness
        b = h.add(SIDE_B, (0.8, 0.0))
        inst.insert(b, SIDE_B)
        assert inst.has_witness
        h.check_contract(inst)

    def test_delete_nonwitness_keeps_witness(self):
        h = Harness()
        a = h.add(SIDE_A, (0.0, 0.0))
        b = h.add(SIDE_B, (0.5, 0.0))
        inst = h.make()
        far = h.add(SIDE_A, (0.0, 9.0))
        inst.insert(far, SIDE_A)
        w = inst.witness
        h.remove(far)
        inst.delete(far, SIDE_A)
        assert inst.witness == w

    def test_delete_witness_repairs_from_partner(self):
        h = Harness()
        a1 = h.add(SIDE_A, (0.0, 0.0))
        a2 = h.add(SIDE_A, (0.1, 0.0))
        b = h.add(SIDE_B, (0.6, 0.0))
        inst = h.make()
        assert inst.has_witness
        wa = inst.witness[SIDE_A]
        h.remove(wa)
        inst.delete(wa, SIDE_A)
        assert inst.has_witness
        h.check_contract(inst)

    def test_delete_last_pair_clears_witness(self):
        h = Harness()
        a = h.add(SIDE_A, (0.0, 0.0))
        b = h.add(SIDE_B, (0.5, 0.0))
        inst = h.make()
        h.remove(a)
        inst.delete(a, SIDE_A)
        assert not inst.has_witness

    def test_rho_relaxed_witness_allowed(self):
        h = Harness(eps=1.0, rho=0.5)
        h.add(SIDE_A, (0.0, 0.0))
        h.add(SIDE_B, (1.2, 0.0))  # in the don't-care band
        inst = h.make()
        # Witness may or may not exist, but if it does it must be <= 1.5.
        h.check_contract(inst)


class TestRandomizedContract:
    @pytest.mark.parametrize("rho", [0.0, 0.3])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_contract_under_churn(self, rho, seed):
        rng = random.Random(seed)
        h = Harness(eps=1.0, rho=rho)
        # Both squares near each other so pairs form and break often.
        for _ in range(rng.randrange(6)):
            h.add(SIDE_A, (rng.uniform(0, 1), rng.uniform(0, 2)))
        for _ in range(rng.randrange(6)):
            h.add(SIDE_B, (rng.uniform(1.2, 2.2), rng.uniform(0, 2)))
        inst = h.make()
        h.check_contract(inst)
        for _ in range(300):
            live = list(h.side_of)
            if live and rng.random() < 0.45:
                pid = rng.choice(live)
                side = h.remove(pid)
                inst.delete(pid, side)
            else:
                side = rng.randrange(2)
                x = rng.uniform(0, 1) if side == SIDE_A else rng.uniform(1.2, 2.2)
                pid = h.add(side, (x, rng.uniform(0, 2)))
                inst.insert(pid, side)
            h.check_contract(inst)

    @pytest.mark.parametrize("cls", [ABCPInstance, RescanBCP])
    @pytest.mark.parametrize("seed", [5, 6])
    def test_rescan_baseline_same_contract(self, cls, seed):
        """The ablation baseline must satisfy the identical contract."""
        rng = random.Random(seed)
        h = Harness(eps=1.0, rho=0.0)
        for _ in range(4):
            h.add(SIDE_A, (rng.uniform(0, 1), rng.uniform(0, 2)))
            h.add(SIDE_B, (rng.uniform(1.2, 2.2), rng.uniform(0, 2)))
        inst = h.make(cls)
        h.check_contract(inst)
        for _ in range(250):
            live = list(h.side_of)
            if live and rng.random() < 0.5:
                pid = rng.choice(live)
                side = h.remove(pid)
                inst.delete(pid, side)
            else:
                side = rng.randrange(2)
                x = rng.uniform(0, 1) if side == SIDE_A else rng.uniform(1.2, 2.2)
                pid = h.add(side, (x, rng.uniform(0, 2)))
                inst.insert(pid, side)
            h.check_contract(inst)

    def test_amortized_queries_bounded(self):
        """Each point should be de-listed at most once: the pending queue
        never grows beyond total insertions."""
        rng = random.Random(42)
        h = Harness()
        inst = h.make()
        inserts = 0
        for _ in range(500):
            live = list(h.side_of)
            if live and rng.random() < 0.5:
                pid = rng.choice(live)
                side = h.remove(pid)
                inst.delete(pid, side)
            else:
                side = rng.randrange(2)
                x = rng.uniform(0, 1) if side == SIDE_A else rng.uniform(3.0, 4.0)
                pid = h.add(side, (x, rng.uniform(0, 1)))
                inst.insert(pid, side)
                inserts += 1
            assert len(inst._pending) <= inserts
