"""Chaos suite: injected worker failures against supervised recovery.

The fault-tolerance tentpole's proof obligations, each pinned by a
test driven through :mod:`repro.shard.faults` plans rather than
hand-rolled monkeypatching:

* a **crashed** worker (``os._exit`` mid-call) is respawned and its
  journal replayed, and the recovered deployment's queries and
  snapshot are **bit-identical** to an unsharded engine's at
  ``rho = 0`` — the same differential bar the router clears;
* a **hung** worker surfaces as :class:`repro.errors.ShardTimeoutError`
  within the configured deadline and recovers the same way; with
  recovery disabled the failure lands within twice the deadline,
  never hanging pytest;
* restarts are **budgeted** (``shard_max_restarts``), counted in
  ``ShardedStats.restarts`` / ``RunResult.restarts``, and exhausting
  the budget names the knob;
* an :class:`IngestSession` whose flush dies mid-way is atomic: the
  deployment either recovers and applies the flush exactly, or fails
  loudly on every later merge — never a silent half-application;
* injected backend *errors* relay without any restart, ``delay``
  faults inside the deadline are invisible, and no shared-memory
  segment outlives ``close()`` even after crashes.

Transport note: tests that do not pin ``shard_transport`` follow
``REPRO_SHARD_TRANSPORT``, which is how the CI chaos leg sweeps the
pickle and shm transports over this whole file.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro.api as api
from repro.api.config import EngineConfig
from repro.errors import ConfigError, ReproError, ShardTimeoutError
from repro.shard.faults import (
    FaultInjector,
    FaultRule,
    injector_for,
    parse_fault_plan,
)
from repro.workload.runner import run_workload_engine
from repro.workload.workload import generate_workload

BASE = dict(algorithm="full", eps=3.0, minpts=5, dim=2)


def _points(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, 50.0, size=(n, 2))


def _open_sharded(**knobs):
    opts = dict(BASE, shards=2, shard_executor="process")
    opts.update(knobs)
    return api.open(**opts)


def _open_single():
    return api.open(**BASE)


def _snap_canon(snapshot):
    return [sorted(map(sorted, snapshot.clusters)), sorted(snapshot.noise)]


# ----------------------------------------------------------------------
# Plan parsing and injector semantics (no processes involved)
# ----------------------------------------------------------------------


def test_parse_fault_plan_full_syntax():
    rules = parse_fault_plan(
        "crash:ingest:2; hang:merge_state:1:shard=1:seconds=0.25 ;"
        "delay:ping:3:incarnation=*;error:delete_many:1:incarnation=2"
    )
    assert rules == (
        FaultRule(kind="crash", method="ingest", nth=2),
        FaultRule(
            kind="hang", method="merge_state", nth=1, shard=1, seconds=0.25
        ),
        FaultRule(kind="delay", method="ping", nth=3, incarnation=None),
        FaultRule(kind="error", method="delete_many", nth=1, incarnation=2),
    )
    # Defaults: every shard, built-in sleep, incarnation 0 only.
    assert rules[0].shard is None
    assert rules[0].seconds is None
    assert rules[0].incarnation == 0


@pytest.mark.parametrize(
    "spec",
    [
        "",
        " ; ",
        "crash:ingest",  # no call index
        "teleport:ingest:1",  # unknown kind
        "crash::1",  # no method
        "crash:ingest:zero",  # non-integer index
        "crash:ingest:0",  # 1-based
        "crash:ingest:-1",
        "crash:ingest:1:shard=x",
        "crash:ingest:1:shard=-1",
        "hang:ingest:1:seconds=soon",
        "hang:ingest:1:seconds=-1",
        "crash:ingest:1:incarnation=first",
        "crash:ingest:1:incarnation=-1",
        "crash:ingest:1:when=now",  # unknown option
        "crash:ingest:1:shard",  # option without '='
    ],
)
def test_parse_fault_plan_rejects_malformed(spec):
    with pytest.raises(ConfigError):
        parse_fault_plan(spec)


def test_injector_counts_calls_and_filters_by_shard():
    rules = parse_fault_plan("error:ingest:2:shard=1")
    wrong_shard = FaultInjector(rules, shard_index=0, incarnation=0)
    for _ in range(5):
        wrong_shard.fire("ingest")  # never fires off-shard
    right_shard = FaultInjector(rules, shard_index=1, incarnation=0)
    right_shard.fire("ingest")
    right_shard.fire("ping")  # counting is per method name
    with pytest.raises(ReproError, match="injected fault"):
        right_shard.fire("ingest")
    # nth means *exactly* the Nth call, not every call from it on.
    right_shard.fire("ingest")


def test_injector_filters_by_incarnation():
    rules = parse_fault_plan("error:ingest:1")
    replayer = FaultInjector(rules, shard_index=0, incarnation=1)
    replayer.fire("ingest")  # armed only in incarnation 0: silent
    every = FaultInjector(
        parse_fault_plan("error:ingest:1:incarnation=*"),
        shard_index=0,
        incarnation=4,
    )
    with pytest.raises(ReproError, match="injected fault"):
        every.fire("ingest")


def test_injector_for_is_none_when_no_plan():
    assert injector_for(None, 0, 0) is None
    assert injector_for("", 0, 0) is None
    assert injector_for("crash:ingest:1", 0, 0) is not None


# ----------------------------------------------------------------------
# Crash recovery: restart + exact replay
# ----------------------------------------------------------------------


def test_crash_recovery_is_bit_identical_to_single_engine():
    """The flagship differential: both workers crash mid-run, the
    supervisor restarts them and replays their journals (including a
    delete batch), and at rho=0 nothing distinguishes the recovered
    deployment from an engine that never failed."""
    pts = _points(120, seed=42)
    single = _open_single()
    sharded = _open_sharded(shard_fault_plan="crash:ingest:2")
    try:
        s_ids = single.ingest(pts[:60])
        g_ids = sharded.ingest(pts[:60])
        single.delete_many(s_ids[:10])
        sharded.delete_many(g_ids[:10])
        # Second ingest call per worker: every shard crashes here, so
        # recovery replays ingest + delete_many before retrying.
        s_ids2 = single.ingest(pts[60:])
        g_ids2 = sharded.ingest(pts[60:])
        assert sharded.restarts >= 1
        assert sharded.stats().restarts == sharded.restarts
        live_s = s_ids[10:] + s_ids2
        live_g = g_ids[10:] + g_ids2
        assert (
            single.cgroup_by(live_s).result
            == sharded.cgroup_by(live_g).result
        )
        assert _snap_canon(single.snapshot().clustering) == _snap_canon(
            sharded.snapshot().clustering
        )
        assert len(single) == len(sharded)
    finally:
        single.close()
        sharded.close()


def test_hang_recovery_is_bit_identical_to_single_engine():
    pts = _points(100, seed=7)
    single = _open_single()
    sharded = _open_sharded(
        shard_fault_plan="hang:ingest:1:shard=0",
        shard_call_timeout=1.0,
    )
    try:
        s_ids = single.ingest(pts)
        g_ids = sharded.ingest(pts)  # shard 0 hangs, times out, recovers
        assert sharded.restarts == 1
        assert (
            single.cgroup_by(s_ids).result == sharded.cgroup_by(g_ids).result
        )
        assert _snap_canon(single.snapshot().clustering) == _snap_canon(
            sharded.snapshot().clustering
        )
    finally:
        single.close()
        sharded.close()


def test_hung_worker_fails_within_twice_the_deadline():
    """With recovery disabled a hang must surface as a bounded, typed
    failure — the deadline doing its one job.  The budget-exhaustion
    error chains from the timeout that spent the budget."""
    timeout = 0.75
    sharded = _open_sharded(
        shard_fault_plan="hang:ingest:1:shard=0",
        shard_call_timeout=timeout,
        shard_max_restarts=0,
    )
    try:
        start = time.monotonic()
        with pytest.raises(ReproError, match="restart budget") as excinfo:
            sharded.ingest(_points(80))
        elapsed = time.monotonic() - start
        assert elapsed <= 2 * timeout, (
            f"hung worker took {elapsed:.2f}s to fail against a "
            f"{timeout:g}s deadline"
        )
        assert isinstance(excinfo.value.__cause__, ShardTimeoutError)
    finally:
        sharded.close()


def test_restart_budget_exhaustion_names_the_knob():
    # incarnation=* re-arms the crash in every respawned worker, so
    # each recovery attempt dies again until the budget runs out.
    sharded = _open_sharded(
        shard_fault_plan="crash:ingest:1:shard=0:incarnation=*",
        shard_max_restarts=2,
    )
    try:
        with pytest.raises(ReproError, match="shard_max_restarts=2"):
            sharded.ingest(_points(80))
        assert sharded.restarts == 2  # the budget was actually spent
    finally:
        sharded.close()


def test_delay_fault_within_deadline_is_invisible():
    pts = _points(90, seed=3)
    single = _open_single()
    sharded = _open_sharded(
        shard_fault_plan="delay:ingest:1:seconds=0.2",
        shard_call_timeout=30.0,
    )
    try:
        s_ids = single.ingest(pts)
        g_ids = sharded.ingest(pts)
        assert sharded.restarts == 0  # slow is not dead
        assert (
            single.cgroup_by(s_ids).result == sharded.cgroup_by(g_ids).result
        )
    finally:
        single.close()
        sharded.close()


def test_injected_error_relays_without_restart():
    sharded = _open_sharded(shard_fault_plan="error:ingest:1:shard=0")
    try:
        with pytest.raises(ReproError, match="injected fault"):
            sharded.ingest(_points(80))
        # The worker survived its own exception: nothing was restarted.
        assert sharded.restarts == 0
    finally:
        sharded.close()


def test_restarts_are_stamped_into_run_results():
    workload = generate_workload(
        60, 2, insert_fraction=1.0, query_frequency=25, seed=99
    )
    sharded = _open_sharded(
        batch_size=20, shard_fault_plan="crash:ingest:1:shard=0"
    )
    try:
        result = run_workload_engine(sharded, workload)
        assert result.restarts >= 1
        assert result.restarts == sharded.restarts
        assert result.shards == 2
    finally:
        sharded.close()


def test_journal_truncation_recovery_is_bit_identical():
    """Snapshot-and-truncate keeps the journal bounded without losing a
    single mutation: a worker that crashes *after* its journal has been
    truncated recovers from snapshot + suffix, and the recovered
    deployment stays bit-identical to an unsharded engine at rho=0."""
    every = 4
    pts = _points(140, seed=23)
    single = _open_single()
    sharded = _open_sharded(
        shard_fault_plan="crash:ingest:7:shard=0",
        shard_journal_snapshot_every=every,
    )
    try:
        supervisor = sharded.raw.executor
        s_ids, g_ids = [], []
        # Eight small batches: by the 7th ingest, shard 0 has truncated
        # its journal at least once, so recovery must chain
        # restore_state with the replayed suffix.
        for lo in range(0, 112, 14):
            s_ids.extend(single.ingest(pts[lo : lo + 14]))
            g_ids.extend(sharded.ingest(pts[lo : lo + 14]))
        single.delete_many(s_ids[:20])
        sharded.delete_many(g_ids[:20])
        s_ids2 = single.ingest(pts[112:])
        g_ids2 = sharded.ingest(pts[112:])
        assert sharded.restarts == 1
        assert supervisor.has_snapshot(0)
        assert supervisor.journal_size(0) < every
        live_s = s_ids[20:] + s_ids2
        live_g = g_ids[20:] + g_ids2
        assert (
            single.cgroup_by(live_s).result
            == sharded.cgroup_by(live_g).result
        )
        assert _snap_canon(single.snapshot().clustering) == _snap_canon(
            sharded.snapshot().clustering
        )
        assert len(single) == len(sharded)
    finally:
        single.close()
        sharded.close()


# ----------------------------------------------------------------------
# IngestSession atomicity under mid-flush worker death
# ----------------------------------------------------------------------


def test_session_flush_through_worker_crash_recovers_exactly():
    pts = _points(110, seed=11)
    single = _open_single()
    sharded = _open_sharded(shard_fault_plan="crash:ingest:1:shard=0")
    try:
        with single.session() as ref:
            ref.ingest_many(pts)
        with sharded.session() as session:
            session.ingest_many(pts)
        # The flush's fan-out killed shard 0's worker; recovery happened
        # inside the flush, which then completed as if nothing died.
        assert sharded.restarts >= 1
        assert _snap_canon(single.snapshot().clustering) == _snap_canon(
            sharded.snapshot().clustering
        )
        assert len(sharded) == len(pts)
    finally:
        single.close()
        sharded.close()


def test_session_flush_without_recovery_fails_clean_never_half_applied():
    """shard_max_restarts=0 turns the mid-flush death fatal.  The
    session buffer is discarded, no flushed point ever reaches the
    global registry, and every later merge fails loudly (the dead
    worker cannot be recovered) — never a silently half-served
    dataset."""
    sharded = _open_sharded(
        shard_fault_plan="crash:ingest:2:shard=0", shard_max_restarts=0
    )
    try:
        sharded.ingest(_points(30, seed=4))  # ingest call 1: healthy
        session = sharded.session()
        pids = session.ingest_many(_points(110, seed=11))
        assert len(pids) == 110
        assert session.pending_updates == 110  # buffered, not applied
        with pytest.raises(ReproError, match="restart budget"):
            session.__exit__(None, None, None)  # clean exit -> flush
        assert session.pending_updates == 0  # failed run not retained
        # No flushed point made it into the global registry...
        assert len(sharded) == 30
        # ...and queries fail loudly instead of merging around the
        # lost shard.
        with pytest.raises(ReproError, match="restart budget"):
            sharded.snapshot()
    finally:
        sharded.close()


def test_session_flush_backend_error_trips_the_epoch_guard():
    """The half-application guard itself: an injected backend *error*
    on one shard aborts the flush while the other shard has already
    applied its slice.  Both workers are alive and answering, but the
    router's epoch bookkeeping catches the divergence at the very next
    merge — the dataset can never silently serve half a flush."""
    sharded = _open_sharded(shard_fault_plan="error:ingest:2:shard=0")
    try:
        sharded.ingest(_points(30, seed=4))  # ingest call 1: healthy
        session = sharded.session()
        session.ingest_many(_points(110, seed=11))
        with pytest.raises(ReproError, match="injected fault"):
            session.__exit__(None, None, None)
        assert sharded.restarts == 0  # the workers never died
        assert len(sharded) == 30  # pre-flush dataset only
        with pytest.raises(ReproError, match="out-of-band"):
            sharded.snapshot()
    finally:
        sharded.close()


def test_session_exit_on_error_discards_instead_of_flushing():
    sharded = _open_sharded(shard_fault_plan="crash:ingest:1:shard=0")
    try:
        with pytest.raises(RuntimeError, match="caller bug"):
            with sharded.session() as session:
                session.ingest_many(_points(40))
                raise RuntimeError("caller bug")
        # The buffer was discarded unapplied: no flush, no crash, no
        # recovery, and the engine is still pristine and usable.
        assert sharded.restarts == 0
        assert len(sharded) == 0
        pids = sharded.ingest(_points(30, seed=5))  # ingest call #1...
        assert sharded.restarts >= 1  # ...which is where the fault sat
        assert len(pids) == 30
    finally:
        sharded.close()


# ----------------------------------------------------------------------
# Resource hygiene after chaos
# ----------------------------------------------------------------------


def test_no_shm_leftovers_after_crash_recovery_and_close():
    sharded = _open_sharded(
        shard_transport="shm", shard_fault_plan="crash:ingest:2"
    )
    try:
        sharded.ingest(_points(80))
        sharded.ingest(_points(80, seed=1))  # crash + recovery
        assert sharded.restarts >= 1
        sharded.ingest(_points(80, seed=2))  # recovered workers serve on
    finally:
        sharded.close()
    leftover = [
        entry
        for entry in os.listdir("/dev/shm")
        if entry.startswith(f"repro-shm-{os.getpid()}-")
    ]
    assert leftover == []


def test_timeouts_and_restarts_default_to_off_path_config():
    """The supervised defaults: no fault plan, 60s deadline, budget 3 —
    and a plain sharded run reports zero restarts."""
    config = EngineConfig(**BASE, shards=2, shard_executor="process")
    assert config.resolved_shard_fault_plan in (
        None,
        os.environ.get("REPRO_FAULT_PLAN"),
    )
    sharded = _open_sharded()
    try:
        pids = sharded.ingest(_points(60))
        assert sharded.restarts == 0
        assert sharded.stats().restarts == 0
        assert len(pids) == 60
    finally:
        sharded.close()
