"""Tests for HDT dynamic connectivity, including the naive-oracle duel."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.connectivity.hdt import HDTConnectivity
from repro.connectivity.naive import NaiveConnectivity


class TestBasics:
    def test_vertices(self):
        h = HDTConnectivity()
        h.add_vertex("a")
        assert "a" in h and len(h) == 1
        h.remove_vertex("a")
        assert "a" not in h

    def test_add_duplicate_vertex_raises(self):
        h = HDTConnectivity()
        h.add_vertex(1)
        with pytest.raises(KeyError):
            h.add_vertex(1)

    def test_remove_vertex_with_edges_raises(self):
        h = HDTConnectivity()
        h.insert_edge(1, 2)
        with pytest.raises(ValueError):
            h.remove_vertex(1)

    def test_self_loop_rejected(self):
        h = HDTConnectivity()
        h.add_vertex(1)
        with pytest.raises(ValueError):
            h.insert_edge(1, 1)

    def test_duplicate_edge_rejected(self):
        h = HDTConnectivity()
        h.insert_edge(1, 2)
        with pytest.raises(KeyError):
            h.insert_edge(2, 1)

    def test_delete_missing_edge_raises(self):
        h = HDTConnectivity()
        h.add_vertex(1)
        h.add_vertex(2)
        with pytest.raises(KeyError):
            h.delete_edge(1, 2)

    def test_simple_connectivity(self):
        h = HDTConnectivity()
        h.insert_edge(1, 2)
        h.insert_edge(2, 3)
        assert h.connected(1, 3)
        h.delete_edge(2, 3)
        assert not h.connected(1, 3)
        assert h.connected(1, 2)

    def test_cycle_then_tree_edge_deletion_finds_replacement(self):
        h = HDTConnectivity()
        h.insert_edge(1, 2)
        h.insert_edge(2, 3)
        h.insert_edge(3, 1)  # non-tree edge closes the cycle
        h.delete_edge(1, 2)  # tree edge; (3,1) must replace it
        assert h.connected(1, 2)
        h.delete_edge(2, 3)
        assert not h.connected(2, 3)

    def test_edge_count(self):
        h = HDTConnectivity()
        h.insert_edge(1, 2)
        h.insert_edge(2, 3)
        h.insert_edge(3, 1)
        assert h.edge_count == 3
        h.delete_edge(3, 1)
        assert h.edge_count == 2

    def test_component_id_consistency(self):
        h = HDTConnectivity()
        h.insert_edge(1, 2)
        h.insert_edge(3, 4)
        assert h.component_id(1) == h.component_id(2)
        assert h.component_id(1) != h.component_id(3)

    def test_component_size_and_vertices(self):
        h = HDTConnectivity()
        h.insert_edge(1, 2)
        h.insert_edge(2, 3)
        assert h.component_size(1) == 3
        assert set(h.component_vertices(3)) == {1, 2, 3}

    def test_vertex_auto_registration_on_edge(self):
        h = HDTConnectivity()
        h.insert_edge("x", "y")
        assert "x" in h and "y" in h

    def test_tuple_vertices(self):
        h = HDTConnectivity()
        h.insert_edge((0, 0), (0, 1))
        assert h.connected((0, 0), (0, 1))


class TestStructured:
    def test_chain_break_everywhere(self):
        for broken in range(9):
            h = HDTConnectivity()
            for i in range(9):
                h.insert_edge(i, i + 1)
            h.delete_edge(broken, broken + 1)
            for a in range(10):
                for b in range(10):
                    same = (a <= broken) == (b <= broken)
                    assert h.connected(a, b) == same

    def test_complete_graph_stays_connected_until_last(self):
        h = HDTConnectivity()
        n = 7
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        for u, v in edges:
            h.insert_edge(u, v)
        rng = random.Random(1)
        rng.shuffle(edges)
        # Remove all but a spanning-tree-sized number; graph cannot
        # disconnect while > binom(n-1, 2) edges remain.
        for u, v in edges[: len(edges) - (n - 1)]:
            h.delete_edge(u, v)
        # With exactly n-1 random remaining edges connectivity is not
        # guaranteed, but every deletion must have kept consistency:
        naive = NaiveConnectivity()
        for v in range(n):
            naive.add_vertex(v)
        for u, v in edges[len(edges) - (n - 1) :]:
            naive.insert_edge(u, v)
        for a in range(n):
            for b in range(n):
                assert h.connected(a, b) == naive.connected(a, b)

    def test_levels_grow_only_logarithmically(self):
        h = HDTConnectivity()
        n = 64
        rng = random.Random(3)
        edges = [(i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < 0.2]
        for u, v in edges:
            h.insert_edge(u, v)
        rng.shuffle(edges)
        for u, v in edges:
            h.delete_edge(u, v)
        assert h.level_count <= 10  # ~log2(64) + slack

    def test_repeated_insert_delete_same_edge(self):
        h = HDTConnectivity()
        for _ in range(50):
            h.insert_edge("a", "b")
            assert h.connected("a", "b")
            h.delete_edge("a", "b")
            assert not h.connected("a", "b")


class TestOracleDuel:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_churn_matches_naive(self, seed):
        rng = random.Random(seed)
        h = HDTConnectivity(seed=seed)
        naive = NaiveConnectivity()
        n = 30
        for v in range(n):
            h.add_vertex(v)
            naive.add_vertex(v)
        edges = set()
        for step in range(1200):
            if edges and rng.random() < 0.45:
                e = rng.choice(sorted(edges))
                edges.discard(e)
                h.delete_edge(*e)
                naive.delete_edge(*e)
            else:
                u, v = rng.sample(range(n), 2)
                e = (min(u, v), max(u, v))
                if e in edges:
                    continue
                edges.add(e)
                h.insert_edge(*e)
                naive.insert_edge(*e)
            if step % 60 == 0:
                for _ in range(10):
                    a, b = rng.sample(range(n), 2)
                    assert h.connected(a, b) == naive.connected(a, b)

    def test_component_partitions_match_naive(self):
        rng = random.Random(9)
        h = HDTConnectivity(seed=9)
        naive = NaiveConnectivity()
        n = 25
        for v in range(n):
            h.add_vertex(v)
            naive.add_vertex(v)
        edges = set()
        for step in range(600):
            if edges and rng.random() < 0.5:
                e = rng.choice(sorted(edges))
                edges.discard(e)
                h.delete_edge(*e)
                naive.delete_edge(*e)
            else:
                u, v = rng.sample(range(n), 2)
                e = (min(u, v), max(u, v))
                if e in edges:
                    continue
                edges.add(e)
                h.insert_edge(*e)
                naive.insert_edge(*e)
            if step % 100 == 0:
                part_h = {}
                part_n = {}
                for v in range(n):
                    part_h.setdefault(h.component_id(v), set()).add(v)
                    part_n.setdefault(naive.component_id(v), set()).add(v)
                assert frozenset(map(frozenset, part_h.values())) == frozenset(
                    map(frozenset, part_n.values())
                )


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.booleans(), st.integers(0, 11), st.integers(0, 11)
        ),
        max_size=120,
    )
)
def test_hypothesis_hdt_vs_naive(script):
    h = HDTConnectivity(seed=4)
    naive = NaiveConnectivity()
    for v in range(12):
        h.add_vertex(v)
        naive.add_vertex(v)
    edges = set()
    for is_insert, u, v in script:
        if u == v:
            continue
        e = (min(u, v), max(u, v))
        if is_insert and e not in edges:
            edges.add(e)
            h.insert_edge(*e)
            naive.insert_edge(*e)
        elif not is_insert and e in edges:
            edges.discard(e)
            h.delete_edge(*e)
            naive.delete_edge(*e)
    for a in range(12):
        for b in range(a + 1, 12):
            assert h.connected(a, b) == naive.connected(a, b)
