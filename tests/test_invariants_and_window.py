"""Tests for the invariant auditor and the sliding-window wrapper."""

from __future__ import annotations

import random
from collections import deque

import pytest

import repro.api as api
from repro.analysis.window import SlidingWindowClusterer, WindowedEngine
from repro.baselines.static_dbscan import dbscan_brute
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.errors import ConfigError, UnsupportedOperationError
from repro.validation import check_invariants

from conftest import assert_matches_static, clustered_points


class TestInvariantAuditor:
    def test_fresh_clusterer_is_healthy(self):
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        assert check_invariants(algo) == []

    @pytest.mark.parametrize("rho", [0.0, 0.1])
    @pytest.mark.parametrize("connectivity", ["hdt", "naive"])
    def test_healthy_throughout_churn(self, rho, connectivity):
        rng = random.Random(5)
        pts = clustered_points(100, 2, seed=5)
        algo = FullyDynamicClusterer(
            2.0, 4, rho=rho, dim=2, connectivity=connectivity
        )
        live = []
        for i, p in enumerate(pts):
            live.append(algo.insert(p))
            if i % 3 == 1:
                algo.delete(live.pop(rng.randrange(len(live))))
            if i % 10 == 9:
                assert check_invariants(algo) == []
        assert check_invariants(algo) == []

    def test_detects_injected_corruption_core_set(self):
        """Failure injection: flip a point's core flag behind the
        algorithm's back — the auditor must notice."""
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        ids = [algo.insert(p) for p in [(0, 0), (0.2, 0), (0, 0.2), (9, 9)]]
        data = algo._cells[algo.cell_of(ids[3])]
        data.core.add(ids[3])  # corrupt: noise point marked core
        data.noncore.discard(ids[3])
        assert check_invariants(algo) != []

    def test_detects_injected_corruption_neighbors(self):
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        a = algo.insert((0.0, 0.0))
        algo.insert((50.0, 50.0))
        cell = algo.cell_of(a)
        algo._cells[cell].neighbors.add((999, 999))  # corrupt cache
        assert any("neighbor" in p for p in check_invariants(algo))

    def test_detects_counter_desync(self):
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        a = algo.insert((0.0, 0.0))
        cell = algo.cell_of(a)
        algo._cells[cell].counter.delete(a)  # corrupt: counter loses a point
        assert any("counter" in p for p in check_invariants(algo))

    def test_detects_stale_edge(self):
        algo = FullyDynamicClusterer(1.0, 2, rho=0.0, dim=1)
        ids = [algo.insert((float(i) * 0.5,)) for i in range(8)]
        # Inject a bogus edge between two existing core cells that the
        # instances do not witness... instead corrupt by removing one:
        cells = [c for c, d in algo._cells.items() if d.core]
        if len(cells) >= 2:
            # find a witnessed pair and kill the witness behind the back
            data = algo._cells[cells[0]]
            for other, (inst, side) in data.abcp.items():
                if inst.witness is not None:
                    inst.witness = None
                    break
            else:
                pytest.skip("no witnessed pair to corrupt")
            assert any("stale CC edge" in p or "edges" in p
                       for p in check_invariants(algo))


class TestSlidingWindow:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowClusterer(0, 1.0, 3)

    def test_respects_capacity(self):
        win = SlidingWindowClusterer(5, 1.0, 2, rho=0.0, dim=1)
        for i in range(12):
            win.append((float(i),))
        assert len(win) == 5
        assert len(win.clusterer) == 5

    def test_oldest_and_newest(self):
        win = SlidingWindowClusterer(3, 1.0, 2, rho=0.0, dim=1)
        ids = [win.append((float(i),)) for i in range(3)]
        assert win.oldest() == ids[0]
        assert win.newest() == ids[2]
        win.append((3.0,))
        assert win.oldest() == ids[1]

    def test_empty_window(self):
        win = SlidingWindowClusterer(3, 1.0, 2)
        assert win.oldest() is None and win.newest() is None
        assert len(win) == 0

    def test_window_contents_match_static(self):
        rng = random.Random(9)
        pts = clustered_points(60, 2, seed=9)
        win = SlidingWindowClusterer(25, 2.0, 4, rho=0.0, dim=2)
        win.extend(pts)
        live_ids = list(win.ids())
        live_pts = [win.clusterer.point(pid) for pid in live_ids]
        idmap = {pid: i for i, pid in enumerate(live_ids)}
        assert_matches_static(
            win.clusters(), idmap, dbscan_brute(live_pts, 2.0, 4)
        )

    def test_queries_work_through_wrapper(self):
        win = SlidingWindowClusterer(10, 1.0, 2, rho=0.0, dim=1)
        a = win.append((0.0,))
        b = win.append((0.5,))
        c = win.append((8.0,))
        result = win.cgroup_by([a, b, c])
        assert {a, b} in result.group_sets()
        assert win.same_cluster(a, b)
        assert not win.same_cluster(a, c)

    def test_invariants_hold_through_window_churn(self):
        win = SlidingWindowClusterer(20, 2.0, 4, rho=0.01, dim=2)
        pts = clustered_points(80, 2, seed=10)
        for i, p in enumerate(pts):
            win.append(p)
            if i % 15 == 14:
                assert check_invariants(win.clusterer) == []

class TestWindowedEngine:
    """The engine-native sliding window (satellite of the service PR).

    The load-bearing contract: ``append_many`` is *defined* as
    ``ingest`` + ``delete_many(oldest)`` and nothing else, so windowed
    results are bit-identical at ``rho = 0`` to a caller doing the
    explicit expiry by hand.
    """

    @staticmethod
    def _engine(**overrides):
        knobs = dict(algorithm="full", eps=2.0, minpts=3, rho=0.0, dim=2)
        knobs.update(overrides)
        return api.open(**knobs)

    def test_capacity_validation(self):
        with self._engine() as engine:
            for bad in (0, -1, True, 1.5, "8", None):
                with pytest.raises(ConfigError):
                    WindowedEngine(engine, bad)

    def test_rejects_insert_only_engine(self):
        with api.open(algorithm="semi", eps=2.0, minpts=3, dim=2) as engine:
            with pytest.raises(UnsupportedOperationError):
                WindowedEngine(engine, 10)

    @pytest.mark.parametrize("batch_size", [1, 3, 7])
    def test_expiry_equivalence_vs_explicit_delete_many(self, batch_size):
        """Bit-identical to explicit oldest-first expiry at rho=0."""
        pts = clustered_points(90, 2, seed=21)
        batches = [
            pts[i : i + batch_size] for i in range(0, len(pts), batch_size)
        ]
        capacity = 25
        windowed = WindowedEngine(self._engine(), capacity)
        explicit = self._engine()
        fifo = deque()
        try:
            for batch in batches:
                batch = [list(p) for p in batch]
                pids, expired = windowed.append_many(batch)
                want_pids = explicit.ingest(batch)
                fifo.extend(want_pids)
                want_expired = []
                while len(fifo) > capacity:
                    want_expired.append(fifo.popleft())
                if want_expired:
                    explicit.delete_many(want_expired)
                assert pids == want_pids
                assert expired == want_expired
                assert len(windowed) == len(fifo)
                got = windowed.snapshot()
                want = explicit.snapshot()
                assert sorted(sorted(c) for c in got.clusters) == sorted(
                    sorted(c) for c in want.clusters
                )
                assert sorted(got.noise) == sorted(want.noise)
                assert windowed.epoch == explicit.epoch
            # Spot-check a query pass-through on the final state.
            live = windowed.ids()
            got_outcome = windowed.cgroup_by_many(live)
            want_outcome = explicit.cgroup_by_many(live)
            assert got_outcome.groups == want_outcome.groups
            assert got_outcome.noise == want_outcome.noise
        finally:
            windowed.close()
            explicit.close()

    def test_batch_equal_to_capacity_replaces_window(self):
        with WindowedEngine(self._engine(), 4) as win:
            first, expired = win.append_many(
                [[float(i), 0.0] for i in range(4)]
            )
            assert expired == []
            second, expired = win.append_many(
                [[float(i), 5.0] for i in range(4)]
            )
            assert expired == first
            assert win.ids() == second

    def test_batch_larger_than_capacity_expires_own_head(self):
        """Overflow expires points of the arriving batch itself."""
        with WindowedEngine(self._engine(), 3) as win:
            pids, expired = win.append_many(
                [[float(i), 0.0] for i in range(5)]
            )
            assert pids == [0, 1, 2, 3, 4]
            assert expired == [0, 1]
            assert win.ids() == [2, 3, 4]
            assert len(win.engine) == 3

    def test_capacity_one_keeps_only_newest(self):
        with WindowedEngine(self._engine(), 1) as win:
            for i in range(5):
                pid = win.append([float(i), 0.0])
                assert win.ids() == [pid]
                assert win.oldest() == win.newest() == pid
            assert len(win.engine) == 1

    def test_empty_batch_is_a_no_op(self):
        with WindowedEngine(self._engine(), 3) as win:
            pids, expired = win.append_many([])
            assert pids == [] and expired == []
            assert len(win) == 0 and win.epoch == 0
            assert win.oldest() is None and win.newest() is None

    def test_empty_window_queries(self):
        with WindowedEngine(self._engine(), 3) as win:
            snap = win.snapshot()
            assert snap.clusters == []
            outcome = win.cgroup_by_many([])
            assert outcome.groups == [] and outcome.noise == []

    def test_membership_and_fifo_order(self):
        with WindowedEngine(self._engine(), 3) as win:
            pids, _ = win.append_many([[0.0, 0.0], [1.0, 0.0]])
            third, expired = win.append_many([[2.0, 0.0], [3.0, 0.0]])
            assert expired == [pids[0]]
            assert pids[0] not in win
            assert all(p in win for p in [pids[1]] + third)
            assert win.ids() == [pids[1]] + third

    def test_matches_per_point_sliding_window_clusterer(self):
        """The engine-native window agrees with the per-point wrapper."""
        pts = clustered_points(60, 2, seed=13)
        legacy = SlidingWindowClusterer(20, 2.0, 4, rho=0.0, dim=2)
        with WindowedEngine(
            self._engine(eps=2.0, minpts=4), 20
        ) as win:
            for p in pts:
                legacy.append(p)
                win.append(list(p))
            assert win.ids() == list(legacy.ids())
            legacy_clusters = sorted(
                tuple(sorted(c)) for c in legacy.clusters().clusters
            )
            win_clusters = sorted(
                tuple(sorted(c)) for c in win.snapshot().clusters
            )
            assert win_clusters == legacy_clusters

    def test_close_is_idempotent_and_context_manager(self):
        win = WindowedEngine(self._engine(), 5)
        win.append([0.0, 0.0])
        win.close()
        assert win.engine.closed
        win.close()  # second close is a no-op via the engine's own

    def test_works_over_sharded_engine(self):
        """The window drives a ShardedEngine identically (rho=0)."""
        sharded = WindowedEngine(
            self._engine(shards=4, shard_executor="serial"), 15
        )
        plain = WindowedEngine(self._engine(), 15)
        pts = clustered_points(45, 2, seed=31)
        try:
            for i in range(0, len(pts), 5):
                batch = [list(p) for p in pts[i : i + 5]]
                got = sharded.append_many(batch)
                want = plain.append_many(batch)
                assert got == want
            got_snap = sharded.snapshot()
            want_snap = plain.snapshot()
            assert sorted(sorted(c) for c in got_snap.clusters) == sorted(
                sorted(c) for c in want_snap.clusters
            )
            assert sorted(got_snap.noise) == sorted(want_snap.noise)
        finally:
            sharded.close()
            plain.close()
