"""Tests for the invariant auditor and the sliding-window wrapper."""

from __future__ import annotations

import random

import pytest

from repro.analysis.window import SlidingWindowClusterer
from repro.baselines.static_dbscan import dbscan_brute
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.validation import check_invariants

from conftest import assert_matches_static, clustered_points


class TestInvariantAuditor:
    def test_fresh_clusterer_is_healthy(self):
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        assert check_invariants(algo) == []

    @pytest.mark.parametrize("rho", [0.0, 0.1])
    @pytest.mark.parametrize("connectivity", ["hdt", "naive"])
    def test_healthy_throughout_churn(self, rho, connectivity):
        rng = random.Random(5)
        pts = clustered_points(100, 2, seed=5)
        algo = FullyDynamicClusterer(
            2.0, 4, rho=rho, dim=2, connectivity=connectivity
        )
        live = []
        for i, p in enumerate(pts):
            live.append(algo.insert(p))
            if i % 3 == 1:
                algo.delete(live.pop(rng.randrange(len(live))))
            if i % 10 == 9:
                assert check_invariants(algo) == []
        assert check_invariants(algo) == []

    def test_detects_injected_corruption_core_set(self):
        """Failure injection: flip a point's core flag behind the
        algorithm's back — the auditor must notice."""
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        ids = [algo.insert(p) for p in [(0, 0), (0.2, 0), (0, 0.2), (9, 9)]]
        data = algo._cells[algo.cell_of(ids[3])]
        data.core.add(ids[3])  # corrupt: noise point marked core
        data.noncore.discard(ids[3])
        assert check_invariants(algo) != []

    def test_detects_injected_corruption_neighbors(self):
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        a = algo.insert((0.0, 0.0))
        algo.insert((50.0, 50.0))
        cell = algo.cell_of(a)
        algo._cells[cell].neighbors.add((999, 999))  # corrupt cache
        assert any("neighbor" in p for p in check_invariants(algo))

    def test_detects_counter_desync(self):
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        a = algo.insert((0.0, 0.0))
        cell = algo.cell_of(a)
        algo._cells[cell].counter.delete(a)  # corrupt: counter loses a point
        assert any("counter" in p for p in check_invariants(algo))

    def test_detects_stale_edge(self):
        algo = FullyDynamicClusterer(1.0, 2, rho=0.0, dim=1)
        ids = [algo.insert((float(i) * 0.5,)) for i in range(8)]
        # Inject a bogus edge between two existing core cells that the
        # instances do not witness... instead corrupt by removing one:
        cells = [c for c, d in algo._cells.items() if d.core]
        if len(cells) >= 2:
            # find a witnessed pair and kill the witness behind the back
            data = algo._cells[cells[0]]
            for other, (inst, side) in data.abcp.items():
                if inst.witness is not None:
                    inst.witness = None
                    break
            else:
                pytest.skip("no witnessed pair to corrupt")
            assert any("stale CC edge" in p or "edges" in p
                       for p in check_invariants(algo))


class TestSlidingWindow:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowClusterer(0, 1.0, 3)

    def test_respects_capacity(self):
        win = SlidingWindowClusterer(5, 1.0, 2, rho=0.0, dim=1)
        for i in range(12):
            win.append((float(i),))
        assert len(win) == 5
        assert len(win.clusterer) == 5

    def test_oldest_and_newest(self):
        win = SlidingWindowClusterer(3, 1.0, 2, rho=0.0, dim=1)
        ids = [win.append((float(i),)) for i in range(3)]
        assert win.oldest() == ids[0]
        assert win.newest() == ids[2]
        win.append((3.0,))
        assert win.oldest() == ids[1]

    def test_empty_window(self):
        win = SlidingWindowClusterer(3, 1.0, 2)
        assert win.oldest() is None and win.newest() is None
        assert len(win) == 0

    def test_window_contents_match_static(self):
        rng = random.Random(9)
        pts = clustered_points(60, 2, seed=9)
        win = SlidingWindowClusterer(25, 2.0, 4, rho=0.0, dim=2)
        win.extend(pts)
        live_ids = list(win.ids())
        live_pts = [win.clusterer.point(pid) for pid in live_ids]
        idmap = {pid: i for i, pid in enumerate(live_ids)}
        assert_matches_static(
            win.clusters(), idmap, dbscan_brute(live_pts, 2.0, 4)
        )

    def test_queries_work_through_wrapper(self):
        win = SlidingWindowClusterer(10, 1.0, 2, rho=0.0, dim=1)
        a = win.append((0.0,))
        b = win.append((0.5,))
        c = win.append((8.0,))
        result = win.cgroup_by([a, b, c])
        assert {a, b} in result.group_sets()
        assert win.same_cluster(a, b)
        assert not win.same_cluster(a, c)

    def test_invariants_hold_through_window_churn(self):
        win = SlidingWindowClusterer(20, 2.0, 4, rho=0.01, dim=2)
        pts = clustered_points(80, 2, seed=10)
        for i, p in enumerate(pts):
            win.append(p)
            if i % 15 == 14:
                assert check_invariants(win.clusterer) == []
