"""Tests for the treap-backed Euler-tour forest."""

from __future__ import annotations

import random

import pytest

from repro.connectivity.euler_tour import EulerTourForest


class TestVertices:
    def test_ensure_vertex_and_contains(self):
        f = EulerTourForest(seed=1)
        f.ensure_vertex("a")
        assert "a" in f
        assert f.tree_size("a") == 1

    def test_ensure_is_idempotent(self):
        f = EulerTourForest(seed=1)
        n1 = f.ensure_vertex("a")
        n2 = f.ensure_vertex("a")
        assert n1 is n2

    def test_remove_isolated_vertex(self):
        f = EulerTourForest(seed=1)
        f.ensure_vertex("a")
        f.remove_vertex("a")
        assert "a" not in f

    def test_remove_connected_vertex_raises(self):
        f = EulerTourForest(seed=1)
        f.link("a", "b")
        with pytest.raises(ValueError):
            f.remove_vertex("a")


class TestLinkCut:
    def test_link_connects(self):
        f = EulerTourForest(seed=2)
        f.link(1, 2)
        assert f.connected(1, 2)
        assert f.tree_size(1) == 2
        assert f.has_edge(1, 2)

    def test_link_already_connected_raises(self):
        f = EulerTourForest(seed=2)
        f.link(1, 2)
        f.link(2, 3)
        with pytest.raises(ValueError):
            f.link(1, 3)

    def test_duplicate_edge_raises(self):
        f = EulerTourForest(seed=2)
        f.link(1, 2)
        with pytest.raises(KeyError):
            f.link(2, 1)

    def test_cut_disconnects(self):
        f = EulerTourForest(seed=3)
        f.link(1, 2)
        f.cut(1, 2)
        assert not f.connected(1, 2)
        assert f.tree_size(1) == 1
        assert f.tree_size(2) == 1

    def test_cut_reversed_order(self):
        f = EulerTourForest(seed=3)
        f.link(1, 2)
        f.cut(2, 1)
        assert not f.connected(1, 2)

    def test_cut_missing_edge_raises(self):
        f = EulerTourForest(seed=3)
        f.ensure_vertex(1)
        f.ensure_vertex(2)
        with pytest.raises(KeyError):
            f.cut(1, 2)

    def test_path_cut_in_middle(self):
        f = EulerTourForest(seed=4)
        for i in range(9):
            f.link(i, i + 1)
        assert f.tree_size(0) == 10
        f.cut(4, 5)
        assert f.connected(0, 4)
        assert f.connected(5, 9)
        assert not f.connected(0, 9)
        assert f.tree_size(0) == 5
        assert f.tree_size(9) == 5

    def test_star_cuts(self):
        f = EulerTourForest(seed=5)
        for i in range(1, 8):
            f.link(0, i)
        assert f.tree_size(0) == 8
        for i in range(1, 8):
            f.cut(0, i)
            assert not f.connected(0, i)
        assert f.tree_size(0) == 1

    def test_tour_vertices(self):
        f = EulerTourForest(seed=6)
        f.link("a", "b")
        f.link("b", "c")
        assert set(f.tour_vertices("a")) == {"a", "b", "c"}
        f.ensure_vertex("z")
        assert f.tour_vertices("z") == ["z"]


class TestFlags:
    def test_nontree_flag_findable(self):
        f = EulerTourForest(seed=7)
        for i in range(5):
            f.link(i, i + 1)
        f.set_nontree_flag(3, True)
        root = f.find_root(0)
        assert f.find_nontree_vertex(root) == 3
        f.set_nontree_flag(3, False)
        assert f.find_nontree_vertex(f.find_root(0)) is None

    def test_level_flag_findable(self):
        f = EulerTourForest(seed=8)
        f.link(1, 2)
        f.link(2, 3)
        f.set_level_flag(2, 3, True)
        edge = f.find_level_edge(f.find_root(1))
        assert edge in ((2, 3), (3, 2))
        f.set_level_flag(3, 2, False)
        assert f.find_level_edge(f.find_root(1)) is None

    def test_flags_survive_restructuring(self):
        f = EulerTourForest(seed=9)
        for i in range(10):
            f.link(i, i + 1)
        f.set_nontree_flag(7, True)
        f.cut(3, 4)  # 7 is in the right component
        assert f.find_nontree_vertex(f.find_root(7)) == 7
        assert f.find_nontree_vertex(f.find_root(0)) is None
        f.link(3, 4)
        assert f.find_nontree_vertex(f.find_root(0)) == 7

    def test_multiple_flags_enumerable(self):
        f = EulerTourForest(seed=10)
        for i in range(6):
            f.link(i, i + 1)
        for v in (1, 4, 6):
            f.set_nontree_flag(v, True)
        found = set()
        for _ in range(3):
            v = f.find_nontree_vertex(f.find_root(0))
            assert v is not None
            found.add(v)
            f.set_nontree_flag(v, False)
        assert found == {1, 4, 6}
        assert f.find_nontree_vertex(f.find_root(0)) is None


class TestRandomizedForest:
    def test_random_link_cut_matches_dsu_rebuild(self):
        """Random spanning-forest churn cross-checked with fresh BFS."""
        rng = random.Random(77)
        f = EulerTourForest(seed=11)
        n = 40
        for v in range(n):
            f.ensure_vertex(v)
        edges = set()

        def components():
            adj = {v: [] for v in range(n)}
            for u, v in edges:
                adj[u].append(v)
                adj[v].append(u)
            seen = {}
            for start in range(n):
                if start in seen:
                    continue
                stack = [start]
                seen[start] = start
                while stack:
                    x = stack.pop()
                    for y in adj[x]:
                        if y not in seen:
                            seen[y] = start
                            stack.append(y)
            return seen

        for step in range(800):
            if edges and rng.random() < 0.4:
                u, v = rng.choice(sorted(edges))
                edges.discard((u, v))
                f.cut(u, v)
            else:
                u, v = rng.sample(range(n), 2)
                if (min(u, v), max(u, v)) in edges:
                    continue
                if f.connected(u, v):
                    continue  # keep it a forest
                edges.add((min(u, v), max(u, v)))
                f.link(u, v)
            if step % 40 == 0:
                comp = components()
                for _ in range(15):
                    a, b = rng.sample(range(n), 2)
                    assert f.connected(a, b) == (comp[a] == comp[b])
                sizes = {}
                for v, c in comp.items():
                    sizes[c] = sizes.get(c, 0) + 1
                for v in range(n):
                    assert f.tree_size(v) == sizes[comp[v]]
