"""Public-API surface snapshots.

``repro.__all__`` and ``repro.api.__all__`` are the library's contract
with its users: anything added here is a deliberate, reviewed decision
(update the expected lists in the same PR), and anything that vanishes
is an immediate CI failure instead of a silent break.  Every listed
name must also actually resolve.
"""

from __future__ import annotations

import repro
import repro.api
import repro.errors
import repro.service
import repro.workload

EXPECTED_API_ALL = [
    "ALGORITHM_CHOICES",
    "DEFAULT_FLUSH_THRESHOLD",
    "DEFAULT_SHARD_BLOCK",
    "SHARD_EXECUTOR_CHOICES",
    "SHARD_START_METHOD_CHOICES",
    "SHARD_TRANSPORT_CHOICES",
    "ConfigError",
    "Engine",
    "EngineConfig",
    "EngineStats",
    "FragmentCacheStats",
    "IngestSession",
    "InvalidQueryError",
    "QueryOutcome",
    "ReproError",
    "ShardTimeoutError",
    "ShardedEngine",
    "ShardedStats",
    "Snapshot",
    "UnknownPointError",
    "UnsupportedOperationError",
    "open",
]

EXPECTED_REPRO_ALL = [
    "CGroupByResult",
    "ClusterEvent",
    "ClusterTracker",
    "Clustering",
    "ConfigError",
    "Engine",
    "EngineConfig",
    "EngineStats",
    "FullyDynamicClusterer",
    "Grid",
    "IncDBSCAN",
    "IngestSession",
    "InvalidQueryError",
    "QueryOutcome",
    "RecomputeClusterer",
    "ReproError",
    "RunResult",
    "SemiDynamicClusterer",
    "ShardTimeoutError",
    "ShardedEngine",
    "ShardedStats",
    "Snapshot",
    "StaticClustering",
    "UnknownPointError",
    "UnsupportedOperationError",
    "Workload",
    "check_legality",
    "cluster_stats",
    "check_sandwich",
    "dbscan_brute",
    "dbscan_grid",
    "double_approx",
    "full_exact_2d",
    "generate_workload",
    "rho_dbscan_static",
    "run_workload",
    "seed_spreader",
    "semi_approx",
    "semi_exact_2d",
]

EXPECTED_ERRORS_ALL = [
    "ReproError",
    "ConfigError",
    "UnknownPointError",
    "InvalidQueryError",
    "UnsupportedOperationError",
    "ShardTimeoutError",
    "StaleOwnershipError",
]

EXPECTED_SERVICE_ALL = [
    "ClusterService",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceLimits",
    "ServiceStats",
]


def test_api_surface_snapshot():
    assert repro.api.__all__ == EXPECTED_API_ALL


def test_repro_surface_snapshot():
    assert repro.__all__ == EXPECTED_REPRO_ALL


def test_errors_surface_snapshot():
    assert repro.errors.__all__ == EXPECTED_ERRORS_ALL


def test_service_surface_snapshot():
    assert repro.service.__all__ == EXPECTED_SERVICE_ALL


def test_workload_scenario_names_exported():
    """The streaming-scenario additions ride the workload package."""
    for name in (
        "SlidingWindowScenario",
        "sliding_window_scenario",
        "run_sliding_window",
        "burst_arrival_stream",
        "evolving_density_stream",
        "TrafficMixSampler",
        "TrafficOp",
        "default_service_mix",
    ):
        assert name in repro.workload.__all__, name


def test_every_exported_name_resolves():
    for module in (repro, repro.api, repro.errors, repro.service,
                   repro.workload):
        for name in module.__all__:
            assert getattr(module, name, None) is not None, (
                f"{module.__name__}.{name} is exported but does not resolve"
            )


def test_legacy_entry_points_still_exported():
    """The documented shims must stay importable until a major bump."""
    for name in ("semi_approx", "semi_exact_2d", "double_approx",
                 "full_exact_2d", "SemiDynamicClusterer",
                 "FullyDynamicClusterer"):
        assert name in repro.__all__
