"""Cross-system integration tests: whole workloads through every algorithm."""

from __future__ import annotations

import random

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.baselines.static_dbscan import dbscan_grid
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.validation import check_legality, check_sandwich
from repro.workload.runner import run_workload
from repro.workload.workload import generate_workload

EPS = 200.0  # the paper's default eps = 100d at d = 2
MINPTS = 10
RHO = 0.001


def _canonical(algo, live_index):
    return frozenset(
        frozenset(live_index[pid] for pid in c) for c in algo.clusters().clusters
    )


class TestSemiDynamicWorkload:
    def test_semi_matches_static_on_seed_spreader(self):
        w = generate_workload(600, 2, insert_fraction=1.0, seed=5)
        algo = SemiDynamicClusterer(EPS, MINPTS, rho=0.0, dim=2)
        pid_of = {}
        for kind, arg in w.ops:
            assert kind == "insert"
            pid_of[arg] = algo.insert(w.points[arg])
        idmap = {pid: idx for idx, pid in pid_of.items()}
        ref = dbscan_grid(w.points, EPS, MINPTS)
        got = _canonical(algo, idmap)
        # Translate: static indexes points by position in w.points.
        assert got == ref.canonical()

    def test_semi_and_full_agree_exactly_on_insert_only(self):
        w = generate_workload(500, 3, insert_fraction=1.0, seed=6)
        semi = SemiDynamicClusterer(300.0, MINPTS, rho=0.0, dim=3)
        full = FullyDynamicClusterer(300.0, MINPTS, rho=0.0, dim=3)
        semi_map, full_map = {}, {}
        for kind, arg in w.ops:
            semi_map[semi.insert(w.points[arg])] = arg
            full_map[full.insert(w.points[arg])] = arg
        assert _canonical(semi, semi_map) == _canonical(full, full_map)

    def test_rho_approx_sandwich_on_workload(self):
        w = generate_workload(400, 2, insert_fraction=1.0, seed=7)
        algo = SemiDynamicClusterer(EPS, MINPTS, rho=RHO, dim=2)
        ids = [algo.insert(w.points[arg]) for _, arg in w.ops]
        coords = {pid: algo.point(pid) for pid in ids}
        clustering = algo.clusters()
        assert check_sandwich(coords, clustering.clusters, EPS, MINPTS, RHO) == []


class TestFullyDynamicWorkload:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_full_exact_matches_incdbscan_on_mixed_workload(self, seed):
        w = generate_workload(
            450, 2, insert_fraction=5 / 6, query_frequency=50, seed=seed
        )
        ours = FullyDynamicClusterer(EPS, MINPTS, rho=0.0, dim=2)
        inc = IncDBSCAN(EPS, MINPTS, dim=2)
        ours_map, inc_map = {}, {}
        for kind, arg in w.ops:
            if kind == "insert":
                ours_map[arg] = ours.insert(w.points[arg])
                inc_map[arg] = inc.insert(w.points[arg])
            elif kind == "delete":
                ours.delete(ours_map.pop(arg))
                inc.delete(inc_map.pop(arg))
            else:
                ours_result = ours.cgroup_by([ours_map[i] for i in arg])
                inc_result = inc.cgroup_by([inc_map[i] for i in arg])
                back_ours = {pid: i for i, pid in ours_map.items()}
                back_inc = {pid: i for i, pid in inc_map.items()}
                got = frozenset(
                    frozenset(back_ours[p] for p in g) for g in ours_result.groups
                )
                want = frozenset(
                    frozenset(back_inc[p] for p in g) for g in inc_result.groups
                )
                assert got == want
                assert {back_ours[p] for p in ours_result.noise} == {
                    back_inc[p] for p in inc_result.noise
                }

    def test_double_approx_legal_throughout_workload(self):
        w = generate_workload(350, 3, insert_fraction=4 / 5, seed=3)
        algo = FullyDynamicClusterer(300.0, MINPTS, rho=0.01, dim=3)
        pid_of = {}
        step = 0
        for kind, arg in w.ops:
            if kind == "insert":
                pid_of[arg] = algo.insert(w.points[arg])
            elif kind == "delete":
                algo.delete(pid_of.pop(arg))
            step += 1
            if step % 100 == 0:
                coords = {pid: algo.point(pid) for pid in pid_of.values()}
                clustering = algo.clusters()
                assert (
                    check_sandwich(coords, clustering.clusters, 300.0, MINPTS, 0.01)
                    == []
                )

    def test_run_workload_end_to_end_all_algorithms(self):
        w = generate_workload(
            250, 2, insert_fraction=5 / 6, query_frequency=25, seed=4
        )
        for algo in (
            SemiDynamicClusterer(EPS, MINPTS, rho=RHO, dim=2),
            FullyDynamicClusterer(EPS, MINPTS, rho=RHO, dim=2),
            IncDBSCAN(EPS, MINPTS, dim=2),
        ):
            if isinstance(algo, SemiDynamicClusterer):
                insert_only = generate_workload(
                    250, 2, insert_fraction=1.0, query_frequency=25, seed=4
                )
                result = run_workload(algo, insert_only)
                assert len(result.op_costs) == len(insert_only.ops)
            else:
                result = run_workload(algo, w)
                assert len(result.op_costs) == len(w.ops)
            assert result.average_cost > 0


class TestConsistencyOfQueries:
    def test_queries_consistent_with_single_clustering(self):
        """Two sub-queries must be consistent with the Q = P query — the
        paper's anti-'cheating' requirement."""
        rng = random.Random(10)
        w = generate_workload(300, 2, insert_fraction=1.0, seed=10)
        algo = FullyDynamicClusterer(EPS, MINPTS, rho=RHO, dim=2)
        ids = [algo.insert(w.points[arg]) for _, arg in w.ops]
        full = algo.clusters()
        for _ in range(15):
            q = rng.sample(ids, 20)
            result = algo.cgroup_by(q)
            expected = [c & set(q) for c in full.clusters]
            expected = sorted(map(sorted, (e for e in expected if e)))
            assert sorted(map(sorted, result.group_sets())) == expected
