"""Tests for the union-find CC structure."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.connectivity.union_find import UnionFind


class TestBasics:
    def test_singleton(self):
        uf = UnionFind()
        uf.add("a")
        assert uf.find("a") == "a"
        assert uf.component_count == 1
        assert "a" in uf and len(uf) == 1

    def test_lazy_registration_via_find(self):
        uf = UnionFind()
        assert uf.find(42) == 42
        assert uf.component_count == 1

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add("x")
        uf.add("x")
        assert uf.component_count == 1

    def test_union_merges(self):
        uf = UnionFind()
        assert uf.union(1, 2) is True
        assert uf.connected(1, 2)
        assert uf.component_count == 1

    def test_union_same_set_returns_false(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.union(2, 1) is False

    def test_transitivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        assert not uf.connected(1, 3)
        uf.union(2, 3)
        assert uf.connected(1, 4)
        assert uf.component_count == 1

    def test_tuple_items(self):
        uf = UnionFind()
        uf.union((0, 0), (0, 1))
        assert uf.connected((0, 0), (0, 1))
        assert not uf.connected((0, 0), (5, 5))

    def test_component_count_tracks(self):
        uf = UnionFind()
        for i in range(10):
            uf.add(i)
        assert uf.component_count == 10
        for i in range(9):
            uf.union(i, i + 1)
        assert uf.component_count == 1

    def test_find_is_canonical(self):
        uf = UnionFind()
        for i in range(20):
            uf.union(0, i)
        roots = {uf.find(i) for i in range(20)}
        assert len(roots) == 1


class TestAgainstNaivePartition:
    def test_random_unions_match_reference(self):
        rng = random.Random(7)
        uf = UnionFind()
        groups = {i: {i} for i in range(50)}
        label = {i: i for i in range(50)}
        for _ in range(200):
            a, b = rng.randrange(50), rng.randrange(50)
            uf.union(a, b)
            la, lb = label[a], label[b]
            if la != lb:
                for x in groups[lb]:
                    label[x] = la
                groups[la] |= groups.pop(lb)
        for a in range(50):
            for b in range(50):
                assert uf.connected(a, b) == (label[a] == label[b])
        assert uf.component_count == len(groups)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=60))
def test_hypothesis_equivalence_classes(pairs):
    uf = UnionFind()
    for i in range(16):
        uf.add(i)
    reference = {i: {i} for i in range(16)}
    for a, b in pairs:
        uf.union(a, b)
        sa = next(s for s in reference.values() if a in s)
        sb = next(s for s in reference.values() if b in s)
        if sa is not sb:
            merged = sa | sb
            for x in merged:
                reference[x] = merged
    for a in range(16):
        for b in range(16):
            assert uf.connected(a, b) == (b in reference[a])
