"""The unified error model: hierarchy, routing, and compatibility.

Every user-facing failure derives from ``ReproError``; each concrete
class also subclasses the builtin it historically raised, so callers
catching ``ValueError`` / ``KeyError`` / ``RuntimeError`` keep working.
Constructor/config validation across *all* clusterers must surface as
``ConfigError``; dead-id failures as ``UnknownPointError``.
"""

from __future__ import annotations

import pytest

from repro import kernels
from repro.api import EngineConfig
from repro.baselines.incdbscan import IncDBSCAN
from repro.baselines.naive_dynamic import RecomputeClusterer
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.errors import (
    ConfigError,
    InvalidQueryError,
    ReproError,
    UnknownPointError,
    UnsupportedOperationError,
)

ALL_CLUSTERERS = (
    SemiDynamicClusterer,
    FullyDynamicClusterer,
    IncDBSCAN,
    RecomputeClusterer,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            ConfigError,
            UnknownPointError,
            InvalidQueryError,
            UnsupportedOperationError,
        ):
            assert issubclass(cls, ReproError)

    def test_builtin_compatibility(self):
        """Each class keeps the builtin its failure historically raised."""
        assert issubclass(ConfigError, ValueError)
        assert issubclass(InvalidQueryError, ValueError)
        assert issubclass(UnknownPointError, KeyError)
        assert issubclass(UnsupportedOperationError, RuntimeError)

    def test_one_except_catches_everything(self):
        with pytest.raises(ReproError):
            SemiDynamicClusterer(-1.0, 10)
        with pytest.raises(ReproError):
            FullyDynamicClusterer(1.0, 10).delete(123)


class TestConstructorValidation:
    """eps <= 0, minpts < 1, rho < 0, dim mismatch: each a ConfigError."""

    @pytest.mark.parametrize("cls", ALL_CLUSTERERS)
    @pytest.mark.parametrize("eps", (0.0, -3.5))
    def test_nonpositive_eps(self, cls, eps):
        with pytest.raises(ConfigError, match="eps must be positive"):
            cls(eps, 10)

    @pytest.mark.parametrize("cls", ALL_CLUSTERERS)
    @pytest.mark.parametrize("minpts", (0, -2))
    def test_minpts_below_one(self, cls, minpts):
        with pytest.raises(ConfigError, match="minpts must be >= 1"):
            cls(1.0, minpts)

    @pytest.mark.parametrize(
        "cls", (SemiDynamicClusterer, FullyDynamicClusterer)
    )
    def test_negative_rho(self, cls):
        with pytest.raises(ConfigError, match="rho must be non-negative"):
            cls(1.0, 10, rho=-0.001)

    @pytest.mark.parametrize("cls", ALL_CLUSTERERS)
    def test_dim_mismatch_on_insert(self, cls):
        algo = cls(1.0, 3, dim=2)
        with pytest.raises(ConfigError, match="dimension"):
            algo.insert((1.0, 2.0, 3.0))

    def test_bad_strategy_and_connectivity(self):
        with pytest.raises(ConfigError, match="strategy"):
            SemiDynamicClusterer(1.0, 10, strategy="quantum")
        with pytest.raises(ConfigError, match="connectivity"):
            FullyDynamicClusterer(1.0, 10, connectivity="psychic")
        with pytest.raises(ConfigError, match="bcp"):
            FullyDynamicClusterer(1.0, 10, bcp="oracle")

    def test_unknown_backend(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            kernels.use_backend("warp-drive")

    def test_engine_config_mirrors_clusterer_validation(self):
        """EngineConfig rejects exactly what the clusterers reject."""
        with pytest.raises(ConfigError, match="eps"):
            EngineConfig(eps=0.0, minpts=10)
        with pytest.raises(ConfigError, match="minpts"):
            EngineConfig(eps=1.0, minpts=0)
        with pytest.raises(ConfigError, match="rho"):
            EngineConfig(eps=1.0, minpts=10, rho=-0.1, algorithm="full")
        with pytest.raises(ConfigError, match="dim"):
            EngineConfig(eps=1.0, minpts=10, dim=0)
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            EngineConfig(eps=1.0, minpts=10, backend="warp-drive")


class TestUnknownPoint:
    def test_query_rejects_dead_ids_across_clusterers(self):
        for cls in ALL_CLUSTERERS:
            algo = cls(1.0, 2, dim=2)
            pid = algo.insert((0.0, 0.0))
            with pytest.raises(UnknownPointError, match="not live"):
                algo.cgroup_by([pid, 999])
            # Compatibility: the historical KeyError contract still holds.
            with pytest.raises(KeyError):
                algo.cgroup_by([999])

    def test_delete_rejects_dead_ids(self):
        for cls in (FullyDynamicClusterer, IncDBSCAN, RecomputeClusterer):
            algo = cls(1.0, 2, dim=2)
            algo.insert((0.0, 0.0))
            with pytest.raises(UnknownPointError, match="not live"):
                algo.delete(41)

    def test_same_cluster_rejects_dead_ids(self):
        """same_cluster fails like every other query path, not KeyError."""
        for cls in ALL_CLUSTERERS:
            algo = cls(1.0, 2, dim=2)
            pid = algo.insert((0.0, 0.0))
            with pytest.raises(UnknownPointError, match="not live"):
                algo.same_cluster(pid, 999)
            with pytest.raises(UnknownPointError, match="not live"):
                algo.same_cluster(999, pid)
            # Both dead ids are listed in one up-front failure.
            with pytest.raises(UnknownPointError, match="998.*999|999.*998"):
                algo.same_cluster(998, 999)

    def test_cluster_ids_of_routes_through_validation(self):
        algo = FullyDynamicClusterer(1.0, 2, dim=2)
        algo.insert((0.0, 0.0))
        with pytest.raises(UnknownPointError, match="not live"):
            algo._cluster_ids_of(555)

    def test_bulk_delete_rejects_whole_batch_up_front(self):
        algo = FullyDynamicClusterer(1.0, 2, dim=2)
        pids = algo.insert_many([(0.0, 0.0), (0.1, 0.1)])
        with pytest.raises(UnknownPointError, match="rejected"):
            algo.delete_many([pids[0], 777])
        # Nothing was deleted: the batch failed before mutating.
        assert len(algo) == 2


class TestInvalidQuery:
    def test_malformed_query_batch(self):
        from repro.geometry.emptiness import EmptinessStructure

        struct = EmptinessStructure(2, 1.0, 0.0)
        struct.insert(0, (0.0, 0.0))
        with pytest.raises(InvalidQueryError, match="empty_many query"):
            struct.empty_many([(0.0,), (1.0, 2.0, 3.0)])


class TestDeprecatedRunnerShim:
    def test_old_import_location_warns_and_aliases(self):
        import repro.workload.runner as runner

        with pytest.warns(DeprecationWarning, match="repro.errors"):
            legacy = runner.UnsupportedOperationError
        assert legacy is UnsupportedOperationError

    def test_workload_package_reexport_is_clean(self, recwarn):
        """repro.workload re-exports from the new home without warning."""
        import repro.workload as workload

        assert workload.UnsupportedOperationError is UnsupportedOperationError
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]
