"""Engine-vs-direct equivalence: the facade must add zero semantics.

Driving the same workload through ``repro.api`` — the :class:`Engine`
facade, a buffered :class:`IngestSession`, or the engine's batched
runner path — must yield *bit-identical* canonical
:class:`CGroupByResult` sequences to direct clusterer calls at
``rho = 0`` (where every primitive is exact and the output is unique).
Swept over dims 2/3/5 for both dynamic clusterers, with the batch
query engine forced on to make the comparison non-trivial.
"""

from __future__ import annotations

from typing import List

import pytest

import repro.api as api
import repro.core.framework as framework
from repro.core.framework import CGroupByResult
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.workload.config import eps_for
from repro.workload.runner import run_workload_engine
from repro.workload.workload import Workload, generate_workload

DIMS = (2, 3, 5)
MINPTS = 10
N = 400


@pytest.fixture(autouse=True)
def force_batch_engine(monkeypatch):
    """Route every query through the vectorized engine (cutoff 0), so
    the engine-vs-direct comparison exercises the real batch path."""
    monkeypatch.setattr(framework, "_SEQUENTIAL_QUERY_CUTOFF", 0)


def _workload(dim: int, insert_only: bool) -> Workload:
    return generate_workload(
        N,
        dim,
        insert_fraction=1.0 if insert_only else 5 / 6,
        query_frequency=20,
        seed=97 + dim,
    )


def _replay_direct(algo, workload: Workload) -> List[CGroupByResult]:
    results = []
    pid_of = {}
    for kind, arg in workload.ops:
        if kind == "insert":
            pid_of[arg] = algo.insert(workload.points[arg])
        elif kind == "delete":
            algo.delete(pid_of.pop(arg))
        else:
            results.append(algo.cgroup_by([pid_of[i] for i in arg]))
    return results


def _replay_engine(engine: "api.Engine", workload: Workload) -> List[CGroupByResult]:
    results = []
    pid_of = {}
    for kind, arg in workload.ops:
        if kind == "insert":
            pid_of[arg] = engine.insert(workload.points[arg])
        elif kind == "delete":
            engine.delete(pid_of.pop(arg))
        else:
            results.append(engine.cgroup_by([pid_of[i] for i in arg]).result)
    return results


def _replay_session(
    engine: "api.Engine", workload: Workload, flush_threshold: int
) -> List[CGroupByResult]:
    results = []
    pid_of = {}
    with engine.session(flush_threshold=flush_threshold) as session:
        for kind, arg in workload.ops:
            if kind == "insert":
                pid_of[arg] = session.ingest(workload.points[arg])
            elif kind == "delete":
                session.delete(pid_of.pop(arg))
            else:
                results.append(
                    session.cgroup_by([pid_of[i] for i in arg]).result
                )
    return results


def _assert_identical_sequences(
    label: str, got: List[CGroupByResult], want: List[CGroupByResult]
) -> None:
    assert len(got) == len(want)
    for i, (g, w) in enumerate(zip(got, want)):
        assert g.groups == w.groups, f"{label}: query #{i} groups differ"
        assert g.noise == w.noise, f"{label}: query #{i} noise differs"


@pytest.mark.parametrize("dim", DIMS)
def test_full_engine_matches_direct(dim):
    workload = _workload(dim, insert_only=False)
    eps = eps_for(dim)
    direct = _replay_direct(
        FullyDynamicClusterer(eps, MINPTS, rho=0.0, dim=dim), workload
    )
    assert direct, "workload produced no queries"

    engine = api.open(algorithm="full", eps=eps, minpts=MINPTS, dim=dim)
    _assert_identical_sequences(
        f"engine d={dim}", _replay_engine(engine, workload), direct
    )

    buffered = api.open(algorithm="full", eps=eps, minpts=MINPTS, dim=dim)
    _assert_identical_sequences(
        f"session d={dim}", _replay_session(buffered, workload, 37), direct
    )

    # Final states agree too (one full Q = P comparison each).
    reference = FullyDynamicClusterer(eps, MINPTS, rho=0.0, dim=dim)
    _replay_direct(reference, workload)
    want = reference.clusters()
    for label, eng in (("engine", engine), ("session", buffered)):
        snap = eng.snapshot()
        assert sorted(map(sorted, snap.clusters)) == sorted(
            map(sorted, want.clusters)
        ), label
        assert snap.noise == want.noise, label


@pytest.mark.parametrize("dim", DIMS)
def test_semi_engine_matches_direct(dim):
    workload = _workload(dim, insert_only=True)
    eps = eps_for(dim)
    direct = _replay_direct(
        SemiDynamicClusterer(eps, MINPTS, rho=0.0, dim=dim), workload
    )
    assert direct, "workload produced no queries"

    engine = api.open(algorithm="semi", eps=eps, minpts=MINPTS, dim=dim)
    _assert_identical_sequences(
        f"engine d={dim}", _replay_engine(engine, workload), direct
    )

    buffered = api.open(algorithm="semi", eps=eps, minpts=MINPTS, dim=dim)
    _assert_identical_sequences(
        f"session d={dim}", _replay_session(buffered, workload, 53), direct
    )


@pytest.mark.parametrize("algorithm", ("semi", "full"))
def test_batched_engine_runner_matches_direct_state(algorithm):
    """The engine's batched runner path reaches the direct final state."""
    insert_only = algorithm == "semi"
    workload = _workload(2, insert_only=insert_only)
    eps = eps_for(2)
    cls = SemiDynamicClusterer if insert_only else FullyDynamicClusterer
    reference = cls(eps, MINPTS, rho=0.0, dim=2)
    _replay_direct(reference, workload)
    want = reference.clusters()

    engine = api.open(
        algorithm=algorithm, eps=eps, minpts=MINPTS, dim=2, batch_size=64
    )
    result = run_workload_engine(engine, workload)
    assert "insert_many" in result.op_kinds
    assert result.backend == engine.backend
    snap = engine.snapshot()
    assert sorted(map(sorted, snap.clusters)) == sorted(
        map(sorted, want.clusters)
    )
    assert snap.noise == want.noise
