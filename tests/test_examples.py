"""Smoke tests: every example script must run to completion.

Examples are executable documentation; these tests keep them honest.
Each script is imported and its ``main()`` executed in-process (faster
than subprocesses and failures give real tracebacks).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_all_examples_discovered():
    assert set(SCRIPTS) >= {
        "quickstart",
        "stock_stream",
        "moving_objects",
        "hardness_demo",
        "compare_baselines",
        "cluster_evolution",
    }


@pytest.mark.parametrize("name", SCRIPTS)
def test_example_runs(name, capsys, monkeypatch):
    # Keep the baseline comparison quick inside the test suite.
    monkeypatch.setenv("REPRO_BENCH_N", "300")
    module = _load(name)
    assert hasattr(module, "main"), f"{name}.py must define main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name}.py produced no output"
    assert "FAIL" not in out
