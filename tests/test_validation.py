"""Tests for the sandwich and legality validators themselves.

Validators are load-bearing for the whole test strategy, so they get
negative tests: they must *reject* corrupted clusterings.
"""

from __future__ import annotations

import pytest

from repro.baselines.static_dbscan import dbscan_brute
from repro.validation import check_legality, check_sandwich

from conftest import clustered_points

EPS = 2.0
MINPTS = 4
RHO = 0.2


@pytest.fixture
def dataset():
    pts = clustered_points(80, 2, seed=77)
    coords = {i: p for i, p in enumerate(pts)}
    ref = dbscan_brute(pts, EPS, MINPTS)
    return coords, ref


class TestSandwich:
    def test_exact_clustering_passes(self, dataset):
        coords, ref = dataset
        assert check_sandwich(coords, ref.clusters, EPS, MINPTS, RHO) == []

    def test_split_cluster_fails(self, dataset):
        """Splitting an exact cluster violates containment of C1."""
        coords, ref = dataset
        big = max(ref.clusters, key=len)
        if len(big) < 2:
            pytest.skip("need a splittable cluster")
        members = sorted(big)
        broken = [c for c in ref.clusters if c is not big]
        broken += [set(members[: len(members) // 2]), set(members[len(members) // 2 :])]
        assert check_sandwich(coords, broken, EPS, MINPTS, RHO) != []

    def test_merging_far_clusters_fails(self, dataset):
        coords, ref = dataset
        if len(ref.clusters) < 2:
            pytest.skip("need two clusters")
        # Find two clusters that stay separate even at the relaxed radius.
        upper = dbscan_brute(
            [coords[i] for i in sorted(coords)], EPS * (1 + RHO), MINPTS
        )
        merged = [set().union(*ref.clusters)] if len(upper.clusters) > 1 else None
        if merged is None:
            pytest.skip("relaxed radius merges everything")
        assert check_sandwich(coords, merged, EPS, MINPTS, RHO) != []

    def test_dropping_a_cluster_fails(self, dataset):
        coords, ref = dataset
        if not ref.clusters:
            pytest.skip("no clusters")
        assert check_sandwich(coords, ref.clusters[1:], EPS, MINPTS, RHO) != []


class TestLegality:
    def test_exact_clustering_passes(self, dataset):
        coords, ref = dataset
        assert (
            check_legality(
                coords, ref.clusters, ref.noise, ref.core,
                EPS, MINPTS, RHO, relaxed_core=False,
            )
            == []
        )

    def test_exact_clustering_passes_relaxed(self, dataset):
        coords, ref = dataset
        assert (
            check_legality(
                coords, ref.clusters, ref.noise, ref.core,
                EPS, MINPTS, RHO, relaxed_core=True,
            )
            == []
        )

    def test_wrong_core_flag_fails(self, dataset):
        coords, ref = dataset
        noise_point = next(iter(ref.noise), None)
        if noise_point is None:
            pytest.skip("no noise point")
        fake_core = ref.core | {noise_point}
        violations = check_legality(
            coords, ref.clusters, ref.noise - {noise_point}, fake_core,
            EPS, MINPTS, RHO, relaxed_core=False,
        )
        assert violations != []

    def test_missing_core_flag_fails(self, dataset):
        coords, ref = dataset
        some_core = next(iter(ref.core))
        violations = check_legality(
            coords, ref.clusters, ref.noise, ref.core - {some_core},
            EPS, MINPTS, RHO, relaxed_core=False,
        )
        assert violations != []

    def test_core_in_two_clusters_fails(self, dataset):
        coords, ref = dataset
        if len(ref.clusters) < 2:
            pytest.skip("need two clusters")
        corrupted = [set(c) for c in ref.clusters]
        wanderer = next(iter(corrupted[0] & ref.core))
        corrupted[1].add(wanderer)
        violations = check_legality(
            coords, corrupted, ref.noise, ref.core,
            EPS, MINPTS, RHO, relaxed_core=False,
        )
        assert violations != []

    def test_noise_with_core_neighbor_fails(self, dataset):
        coords, ref = dataset
        # Steal a border point from a cluster and call it noise.
        border = None
        for c in ref.clusters:
            for k in c:
                if k not in ref.core:
                    border = k
                    break
            if border is not None:
                break
        if border is None:
            pytest.skip("no border point")
        stripped = [c - {border} for c in ref.clusters]
        violations = check_legality(
            coords, stripped, ref.noise | {border}, ref.core,
            EPS, MINPTS, RHO, relaxed_core=False,
        )
        assert violations != []

    def test_empty_cluster_fails(self, dataset):
        coords, ref = dataset
        violations = check_legality(
            coords, list(ref.clusters) + [set()], ref.noise, ref.core,
            EPS, MINPTS, RHO, relaxed_core=False,
        )
        assert any("no core point" in v for v in violations)
