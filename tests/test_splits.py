"""Crafted split topologies: the hardest deletions for every algorithm.

Deletion-induced cluster splits are the paper's central difficulty (they
force IncDBSCAN into multi-thread BFS and motivated the aBCP + HDT
machinery).  These tests build geometries where a single deletion splits a
cluster 2-, 3- and 4-ways, chains of articulation points, and repeated
split/heal cycles, and check all dynamic algorithms against brute force.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.baselines.static_dbscan import dbscan_brute
from repro.core.fullydynamic import FullyDynamicClusterer

from conftest import assert_matches_static

FACTORIES = [
    lambda: FullyDynamicClusterer(1.0, 2, rho=0.0, dim=2),
    lambda: IncDBSCAN(1.0, 2, dim=2),
]
IDS = ["full", "inc"]


def star_arms(arms: int, length: int = 4, spacing: float = 0.8):
    """A hub at the origin with ``arms`` rays; deleting the hub splits
    the cluster ``arms`` ways."""
    import math

    pts = []
    for a in range(arms):
        angle = 2 * math.pi * a / arms
        for step in range(1, length + 1):
            pts.append(
                (math.cos(angle) * spacing * step, math.sin(angle) * spacing * step)
            )
    return pts


@pytest.mark.parametrize("factory", FACTORIES, ids=IDS)
@pytest.mark.parametrize("arms", [2, 3, 4])
class TestStarSplits:
    def test_hub_deletion_splits_n_ways(self, factory, arms):
        algo = factory()
        arm_pts = star_arms(arms)
        ids = [algo.insert(p) for p in arm_pts]
        hub = algo.insert((0.0, 0.0))
        assert len(algo.clusters().clusters) == 1
        algo.delete(hub)
        clustering = algo.clusters()
        assert len(clustering.clusters) == arms
        idmap = {pid: i for i, pid in enumerate(ids)}
        assert_matches_static(clustering, idmap, dbscan_brute(arm_pts, 1.0, 2))

    def test_reinsert_hub_heals(self, factory, arms):
        algo = factory()
        for p in star_arms(arms):
            algo.insert(p)
        hub = algo.insert((0.0, 0.0))
        algo.delete(hub)
        assert len(algo.clusters().clusters) == arms
        algo.insert((0.0, 0.0))
        assert len(algo.clusters().clusters) == 1


@pytest.mark.parametrize("factory", FACTORIES, ids=IDS)
class TestArticulationChains:
    def test_delete_every_articulation_in_turn(self, factory):
        """A chain of beads: deleting interior beads splits repeatedly."""
        algo = factory()
        pts = [(0.9 * i, 0.0) for i in range(12)]
        ids = [algo.insert(p) for p in pts]
        # Delete every third bead; each deletion adds one split.
        removed = set()
        for k in (3, 6, 9):
            algo.delete(ids[k])
            removed.add(k)
            rest = [p for i, p in enumerate(pts) if i not in removed]
            rest_ids = [pid for i, pid in enumerate(ids) if i not in removed]
            idmap = {pid: i for i, pid in enumerate(rest_ids)}
            assert_matches_static(
                algo.clusters(), idmap, dbscan_brute(rest, 1.0, 2)
            )

    def test_split_heal_cycles(self, factory):
        algo = factory()
        ids = [algo.insert((0.9 * i, 0.0)) for i in range(9)]
        mid = ids[4]
        for _ in range(10):
            algo.delete(mid)
            assert len(algo.clusters().clusters) == 2
            mid = algo.insert((0.9 * 4, 0.0))
            assert len(algo.clusters().clusters) == 1


class TestRandomArticulationStress:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_tree_shaped_clusters(self, seed):
        """Random spanning-tree geometry: many articulation points, so
        random deletions split constantly."""
        rng = random.Random(seed)
        algo = FullyDynamicClusterer(1.0, 2, rho=0.0, dim=2)
        pts = [(0.0, 0.0)]
        for _ in range(40):
            base = rng.choice(pts)
            angle = rng.uniform(0, 6.283)
            import math

            pts.append(
                (base[0] + 0.85 * math.cos(angle), base[1] + 0.85 * math.sin(angle))
            )
        live = {algo.insert(p): p for p in pts}
        order = sorted(live)
        rng.shuffle(order)
        for pid in order:
            algo.delete(pid)
            del live[pid]
            if len(live) % 8 == 0:
                keys = sorted(live)
                idmap = {k: i for i, k in enumerate(keys)}
                ref = dbscan_brute([live[k] for k in keys], 1.0, 2)
                assert_matches_static(algo.clusters(), idmap, ref)
