"""Backend-equivalence suite for the pluggable kernel layer.

Every kernel must be bit-identical across backends: counts, booleans,
proof ids and cell groupings are discrete decisions made from exact
distances on every backend, and ``distance_matrix`` uses the same
axis-ordered exact formula everywhere.  The sweep reuses the
dims {2, 3, 5} / rho {0, 0.001, 0.1} grid of
``tests/test_query_equivalence.py`` (rho enters a kernel only through
its radius argument), plus first-principles oracles, the ~64MB chunking
cap regression, registry/selection behavior, and an end-to-end
clusterer comparison at rho = 0.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import kernels
from repro.kernels import accel, interface, numpy_backend, registry
from repro.geometry.points import sq_dist

DIMS = (2, 3, 5)
RHOS = (0.0, 0.001, 0.1)
BACKENDS = ("numpy", "accel")
EPS = 0.35


@pytest.fixture(autouse=True)
def restore_backend():
    """Every test leaves the session's backend selection untouched."""
    previous = kernels.active_backend().requested
    yield
    kernels.use_backend(previous)


def _tables():
    """The resolved per-kernel dispatch tables of both backends."""
    tables = {}
    prev = kernels.active_backend().requested
    for name in BACKENDS:
        kernels.use_backend(name)
        tables[name] = {k: registry.get_kernel(k) for k in kernels.KERNEL_NAMES}
    kernels.use_backend(prev)
    return tables


def _data(dim: int, seed: int, n: int = 220, m: int = 180):
    rng = np.random.RandomState(seed)
    a = rng.rand(n, dim) * 2.0
    b = rng.rand(m, dim) * 2.0
    # Plant exact-threshold pairs so boundary decisions are exercised.
    b[0] = a[0].copy()
    b[1] = a[1] + np.array([EPS] + [0.0] * (dim - 1))
    return a, b


class TestBackendEquivalence:
    """Each kernel, numpy vs accel, over the dims x rho grid."""

    @pytest.mark.parametrize("dim", DIMS)
    @pytest.mark.parametrize("rho", RHOS)
    def test_pair_kernels_bit_identical(self, dim, rho):
        a, b = _data(dim, seed=dim * 7 + int(rho * 1000))
        sq_radius = (EPS * (1.0 + rho)) ** 2
        tables = _tables()
        ref, acc = tables["numpy"], tables["accel"]
        assert np.array_equal(
            ref["ball_counts"](a, b, sq_radius), acc["ball_counts"](a, b, sq_radius)
        )
        assert ref["any_within"](a, b, sq_radius) == acc["any_within"](a, b, sq_radius)
        far = np.full((4, dim), 1e6)
        assert ref["any_within"](a, far, sq_radius) == acc["any_within"](
            a, far, sq_radius
        )
        assert ref["count_within"](a[0], b, sq_radius) == acc["count_within"](
            a[0], b, sq_radius
        )
        ids = list(range(100, 100 + len(b)))
        assert ref["find_within_many"](a, ids, b, sq_radius) == acc[
            "find_within_many"
        ](a, ids, b, sq_radius)

    @pytest.mark.parametrize("dim", DIMS)
    def test_distance_matrix_bit_identical(self, dim):
        a, b = _data(dim, seed=dim + 31)
        tables = _tables()
        got_ref = tables["numpy"]["distance_matrix"](a, b)
        got_acc = tables["accel"]["distance_matrix"](a, b)
        assert np.array_equal(got_ref, got_acc)
        assert got_ref.shape == (len(a), len(b))

    @pytest.mark.parametrize("dim", DIMS)
    def test_grouping_kernels_identical(self, dim):
        a, _ = _data(dim, seed=dim + 5)
        a = a * 40.0 - 30.0  # negative coordinates included
        tables = _tables()
        for side in (0.7, 3.0):
            ref = tables["numpy"]["bucket_by_cell"](a, side)
            acc = tables["accel"]["bucket_by_cell"](a, side)
            assert [(c, idx.tolist()) for c, idx in ref] == [
                (c, idx.tolist()) for c, idx in acc
            ]
        cells = np.floor(a / 0.7).astype(np.int64)
        assert np.array_equal(
            tables["numpy"]["pack_cell_keys"](cells),
            tables["accel"]["pack_cell_keys"](cells),
        )

    @pytest.mark.parametrize("dim", DIMS)
    def test_box_kernels_identical(self, dim):
        a, _ = _data(dim, seed=dim + 17)
        lo = np.full(dim, 0.5)
        hi = np.full(dim, 1.2)
        tables = _tables()
        assert np.array_equal(
            tables["numpy"]["box_sq_dists"](a, lo, hi),
            tables["accel"]["box_sq_dists"](a, lo, hi),
        )
        deltas = np.floor(a * 5).astype(np.int64) - 3
        assert np.array_equal(
            tables["numpy"]["cell_gap_sq_dists"](deltas, 0.9),
            tables["accel"]["cell_gap_sq_dists"](deltas, 0.9),
        )


class TestAgainstOracles:
    """The reference backend itself must match scalar first principles."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counts_match_brute_force(self, backend):
        kernels.use_backend(backend)
        a, b = _data(3, seed=2, n=60, m=45)
        sq_radius = EPS * EPS
        want = np.array(
            [sum(sq_dist(p, q) <= sq_radius for q in b) for p in a], dtype=np.int64
        )
        assert np.array_equal(kernels.ball_counts(a, b, sq_radius), want)
        assert kernels.any_within(a, b, sq_radius) == bool(want.any())
        assert kernels.count_within(a[3], b, sq_radius) == int(want[3])
        dm = kernels.distance_matrix(a, b)
        for i in (0, 17, 59):
            for j in (0, 21, 44):
                # The vectorized accumulation may differ from the scalar
                # loop in the last ulp; cross-backend bit-identity is the
                # hard contract (asserted above).
                want_d = sq_dist(a[i], b[j])
                assert abs(dm[i, j] - want_d) <= 4 * np.spacing(want_d)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_find_within_many_lowest_index_proof(self, backend):
        kernels.use_backend(backend)
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        got = kernels.find_within_many(
            np.array([[0.05, 0.0], [4.9, 5.0], [9.0, 9.0]]), [7, 8, 9], pts, 0.25
        )
        assert got == [7, 9, None]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_inputs(self, backend):
        kernels.use_backend(backend)
        empty = np.empty((0, 2))
        b = np.array([[1.0, 2.0]])
        assert kernels.ball_counts(empty, b, 1.0).tolist() == []
        assert kernels.ball_counts(b, empty, 1.0).tolist() == [0]
        assert not kernels.any_within(empty, b, 1.0)
        assert kernels.count_within((0.0, 0.0), empty, 1.0) == 0
        assert kernels.distance_matrix(empty, b).shape == (0, 1)
        assert kernels.bucket_by_cell(empty, 1.0) == []


class TestChunking:
    """The ~64MB block cap: tiny caps must not change any output."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_blocked_outputs_identical(self, backend, monkeypatch):
        kernels.use_backend(backend)
        a, b = _data(3, seed=9, n=150, m=130)
        sq_radius = EPS * EPS
        ids = list(range(len(b)))
        want = (
            kernels.ball_counts(a, b, sq_radius),
            kernels.distance_matrix(a, b),
            kernels.any_within(a, b, sq_radius),
            kernels.count_within(a[0], b, sq_radius),
            kernels.find_within_many(a, ids, b, sq_radius),
        )
        # 512 bytes => 64-entry blocks: dozens of chunks per call.
        monkeypatch.setattr(interface, "MAX_BLOCK_BYTES", 512)
        monkeypatch.setattr(accel, "CACHE_BLOCK_BYTES", 512)
        assert np.array_equal(kernels.ball_counts(a, b, sq_radius), want[0])
        assert np.array_equal(kernels.distance_matrix(a, b), want[1])
        assert kernels.any_within(a, b, sq_radius) == want[2]
        assert kernels.count_within(a[0], b, sq_radius) == want[3]
        assert kernels.find_within_many(a, ids, b, sq_radius) == want[4]

    def test_default_cap_is_64mb(self):
        assert interface.MAX_BLOCK_BYTES == 64 * 1024 * 1024
        assert interface.max_block_entries() == 8 * 1024 * 1024


class TestRegistry:
    def test_available_backends(self):
        names = kernels.available_backends()
        assert "numpy" in names and "accel" in names and "auto" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.use_backend("cuda")

    def test_auto_resolves_to_accel(self):
        kernels.use_backend("auto")
        info = kernels.active_backend()
        assert info.requested == "auto"
        assert info.resolved == "accel"

    def test_use_backend_returns_previous(self):
        first = kernels.use_backend("numpy")
        assert kernels.active_backend_name() == "numpy"
        assert kernels.use_backend(first) == "numpy"

    def test_per_kernel_fallback(self):
        """accel deliberately omits grouping kernels: dispatch must fall
        back to the reference implementation kernel-by-kernel."""
        assert not accel.BACKEND.provides("bucket_by_cell")
        assert not accel.BACKEND.provides("pack_cell_keys")
        kernels.use_backend("accel")
        assert registry.get_kernel("bucket_by_cell") is numpy_backend.bucket_by_cell
        assert registry.get_kernel("pack_cell_keys") is numpy_backend.pack_cell_keys
        assert (
            registry.get_kernel("ball_counts")
            is accel.BACKEND.kernels["ball_counts"]
        )
        assert "fallback to numpy" in kernels.backend_summary()
        kernels.use_backend("numpy")
        assert kernels.backend_summary() == "numpy"

    def test_backend_validates_kernel_names(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernels.Backend(name="bogus", kernels={"warp_drive": lambda: None})

    def test_env_var_selects_backend(self):
        """REPRO_BACKEND is honoured at import in a fresh interpreter."""
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ, REPRO_BACKEND="numpy", PYTHONPATH=str(src))
        out = subprocess.run(
            [sys.executable, "-c",
             "import repro.kernels as k; print(k.active_backend_name())"],
            env=env, capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == "numpy"
        env["REPRO_BACKEND"] = "warp"
        bad = subprocess.run(
            [sys.executable, "-c", "import repro.kernels"],
            env=env, capture_output=True, text=True,
        )
        assert bad.returncode != 0
        assert "REPRO_BACKEND" in bad.stderr


class TestEndToEnd:
    """Whole-clusterer equivalence across backends at rho = 0."""

    @pytest.mark.parametrize("dim", DIMS)
    def test_clusterings_identical_across_backends(self, dim):
        from conftest import clustered_points
        from repro.core.fullydynamic import FullyDynamicClusterer

        points = clustered_points(200, dim, seed=dim)
        results = {}
        for backend in BACKENDS:
            kernels.use_backend(backend)
            algo = FullyDynamicClusterer(2.0, 5, rho=0.0, dim=dim)
            pids = algo.insert_many(points)
            algo.delete_many(pids[::4])
            result = algo.cgroup_by_many(list(algo.ids()))
            results[backend] = (result.groups, result.noise)
        assert results["numpy"] == results["accel"]

    def test_run_result_records_backend(self):
        from repro.core.semidynamic import SemiDynamicClusterer
        from repro.workload.runner import run_workload_batched
        from repro.workload.workload import generate_workload

        workload = generate_workload(60, 2, insert_fraction=1.0, seed=3)
        kernels.use_backend("numpy")
        result = run_workload_batched(
            SemiDynamicClusterer(150.0, 5, dim=2), workload, batch_size=16
        )
        assert result.backend == "numpy"
