"""Tests for the emptiness structure and the approximate range counter."""

from __future__ import annotations

import random

import pytest

from repro.geometry.emptiness import EmptinessStructure
from repro.geometry.points import sq_dist
from repro.geometry.range_count import ApproximateRangeCounter


class TestEmptinessStructure:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EmptinessStructure(2, 0.0, 0.1)
        with pytest.raises(ValueError):
            EmptinessStructure(2, 1.0, -0.1)

    def test_empty_structure_returns_none(self):
        s = EmptinessStructure(2, 1.0, 0.0)
        assert s.empty((0.0, 0.0)) is None

    def test_exact_mode_hit_and_miss(self):
        s = EmptinessStructure(2, 1.0, 0.0)
        s.insert(7, (3.0, 3.0))
        assert s.empty((3.5, 3.0)) == 7
        assert s.empty((5.0, 3.0)) is None

    def test_boundary_inclusive(self):
        s = EmptinessStructure(1, 1.0, 0.0)
        s.insert(1, (0.0,))
        assert s.empty((1.0,)) == 1

    def test_proof_point_within_relaxed(self):
        rng = random.Random(3)
        s = EmptinessStructure(2, 1.0, 0.5)
        pts = {}
        for pid in range(100):
            p = (rng.random() * 6, rng.random() * 6)
            pts[pid] = p
            s.insert(pid, p)
        for _ in range(200):
            q = (rng.random() * 6, rng.random() * 6)
            proof = s.empty(q)
            has_tight = any(sq_dist(p, q) <= 1.0 for p in pts.values())
            if has_tight:
                assert proof is not None
            if proof is not None:
                assert sq_dist(pts[proof], q) <= 1.5**2 + 1e-12

    def test_delete_then_miss(self):
        s = EmptinessStructure(2, 1.0, 0.0)
        s.insert(1, (0.0, 0.0))
        s.delete(1)
        assert s.empty((0.0, 0.0)) is None
        assert len(s) == 0

    def test_contains_and_ids(self):
        s = EmptinessStructure(2, 1.0, 0.0)
        s.insert(5, (1.0, 1.0))
        s.insert(6, (2.0, 2.0))
        assert 5 in s and 6 in s and 7 not in s
        assert sorted(s.ids()) == [5, 6]


class TestApproximateRangeCounter:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ApproximateRangeCounter(2, -1.0, 0.0)

    def test_exact_mode_counts(self):
        c = ApproximateRangeCounter(1, 1.0, 0.0)
        for pid, x in enumerate([0.0, 0.5, 1.0, 2.0]):
            c.insert(pid, (x,))
        assert c.count((0.0,)) == 3  # 0.0, 0.5, 1.0

    def test_count_bounds_random(self):
        rng = random.Random(17)
        c = ApproximateRangeCounter(3, 1.0, 0.3)
        pts = {}
        for pid in range(400):
            p = tuple(rng.random() * 5 for _ in range(3))
            pts[pid] = p
            c.insert(pid, p)
        for _ in range(80):
            q = tuple(rng.random() * 5 for _ in range(3))
            k = c.count(q)
            lo = sum(1 for p in pts.values() if sq_dist(p, q) <= 1.0)
            hi = sum(1 for p in pts.values() if sq_dist(p, q) <= 1.69 + 1e-12)
            assert lo <= k <= hi

    def test_stop_at_reaches_threshold(self):
        c = ApproximateRangeCounter(2, 1.0, 0.0)
        for pid in range(50):
            c.insert(pid, (0.0, 0.0))
        assert c.count((0.0, 0.0), stop_at=10) >= 10

    def test_count_after_deletions(self):
        c = ApproximateRangeCounter(2, 1.0, 0.0)
        for pid in range(20):
            c.insert(pid, (0.1 * pid, 0.0))
        for pid in range(0, 20, 2):
            c.delete(pid)
        expected = sum(1 for pid in range(1, 20, 2) if 0.1 * pid <= 1.0)
        assert c.count((0.0, 0.0)) == expected

    def test_point_accessor(self):
        c = ApproximateRangeCounter(2, 1.0, 0.0)
        c.insert(3, (1.5, 2.5))
        assert c.point(3) == (1.5, 2.5)
        assert 3 in c


class TestEmptyMany:
    """Batched emptiness: both the matrix path (small structures) and
    the kd-tree path (large ones) must honour the scalar contract."""

    def _filled(self, n, rho, seed=0, dim=2):
        import random as _random

        rng = _random.Random(seed)
        s = EmptinessStructure(dim, 1.0, rho)
        pts = {}
        for pid in range(n):
            p = tuple(rng.random() * 6 for _ in range(dim))
            pts[pid] = p
            s.insert(pid, p)
        return s, pts, rng

    @pytest.mark.parametrize("n", (5, 60, 400))
    def test_exact_mode_matches_scalar(self, n):
        """rho = 0 crosses the matrix cutoff at n=400: all paths exact."""
        import numpy as np

        s, pts, rng = self._filled(n, rho=0.0, seed=n)
        qs = np.array([[rng.random() * 7, rng.random() * 7] for _ in range(150)])
        proofs = s.empty_many(qs)
        assert len(proofs) == 150
        for q, proof in zip(qs, proofs):
            assert (proof is None) == (s.empty(tuple(q)) is None)
            if proof is not None:
                assert sq_dist(pts[proof], tuple(q)) <= 1.0

    @pytest.mark.parametrize("n", (20, 400))
    def test_relaxed_mode_contract(self, n):
        import numpy as np

        s, pts, rng = self._filled(n, rho=0.4, seed=n + 1)
        sq_relaxed = 1.4 ** 2
        qs = np.array([[rng.random() * 7, rng.random() * 7] for _ in range(150)])
        for q, proof in zip(qs, s.empty_many(qs)):
            has_tight = any(sq_dist(p, tuple(q)) <= 1.0 for p in pts.values())
            if has_tight:
                assert proof is not None
            if proof is not None:
                assert sq_dist(pts[proof], tuple(q)) <= sq_relaxed + 1e-12

    def test_matrix_path_sees_buffer_without_flushing(self):
        """Small-structure batched queries answer over buffered points
        while leaving the write-behind buffer unindexed."""
        import numpy as np

        s = EmptinessStructure(2, 1.0, 0.0)
        s.insert_many([(1, (0.0, 0.0)), (2, (4.0, 4.0))])
        assert s._pending  # still buffered
        proofs = s.empty_many(np.array([[0.5, 0.0], [4.0, 4.5], [2.0, 2.0]]))
        assert proofs == [1, 2, None]
        assert s._pending  # the batched matrix query did not flush

    def test_empty_inputs(self):
        import numpy as np

        s = EmptinessStructure(2, 1.0, 0.0)
        assert s.empty_many(np.empty((0, 2))) == []
        s.insert(1, (0.0, 0.0))
        assert s.empty_many(np.array([[3.0, 3.0]])) == [None]


class TestEmptyManyValidation:
    """Malformed query batches must fail up front with a clear
    ValueError, never as a numpy broadcast error deep in a kernel."""

    def _structure(self):
        s = EmptinessStructure(2, 1.0, 0.0)
        s.insert(1, (0.0, 0.0))
        return s

    def test_ragged_batch_rejected(self):
        with pytest.raises(ValueError, match="empty_many query"):
            self._structure().empty_many([(0.0, 0.0), (1.0,)])

    def test_object_array_rejected(self):
        import numpy as np

        ragged = np.empty(2, dtype=object)
        ragged[0] = (0.0, 0.0)
        ragged[1] = (1.0, 2.0, 3.0)
        with pytest.raises(ValueError, match="empty_many query"):
            self._structure().empty_many(ragged)

    def test_wrong_dimension_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match=r"expected \(n, 2\)"):
            self._structure().empty_many(np.zeros((3, 5)))
        # A single flat point is not an (n, dim) batch either.
        with pytest.raises(ValueError, match="empty_many query"):
            self._structure().empty_many(np.array([1.0, 2.0]))

    def test_non_finite_rejected_on_conversion(self):
        # Conversion-path inputs (anything but a ready float64 batch)
        # get the full validation, including the finite scan.
        with pytest.raises(ValueError, match="non-finite"):
            self._structure().empty_many([[float("nan"), 0.0]])

    def test_float64_batches_pass_straight_through(self):
        import numpy as np

        got = self._structure().empty_many(np.array([[0.5, 0.0], [5.0, 5.0]]))
        assert got == [1, None]

    def test_valid_lists_still_accepted(self):
        assert self._structure().empty_many([[0.5, 0.0], [5.0, 5.0]]) == [1, None]


class TestCounterMatrixPath:
    """The counting twin of the emptiness matrix path: small structures
    with buffered bulk insertions answer without indexing the buffer."""

    def test_count_sees_buffer_without_flushing(self):
        c = ApproximateRangeCounter(2, 1.0, 0.0)
        c.insert_many([(1, (0.0, 0.0)), (2, (0.5, 0.0)), (3, (4.0, 4.0))])
        assert c._pending  # still buffered
        assert c.count((0.0, 0.0)) == 2
        assert c._pending  # the kernel-backed count did not flush

    def test_matrix_count_matches_tree_count_exact(self):
        import random as _random

        rng = _random.Random(7)
        pts = [(rng.random() * 4, rng.random() * 4) for _ in range(100)]
        buffered = ApproximateRangeCounter(2, 1.0, 0.0)
        buffered.insert_many(list(enumerate(pts)))
        eager = ApproximateRangeCounter(2, 1.0, 0.0)
        for pid, p in enumerate(pts):
            eager.insert(pid, p)
        for q in pts[:25]:
            assert buffered.count(q) == eager.count(q)
