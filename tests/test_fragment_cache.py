"""Incremental fragment cache: differential correctness + counters.

The cache (:mod:`repro.core.fragments`) must be *invisible in results*:
with the knob on, every barrier splices memoized per-cell fragments and
reuses per-pair GUM decisions, yet at ``rho = 0`` the outputs are
bit-identical to a cache-off engine driven through the same updates —
across dims {2, 3, 5}, both clusterer families, shard counts {1, 4},
localized update batches between barriers (the regime where most cells
stay clean), bulk deletions, a shard-trust switch, and supervised
crash/replay recovery (a respawned worker rebuilds its cache from the
journal; recovery must not resurrect stale fragments).  At ``rho > 0``
cached reuse replays an answer computed from the same structure state a
recompute would read, so the differential holds there too.

Counters (hits / misses / invalidations) surface through
``EngineStats.fragment_cache`` and ``RunResult``; the knob resolves
explicit > ``REPRO_FRAGMENT_CACHE`` > on.
"""

from __future__ import annotations

import pytest

import repro.api as api
from repro.core.fragments import (
    FRAGMENT_CACHE_ENV,
    FragmentCache,
    FragmentCacheStats,
    resolve_fragment_cache,
)
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.errors import ConfigError
from repro.workload.config import eps_for

from conftest import clustered_points

DIMS = (2, 3, 5)
MINPTS = 5


def _eps(dim: int) -> float:
    """An eps matched to the ``clustered_points`` scale (extent ~30)."""
    return 1.25 * dim


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------


class TestKnobResolution:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(FRAGMENT_CACHE_ENV, raising=False)
        assert resolve_fragment_cache(None) is True

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("ON", True), ("yes", True),
        ("0", False), ("false", False), ("OFF", False), ("no", False),
    ])
    def test_env_fallback(self, monkeypatch, value, expected):
        monkeypatch.setenv(FRAGMENT_CACHE_ENV, value)
        assert resolve_fragment_cache(None) is expected

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(FRAGMENT_CACHE_ENV, "0")
        assert resolve_fragment_cache(True) is True
        monkeypatch.setenv(FRAGMENT_CACHE_ENV, "1")
        assert resolve_fragment_cache(False) is False

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv(FRAGMENT_CACHE_ENV, "maybe")
        with pytest.raises(ConfigError, match="REPRO_FRAGMENT_CACHE"):
            resolve_fragment_cache(None)

    def test_config_knob_validation(self, monkeypatch):
        with pytest.raises(ConfigError, match="fragment_cache"):
            api.EngineConfig(eps=1.0, minpts=3, fragment_cache="on")
        cfg = api.EngineConfig(eps=1.0, minpts=3, fragment_cache=False)
        assert cfg.resolved_fragment_cache is False
        monkeypatch.delenv(FRAGMENT_CACHE_ENV, raising=False)
        assert api.EngineConfig(
            eps=1.0, minpts=3
        ).resolved_fragment_cache is True

    def test_env_reaches_clusterer(self, monkeypatch):
        monkeypatch.setenv(FRAGMENT_CACHE_ENV, "0")
        assert not FullyDynamicClusterer(1.0, 3).fragment_cache_enabled
        monkeypatch.setenv(FRAGMENT_CACHE_ENV, "1")
        assert SemiDynamicClusterer(1.0, 3).fragment_cache_enabled


# ----------------------------------------------------------------------
# Differential: cache-on == cache-off
# ----------------------------------------------------------------------


def _open(algorithm, dim, rho, cache, shards=None):
    return api.open(
        algorithm=algorithm,
        eps=_eps(dim),
        minpts=MINPTS,
        rho=rho,
        dim=dim,
        fragment_cache=cache,
        shards=shards,
        shard_block=1 if shards else None,
    )


def _canon_snapshot(snapshot):
    c = snapshot.clustering
    return [sorted(map(sorted, c.clusters)), sorted(c.noise)]


def _drive(engine, dim, rho, with_deletes):
    """Barrier-heavy localized workload; returns every barrier output.

    Ingests a clustered base, then alternates small *localized* batches
    (consecutive points of one blob land in few cells) with full
    snapshots and whole-live-set C-group-by barriers — the cache's
    target regime, where a warm barrier should splice mostly clean
    cells.  The outputs are what the differential compares.
    """
    outputs = []
    base = clustered_points(180, dim, seed=dim * 11)
    extra = clustered_points(60, dim, seed=dim * 11 + 1)
    pids = engine.ingest(base)
    live = list(pids)
    outputs.append(_canon_snapshot(engine.snapshot()))
    for step in range(3):
        batch = extra[step * 20:(step + 1) * 20]
        live.extend(engine.ingest(batch))
        if with_deletes and step:
            victims = live[step::40][:6]
            engine.delete_many(victims)
            live = [pid for pid in live if pid not in set(victims)]
        outputs.append(_canon_snapshot(engine.snapshot()))
        outputs.append(engine.cgroup_by_many(live).result)
        # Repeat barrier with zero mutations in between: fully warm.
        outputs.append(_canon_snapshot(engine.snapshot()))
    return outputs


@pytest.mark.parametrize("rho", (0.0, 0.01))
@pytest.mark.parametrize("dim", DIMS)
@pytest.mark.parametrize("algorithm,with_deletes", [
    ("semi", False),
    ("full", True),
])
def test_cache_is_invisible_single_engine(algorithm, with_deletes, dim, rho):
    on = _open(algorithm, dim, rho, cache=True)
    off = _open(algorithm, dim, rho, cache=False)
    assert on.stats().fragment_cache is not None
    assert off.stats().fragment_cache is None
    got = _drive(on, dim, rho, with_deletes)
    want = _drive(off, dim, rho, with_deletes)
    assert got == want
    stats = on.stats().fragment_cache
    assert stats.hits > 0  # warm barriers actually spliced fragments
    if with_deletes:
        assert stats.invalidations > 0


@pytest.mark.parametrize("shards", (1, 4))
@pytest.mark.parametrize("dim", DIMS)
def test_cache_is_invisible_sharded(dim, shards):
    """Sharded cache-on vs single cache-off at rho=0, tiny blocks.

    Covers the router's boundary merge consuming cached per-shard
    membership/GUM fragments under the trust predicate, against the
    plain uncached engine as the oracle.
    """
    sharded = _open("full", dim, 0.0, cache=True, shards=shards)
    single = _open("full", dim, 0.0, cache=False)
    try:
        got = _drive(sharded, dim, 0.0, with_deletes=True)
        want = _drive(single, dim, 0.0, with_deletes=True)
        assert got == want
        stats = sharded.stats().fragment_cache
        assert stats is not None and stats.hits > 0
    finally:
        sharded.close()


def test_sequential_updates_invalidate_correctly():
    """Point-at-a-time insert/delete paths also dirty their cells."""
    on = _open("full", 2, 0.0, cache=True)
    off = _open("full", 2, 0.0, cache=False)
    pts = clustered_points(120, 2, seed=5)
    for engine in (on, off):
        engine.ingest(pts[:100])
    assert _canon_snapshot(on.snapshot()) == _canon_snapshot(off.snapshot())
    for p in pts[100:]:
        for engine in (on, off):
            engine.insert(p)
        assert _canon_snapshot(on.snapshot()) == _canon_snapshot(
            off.snapshot()
        )
    for pid in (0, 17, 55):
        for engine in (on, off):
            engine.delete(pid)
        assert _canon_snapshot(on.snapshot()) == _canon_snapshot(
            off.snapshot()
        )


# ----------------------------------------------------------------------
# Counters and stats plumbing
# ----------------------------------------------------------------------


class TestCounters:
    def test_warm_snapshot_is_all_hits(self):
        engine = _open("full", 2, 0.0, cache=True)
        engine.ingest(clustered_points(150, 2, seed=3))
        engine.snapshot()
        cold = engine.stats().fragment_cache
        assert cold.misses > 0 and cold.hits == 0
        engine.snapshot()
        warm = engine.stats().fragment_cache
        assert warm.misses == cold.misses  # nothing recomputed
        assert warm.hits == cold.misses  # every cell spliced

    def test_mutations_count_invalidations(self):
        engine = _open("full", 2, 0.0, cache=True)
        pids = engine.ingest(clustered_points(150, 2, seed=3))
        engine.snapshot()
        assert engine.stats().fragment_cache.invalidations == 0
        engine.delete_many(pids[:3])
        assert engine.stats().fragment_cache.invalidations > 0

    def test_partial_queries_bypass_the_cache(self):
        engine = _open("full", 2, 0.0, cache=True)
        pids = engine.ingest(clustered_points(200, 2, seed=4))
        engine.cgroup_by_many(pids[: len(pids) // 3])
        stats = engine.stats().fragment_cache
        # A sparse sample rarely covers whole cells; partial buckets
        # must neither populate nor count against the cache.
        assert stats.hits == 0

    def test_sharded_stats_aggregate(self):
        engine = _open("full", 2, 0.0, cache=True, shards=4)
        try:
            engine.ingest(clustered_points(150, 2, seed=6))
            engine.snapshot()
            engine.snapshot()
            total = engine.stats().fragment_cache
            parts = [
                s.fragment_cache
                for s in engine.stats().per_shard
                if s.fragment_cache is not None
            ]
            assert total.hits == sum(p.hits for p in parts) > 0
            assert total.misses == sum(p.misses for p in parts)
        finally:
            engine.close()

    def test_run_result_carries_counters(self):
        from repro.workload.runner import run_workload_engine
        from repro.workload.workload import generate_workload

        workload = generate_workload(
            150, 2, insert_fraction=1.0, query_frequency=30, seed=9
        )
        engine = api.open(
            algorithm="semi", eps=eps_for(2), minpts=MINPTS,
            batch_size=25, fragment_cache=True,
        )
        result = run_workload_engine(engine, workload)
        stats = engine.stats().fragment_cache
        assert result.fragment_hits == stats.hits
        assert result.fragment_misses == stats.misses
        assert result.fragment_invalidations == stats.invalidations

    def test_stats_are_picklable(self):
        import pickle

        stats = FragmentCacheStats(hits=3, misses=2, invalidations=1)
        assert pickle.loads(pickle.dumps(stats)) == stats


# ----------------------------------------------------------------------
# Trust safety
# ----------------------------------------------------------------------


def test_trust_switch_flushes_everything():
    """A fragment computed under one trust set must not serve another."""
    clusterer = FullyDynamicClusterer(
        _eps(2), MINPTS, dim=2, fragment_cache=True
    )
    pids = clusterer.insert_many(clustered_points(120, 2, seed=8))
    full = clusterer.membership_fragments(pids, trust=None)
    cached = clusterer._fragments.stats()
    assert cached.misses > 0

    cells = sorted(
        {clusterer.cell_of(pid) for pid in pids}
    )
    half = set(cells[: len(cells) // 2])
    trust = half.__contains__
    # Per the contract (and the shard router's usage), queried ids live
    # in trusted cells — the predicate restricts decisions, not inputs.
    pids_in_half = [p for p in pids if clusterer.cell_of(p) in half]
    restricted = clusterer.membership_fragments(pids_in_half, trust=trust)
    flushed = clusterer._fragments.stats()
    # The predicate switch dropped every entry; nothing was served from
    # the unrestricted run's fragments.
    assert flushed.invalidations > cached.invalidations
    assert set(restricted.fragments) <= half
    # Untrusted memberships came back as probes, not silent grants.
    assert all(cell not in half for _, cell in restricted.probes)
    # Flipping back is a fresh flush again, and the unrestricted result
    # is reproduced exactly.
    again = clusterer.membership_fragments(pids, trust=None)
    assert again.fragments == full.fragments
    assert again.unmatched == full.unmatched


def test_trust_identity_not_equality():
    """Binding is by predicate object identity (stable per deployment)."""
    cache = FragmentCache()
    a = lambda cell: True  # noqa: E731
    cache.begin(a)
    cache.store_gum(((0, 0), (0, 1)), True)
    cache.begin(a)  # same object: nothing dropped
    assert cache.lookup_gum(((0, 0), (0, 1))) is True
    cache.begin(lambda cell: True)  # equal behavior, different object
    assert cache.lookup_gum(((0, 0), (0, 1))) is None


# ----------------------------------------------------------------------
# Crash / replay recovery
# ----------------------------------------------------------------------


def test_crash_replay_rebuilds_cache_consistently():
    """Supervised recovery must not resurrect stale fragments.

    Both workers crash mid-run *after* warm barriers populated their
    caches; the respawned workers rebuild state (cache empty) by exact
    journal replay.  The recovered deployment's warm snapshot must stay
    bit-identical to a cache-off single engine at rho=0, and the run
    must actually have recovered (restarts >= 1).
    """
    pts = clustered_points(140, 2, seed=12)
    single = _open("full", 2, 0.0, cache=False)
    sharded = api.open(
        algorithm="full",
        eps=_eps(2),
        minpts=MINPTS,
        dim=2,
        fragment_cache=True,
        shards=2,
        shard_executor="process",
        shard_fault_plan="crash:ingest:2",
    )
    try:
        s_ids = single.ingest(pts[:80])
        g_ids = sharded.ingest(pts[:80])
        # Warm the worker-side caches before the crash.
        assert _canon_snapshot(sharded.snapshot()) == _canon_snapshot(
            single.snapshot()
        )
        single.delete_many(s_ids[:10])
        sharded.delete_many(g_ids[:10])
        # Second ingest per worker: the plan crashes every shard here,
        # so recovery replays ingest + delete_many before retrying.
        single.ingest(pts[80:])
        sharded.ingest(pts[80:])
        assert sharded.restarts >= 1
        assert _canon_snapshot(sharded.snapshot()) == _canon_snapshot(
            single.snapshot()
        )
        # And the rebuilt cache serves warm barriers correctly too.
        assert _canon_snapshot(sharded.snapshot()) == _canon_snapshot(
            single.snapshot()
        )
    finally:
        single.close()
        sharded.close()
