"""Tests for the R-tree substrate used by IncDBSCAN."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.points import sq_dist
from repro.geometry.rtree import RTree


def brute_ball(points, q, sq_radius):
    return {pid for pid, p in points.items() if sq_dist(p, q) <= sq_radius}


class TestBasics:
    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            RTree(0)

    def test_empty_queries(self):
        t = RTree(2)
        assert t.ball_ids((0.0, 0.0), 100.0) == []
        assert t.ball_count((0.0, 0.0), 100.0) == 0

    def test_single_point(self):
        t = RTree(2)
        t.insert(0, (1.0, 1.0))
        assert t.ball_ids((1.0, 1.0), 0.0) == [0]
        assert 0 in t and len(t) == 1
        assert t.point(0) == (1.0, 1.0)

    def test_duplicate_id_rejected(self):
        t = RTree(2)
        t.insert(0, (0.0, 0.0))
        with pytest.raises(KeyError):
            t.insert(0, (1.0, 1.0))

    def test_delete_then_gone(self):
        t = RTree(2)
        t.insert(0, (0.0, 0.0))
        t.delete(0)
        assert len(t) == 0
        assert t.ball_ids((0.0, 0.0), 1.0) == []

    def test_splits_on_overflow(self):
        t = RTree(2)
        for i in range(200):
            t.insert(i, (float(i % 20), float(i // 20)))
        assert len(t) == 200
        got = set(t.ball_ids((10.0, 5.0), 4.0))
        pts = {i: (float(i % 20), float(i // 20)) for i in range(200)}
        assert got == brute_ball(pts, (10.0, 5.0), 4.0)

    def test_identical_points_split_fallback(self):
        t = RTree(2)
        for i in range(60):
            t.insert(i, (3.0, 3.0))
        assert t.ball_count((3.0, 3.0), 0.0) == 60
        for i in range(60):
            t.delete(i)
        assert len(t) == 0


class TestRandomized:
    @pytest.mark.parametrize("dim", [1, 2, 3, 5])
    def test_matches_brute_force(self, dim):
        rng = random.Random(dim)
        t = RTree(dim)
        pts = {}
        for pid in range(300):
            p = tuple(rng.random() * 10 for _ in range(dim))
            pts[pid] = p
            t.insert(pid, p)
        for _ in range(50):
            q = tuple(rng.random() * 10 for _ in range(dim))
            r = rng.random() * 3
            assert set(t.ball_ids(q, r * r)) == brute_ball(pts, q, r * r)

    def test_churn_matches_brute_force(self):
        rng = random.Random(123)
        t = RTree(2)
        pts = {}
        next_id = 0
        for step in range(1500):
            if pts and rng.random() < 0.45:
                pid = rng.choice(list(pts))
                t.delete(pid)
                del pts[pid]
            else:
                p = (rng.random() * 6, rng.random() * 6)
                t.insert(next_id, p)
                pts[next_id] = p
                next_id += 1
            if step % 75 == 0:
                q = (rng.random() * 6, rng.random() * 6)
                assert set(t.ball_ids(q, 2.0)) == brute_ball(pts, q, 2.0)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.tuples(st.floats(0, 8), st.floats(0, 8)), max_size=80),
    st.tuples(st.floats(0, 8), st.floats(0, 8)),
    st.floats(0.1, 4.0),
)
def test_hypothesis_matches_brute(cloud, q, radius):
    t = RTree(2)
    pts = {}
    for pid, p in enumerate(cloud):
        t.insert(pid, p)
        pts[pid] = p
    assert set(t.ball_ids(q, radius * radius)) == brute_ball(pts, q, radius * radius)
