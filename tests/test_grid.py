"""Tests for the grid geometry and neighbor discovery strategies."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grid import Grid
from repro.geometry.points import sq_dist


class TestGeometry:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Grid(0.0, 2)
        with pytest.raises(ValueError):
            Grid(1.0, 0)
        with pytest.raises(ValueError):
            Grid(1.0, 2, rho=-0.5)
        with pytest.raises(ValueError):
            Grid(1.0, 2, strategy="bogus")

    def test_side_length(self):
        g = Grid(2.0, 4)
        assert g.side == pytest.approx(1.0)
        g3 = Grid(3.0, 3)
        assert g3.side == pytest.approx(3.0 / math.sqrt(3))

    def test_same_cell_within_eps(self):
        """The defining property: any two points in one cell are <= eps apart."""
        rng = random.Random(0)
        for dim in (1, 2, 3, 5, 7):
            g = Grid(1.0, dim)
            for _ in range(200):
                base = tuple(rng.uniform(-5, 5) for _ in range(dim))
                cell = g.cell_of(base)
                other = tuple(
                    (c + rng.random()) * g.side for c in cell
                )
                assert g.cell_of(other) == cell or any(
                    abs((b / g.side) - round(b / g.side)) < 1e-9 for b in other
                )
                if g.cell_of(other) == cell:
                    assert sq_dist(base, other) <= 1.0 + 1e-9

    def test_cell_of_negative_coordinates(self):
        g = Grid(1.0, 2)
        cell = g.cell_of((-0.1, -0.1))
        assert cell == (-1, -1)

    def test_cell_min_dist_adjacent_is_zero(self):
        g = Grid(1.0, 2)
        assert g.cell_min_sq_dist((0, 0), (0, 1)) == 0.0
        assert g.cell_min_sq_dist((0, 0), (1, 1)) == 0.0

    def test_cell_min_dist_gap(self):
        g = Grid(1.0, 2)
        d = g.cell_min_sq_dist((0, 0), (3, 0))
        assert d == pytest.approx((2 * g.side) ** 2)

    def test_cells_close_symmetric(self):
        g = Grid(1.0, 3)
        assert g.cells_close((0, 0, 0), (2, 1, 0))
        assert g.cells_close((2, 1, 0), (0, 0, 0))

    def test_cell_box(self):
        g = Grid(2.0, 2)
        lo, hi = g.cell_box((1, -1))
        assert lo == pytest.approx((g.side, -g.side))
        assert hi == pytest.approx((2 * g.side, 0.0))

    def test_threshold_includes_rho(self):
        g0 = Grid(1.0, 2, rho=0.0)
        g5 = Grid(1.0, 2, rho=0.5)
        assert g5.threshold == pytest.approx(1.5)
        assert len(g5.offsets) >= len(g0.offsets)


class TestOffsets:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_offsets_match_predicate(self, dim):
        """Every offset in the table is close; near-misses are excluded."""
        g = Grid(1.0, dim)
        table = set(g.offsets)
        origin = tuple([0] * dim)
        reach = int(math.ceil(g.threshold / g.side)) + 2
        for delta in _all_offsets(dim, reach):
            if delta == origin:
                continue
            expected = g.cells_close(origin, delta)
            assert (delta in table) == expected, delta

    def test_offsets_exclude_zero(self):
        g = Grid(1.0, 2)
        assert (0, 0) not in g.offsets

    def test_2d_offset_count(self):
        # side = eps/sqrt(2); cells with |delta| <= 2 minus far corners.
        g = Grid(1.0, 2)
        # (±2, ±2) has gap sqrt(2)*side*sqrt(2) = ... compute directly:
        expected = sum(
            1
            for dx in range(-3, 4)
            for dy in range(-3, 4)
            if (dx, dy) != (0, 0) and g.cells_close((0, 0), (dx, dy))
        )
        assert len(g.offsets) == expected


def _all_offsets(dim, reach):
    if dim == 0:
        yield ()
        return
    for rest in _all_offsets(dim - 1, reach):
        for x in range(-reach, reach + 1):
            yield (x, *rest)


class TestNeighborDiscovery:
    @pytest.mark.parametrize("strategy", ["offsets", "scan"])
    def test_strategies_agree(self, strategy):
        rng = random.Random(4)
        registry = {}
        g = Grid(1.0, 3, strategy=strategy)
        for _ in range(150):
            p = tuple(rng.uniform(0, 6) for _ in range(3))
            registry[g.cell_of(p)] = True
        reference = Grid(1.0, 3, strategy="scan")
        for cell in list(registry)[:40]:
            got = set(g.neighbors_of(cell, registry))
            want = set(reference.neighbors_of(cell, registry))
            assert got == want

    def test_neighbors_excludes_self(self):
        g = Grid(1.0, 2)
        registry = {(0, 0): True, (0, 1): True}
        assert (0, 0) not in g.neighbors_of((0, 0), registry)
        assert (0, 1) in g.neighbors_of((0, 0), registry)

    def test_auto_strategy_runs_high_dim(self):
        g = Grid(1.0, 7, strategy="auto")
        registry = {tuple([0] * 7): True, tuple([1] * 7): True}
        got = g.neighbors_of(tuple([0] * 7), registry)
        assert got == [tuple([1] * 7)]

    def test_bounding_cells(self):
        g = Grid(1.0, 2)
        cells = g.bounding_cells([(0.1, 0.1), (0.2, 0.2), (5.0, 5.0)])
        assert len(cells) == 2


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 3),
    st.floats(0.5, 5.0),
    st.tuples(st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5)),
    st.tuples(st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5)),
)
def test_hypothesis_closeness_matches_point_distance(dim, eps, ca, cb):
    """If two cells contain points within eps, they must be close."""
    g = Grid(eps, dim)
    a = ca[:dim]
    b = cb[:dim]
    # Closest possible points of the two cells:
    pa = []
    pb = []
    for i in range(dim):
        if a[i] < b[i]:
            pa.append((a[i] + 1) * g.side)
            pb.append(b[i] * g.side)
        elif a[i] > b[i]:
            pa.append(a[i] * g.side)
            pb.append((b[i] + 1) * g.side)
        else:
            pa.append(a[i] * g.side)
            pb.append(a[i] * g.side)
    closest = math.sqrt(sq_dist(tuple(pa), tuple(pb)))
    if closest <= eps * 0.999:
        assert g.cells_close(tuple(a), tuple(b))
    if closest > eps * 1.001:
        assert not g.cells_close(tuple(a), tuple(b))


class TestNegativeCoordinateFlooring:
    """Regression: cell_of must floor (not truncate) negative coordinates,
    and the vectorized batch bucketing must agree with it exactly."""

    def test_flooring_across_zero(self):
        g = Grid(1.0, 1)
        side = g.side
        assert g.cell_of((-1e-9,)) == (-1,)
        assert g.cell_of((0.0,)) == (0,)
        assert g.cell_of((-side,)) == (-1,)
        assert g.cell_of((-side - 1e-9,)) == (-2,)
        assert g.cell_of((-2.5 * side,)) == (-3,)

    def test_point_always_inside_its_cell_box(self):
        rng = random.Random(13)
        for dim in (1, 2, 3, 5):
            g = Grid(1.7, dim)
            for _ in range(300):
                p = tuple(rng.uniform(-20, 20) for _ in range(dim))
                lo, hi = g.cell_box(g.cell_of(p))
                assert all(
                    lo[i] <= p[i] <= hi[i] for i in range(dim)
                ), f"{p} escapes box of {g.cell_of(p)}"

    def test_vectorized_bucketing_matches_cell_of(self):
        import numpy as np

        from repro.core.bulk import bucket_by_cell

        rng = random.Random(7)
        for dim in (1, 2, 3):
            g = Grid(0.9, dim)
            pts = [
                tuple(rng.uniform(-30, 30) for _ in range(dim))
                for _ in range(500)
            ]
            arr = np.asarray(pts, dtype=float)
            seen = {}
            for cell, idxs in bucket_by_cell(arr, g.side):
                for i in idxs.tolist():
                    seen[i] = cell
            assert len(seen) == len(pts)
            for i, p in enumerate(pts):
                assert seen[i] == g.cell_of(p)
