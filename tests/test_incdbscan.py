"""Tests for the IncDBSCAN baseline: it maintains *exact* DBSCAN."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.incdbscan import IncDBSCAN
from repro.baselines.static_dbscan import dbscan_brute

from conftest import assert_matches_static, clustered_points, random_points


class TestBasics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IncDBSCAN(0.0, 3)
        with pytest.raises(ValueError):
            IncDBSCAN(1.0, 0)

    def test_dimension_mismatch(self):
        algo = IncDBSCAN(1.0, 3, dim=2)
        with pytest.raises(ValueError):
            algo.insert((1.0,))

    def test_single_insert_noise(self):
        algo = IncDBSCAN(1.0, 3)
        pid = algo.insert((0.0, 0.0))
        assert not algo.is_core(pid)
        assert algo.cgroup_by([pid]).noise == [pid]

    def test_core_formation(self):
        algo = IncDBSCAN(1.0, 3)
        ids = [algo.insert(p) for p in [(0, 0), (0.5, 0), (0, 0.5)]]
        assert all(algo.is_core(pid) for pid in ids)
        result = algo.cgroup_by(ids)
        assert len(result.groups) == 1

    def test_merge_on_insert(self):
        algo = IncDBSCAN(1.0, 2, dim=1)
        a = algo.insert((0.0,))
        b = algo.insert((0.5,))
        c = algo.insert((3.0,))
        d = algo.insert((3.5,))
        assert not algo.same_cluster(a, c)
        algo.insert((1.5,))
        algo.insert((2.3,))
        assert algo.same_cluster(a, c)

    def test_split_on_delete(self):
        algo = IncDBSCAN(1.0, 2, dim=1)
        ids = [algo.insert((float(i),)) for i in range(9)]
        assert len(algo.clusters().clusters) == 1
        algo.delete(ids[4])
        clustering = algo.clusters()
        assert len(clustering.clusters) == 2

    def test_cluster_vanishes_when_sole_core_removed(self):
        algo = IncDBSCAN(1.0, 3, dim=1)
        center = algo.insert((0.0,))
        left = algo.insert((-0.9,))
        right = algo.insert((0.9,))
        assert algo.is_core(center)
        assert not algo.is_core(left)
        algo.delete(center)
        result = algo.cgroup_by([left, right])
        assert set(result.noise) == {left, right}

    def test_range_query_counter_increments(self):
        algo = IncDBSCAN(1.0, 3)
        before = algo.range_queries
        algo.insert((0.0, 0.0))
        assert algo.range_queries == before + 1


class TestExactEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_insert_only(self, seed, dim):
        pts = random_points(110, dim, extent=10.0, seed=seed)
        algo = IncDBSCAN(1.5, 4, dim=dim)
        ids = [algo.insert(p) for p in pts]
        idmap = {pid: i for i, pid in enumerate(ids)}
        assert_matches_static(algo.clusters(), idmap, dbscan_brute(pts, 1.5, 4))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_churn(self, seed):
        rng = random.Random(seed)
        pts = clustered_points(130, 2, seed=seed + 50)
        algo = IncDBSCAN(2.0, 4, dim=2)
        live = {}
        for i, p in enumerate(pts):
            live[algo.insert(p)] = p
            if i % 3 == 2:
                victim = rng.choice(sorted(live))
                algo.delete(victim)
                del live[victim]
        keys = sorted(live)
        idmap = {pid: i for i, pid in enumerate(keys)}
        ref = dbscan_brute([live[k] for k in keys], 2.0, 4)
        assert_matches_static(algo.clusters(), idmap, ref)

    def test_interleaved_prefixes(self):
        rng = random.Random(8)
        pts = clustered_points(80, 2, seed=88)
        algo = IncDBSCAN(2.0, 4, dim=2)
        live = {}
        for i, p in enumerate(pts):
            live[algo.insert(p)] = p
            if rng.random() < 0.35 and live:
                victim = rng.choice(sorted(live))
                algo.delete(victim)
                del live[victim]
            if i % 12 == 11:
                keys = sorted(live)
                idmap = {pid: j for j, pid in enumerate(keys)}
                ref = dbscan_brute([live[k] for k in keys], 2.0, 4)
                assert_matches_static(algo.clusters(), idmap, ref)

    def test_matches_fully_dynamic_exact(self):
        """IncDBSCAN and our fully-dynamic rho=0 clusterer agree exactly."""
        from repro.core.fullydynamic import FullyDynamicClusterer

        rng = random.Random(17)
        pts = clustered_points(100, 2, seed=17)
        inc = IncDBSCAN(2.0, 5, dim=2)
        ours = FullyDynamicClusterer(2.0, 5, rho=0.0, dim=2)
        inc_live, ours_live = {}, {}
        for i, p in enumerate(pts):
            inc_live[inc.insert(p)] = i
            ours_live[ours.insert(p)] = i
            if i % 4 == 3:
                keys = sorted(inc_live.values())
                victim_idx = rng.choice(keys)
                inc_pid = next(k for k, v in inc_live.items() if v == victim_idx)
                ours_pid = next(k for k, v in ours_live.items() if v == victim_idx)
                inc.delete(inc_pid)
                ours.delete(ours_pid)
                del inc_live[inc_pid]
                del ours_live[ours_pid]
        canon_inc = frozenset(
            frozenset(inc_live[p] for p in c) for c in inc.clusters().clusters
        )
        canon_ours = frozenset(
            frozenset(ours_live[p] for p in c) for c in ours.clusters().clusters
        )
        assert canon_inc == canon_ours


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 10), st.floats(0, 10)),
        min_size=1,
        max_size=35,
    ),
    st.data(),
)
def test_hypothesis_incdbscan_churn(cloud, data):
    algo = IncDBSCAN(2.0, 3, dim=2)
    live = {}
    for p in cloud:
        live[algo.insert(p)] = p
    victims = data.draw(
        st.lists(st.sampled_from(sorted(live)), unique=True, max_size=len(live))
    )
    for pid in victims:
        algo.delete(pid)
        del live[pid]
    keys = sorted(live)
    idmap = {pid: i for i, pid in enumerate(keys)}
    ref = dbscan_brute([live[k] for k in keys], 2.0, 3)
    assert_matches_static(algo.clusters(), idmap, ref)
