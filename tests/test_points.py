"""Unit and property tests for repro.geometry.points."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.points import (
    box_inside_ball,
    box_max_sq_dist,
    box_min_sq_dist,
    box_of_points,
    boxes_min_sq_dist,
    dist,
    sq_dist,
)

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def pts(dim: int):
    return st.tuples(*([coords] * dim))


class TestSqDist:
    def test_zero_for_identical(self):
        assert sq_dist((1.0, 2.0), (1.0, 2.0)) == 0.0

    def test_known_345(self):
        assert sq_dist((0.0, 0.0), (3.0, 4.0)) == 25.0
        assert dist((0.0, 0.0), (3.0, 4.0)) == 5.0

    def test_one_dimension(self):
        assert sq_dist((2.0,), (5.0,)) == 9.0

    def test_high_dimension(self):
        a = tuple([0.0] * 7)
        b = tuple([1.0] * 7)
        assert sq_dist(a, b) == pytest.approx(7.0)

    @given(pts(3), pts(3))
    def test_symmetry(self, p, q):
        assert sq_dist(p, q) == sq_dist(q, p)

    @given(pts(2), pts(2), pts(2))
    def test_triangle_inequality(self, a, b, c):
        assert dist(a, c) <= dist(a, b) + dist(b, c) + 1e-6

    @given(pts(4))
    def test_consistency_with_math(self, p):
        q = tuple(0.0 for _ in p)
        expected = math.sqrt(sum(x * x for x in p))
        assert dist(p, q) == pytest.approx(expected, rel=1e-12)


class TestBoxes:
    def test_box_of_single_point(self):
        lo, hi = box_of_points([(1.0, 2.0)])
        assert lo == (1.0, 2.0) and hi == (1.0, 2.0)

    def test_box_of_points_envelops(self):
        lo, hi = box_of_points([(0.0, 5.0), (3.0, 1.0), (-1.0, 2.0)])
        assert lo == (-1.0, 1.0)
        assert hi == (3.0, 5.0)

    def test_box_of_points_empty_raises(self):
        with pytest.raises(ValueError):
            box_of_points([])

    def test_min_dist_inside_is_zero(self):
        box = ((0.0, 0.0), (2.0, 2.0))
        assert box_min_sq_dist(box, (1.0, 1.0)) == 0.0

    def test_min_dist_outside_corner(self):
        box = ((0.0, 0.0), (1.0, 1.0))
        assert box_min_sq_dist(box, (2.0, 2.0)) == pytest.approx(2.0)

    def test_max_dist_from_center(self):
        box = ((0.0, 0.0), (2.0, 2.0))
        assert box_max_sq_dist(box, (1.0, 1.0)) == pytest.approx(2.0)

    def test_inside_ball_true(self):
        box = ((0.0, 0.0), (1.0, 1.0))
        assert box_inside_ball(box, (0.5, 0.5), 0.51)

    def test_inside_ball_false(self):
        box = ((0.0, 0.0), (1.0, 1.0))
        assert not box_inside_ball(box, (0.5, 0.5), 0.49)

    def test_boxes_min_dist_overlapping(self):
        a = ((0.0, 0.0), (2.0, 2.0))
        b = ((1.0, 1.0), (3.0, 3.0))
        assert boxes_min_sq_dist(a, b) == 0.0

    def test_boxes_min_dist_disjoint(self):
        a = ((0.0, 0.0), (1.0, 1.0))
        b = ((3.0, 0.0), (4.0, 1.0))
        assert boxes_min_sq_dist(a, b) == pytest.approx(4.0)

    @given(st.lists(pts(3), min_size=1, max_size=20), pts(3))
    def test_min_le_point_dists_le_max(self, cloud, q):
        box = box_of_points(cloud)
        lo = box_min_sq_dist(box, q)
        hi = box_max_sq_dist(box, q)
        for p in cloud:
            d = sq_dist(p, q)
            assert lo <= d * (1 + 1e-9) + 1e-9
            assert d <= hi * (1 + 1e-9) + 1e-9
