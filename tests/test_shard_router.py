"""Unit tests of the sharding layer: topology, routing, error parity,
session barriers, and the epoch consistency token.

The differential clustering guarantees live in
``tests/test_shard_equivalence.py``; this module pins the contracts
around them — in particular the two satellite behaviors of the PR:

* **dead-pid error parity** — a ``delete_many`` (or query) naming an
  unknown id must raise the single engine's exact
  :class:`UnknownPointError`, with *no partial mutation on any shard*;
* **ingest-session barriers** — buffered runs spanning shards flush
  atomically on a query barrier, and a failed run is rejected before
  any shard mutates, with only that run discarded.
"""

from __future__ import annotations

import random

import pytest

import repro.api as api
from repro.api import EngineConfig
from repro.errors import (
    ConfigError,
    ReproError,
    UnknownPointError,
    UnsupportedOperationError,
)
from repro.shard import ShardTopology, ShardedEngine
from repro.workload.runner import run_workload_engine
from repro.workload.workload import generate_workload

from conftest import clustered_points


def _sharded(shards=3, block=2, **overrides):
    knobs = dict(
        algorithm="full", eps=2.5, minpts=5, dim=2,
        shards=shards, shard_block=block,
    )
    knobs.update(overrides)
    return api.open(**knobs)


def _shard_fingerprint(engine):
    """Per-shard (epoch, live size) — what "no mutation" is judged by."""
    return [(s.epoch, s.points) for s in engine.stats().per_shard]


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------


class TestTopology:
    def test_ownership_is_deterministic_across_instances(self):
        a = ShardTopology(eps=2.0, dim=3, rho=0.001, shard_count=5, block=4)
        b = ShardTopology(eps=2.0, dim=3, rho=0.001, shard_count=5, block=4)
        rng = random.Random(0)
        cells = [
            tuple(rng.randrange(-50, 50) for _ in range(3)) for _ in range(200)
        ]
        assert [a.owner_of_cell(c) for c in cells] == [
            b.owner_of_cell(c) for c in cells
        ]

    def test_vectorized_owners_match_scalar(self):
        import numpy as np

        topo = ShardTopology(eps=2.0, dim=2, rho=0.0, shard_count=7, block=3)
        rng = random.Random(1)
        cells = [
            tuple(rng.randrange(-40, 40) for _ in range(2)) for _ in range(300)
        ]
        vec = topo.owners_of_cells(np.asarray(cells, dtype=np.int64))
        assert vec.tolist() == [topo.owner_of_cell(c) for c in cells]

    @pytest.mark.parametrize("dim", (1, 2, 4, 5))
    def test_reach_covers_every_close_cell(self, dim):
        """No close cell may sit beyond the replication reach box."""
        topo = ShardTopology(
            eps=2.0, dim=dim, rho=0.1, shard_count=4, block=2
        )
        grid = topo.grid
        origin = (0,) * dim
        beyond = (topo.reach + 1,) + (0,) * (dim - 1)
        at_reach = (topo.reach,) + (0,) * (dim - 1)
        assert not grid.cells_close(origin, beyond)
        assert grid.cells_close(origin, at_reach)

    def test_close_cells_share_a_replica(self):
        """If two cells are close, each one's points reach the other's
        owner — the invariant that makes owned core status exact."""
        topo = ShardTopology(eps=2.0, dim=2, rho=0.001, shard_count=6, block=2)
        rng = random.Random(2)
        for _ in range(300):
            a = tuple(rng.randrange(-30, 30) for _ in range(2))
            b = tuple(
                ai + rng.randrange(-topo.reach, topo.reach + 1) for ai in a
            )
            if not topo.grid.cells_close(a, b):
                continue
            assert topo.owner_of_cell(a) in topo.replica_shards(b)
            assert topo.owner_of_cell(b) in topo.replica_shards(a)

    def test_owner_is_always_a_replica(self):
        topo = ShardTopology(eps=3.0, dim=3, rho=0.0, shard_count=5, block=4)
        rng = random.Random(3)
        for _ in range(100):
            cell = tuple(rng.randrange(-20, 20) for _ in range(3))
            assert topo.owner_of_cell(cell) in topo.replica_shards(cell)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


class TestConfig:
    def test_shard_knob_validation(self):
        with pytest.raises(ConfigError):
            EngineConfig(eps=1.0, minpts=3, shards=0)
        with pytest.raises(ConfigError):
            EngineConfig(eps=1.0, minpts=3, shards=True)
        with pytest.raises(ConfigError):
            EngineConfig(eps=1.0, minpts=3, shard_block=4)  # needs shards
        with pytest.raises(ConfigError):
            EngineConfig(eps=1.0, minpts=3, shard_executor="serial")
        with pytest.raises(ConfigError):
            EngineConfig(eps=1.0, minpts=3, shards=2, shard_block=0)
        with pytest.raises(ConfigError):
            EngineConfig(eps=1.0, minpts=3, shards=2, shard_executor="mpi")

    def test_unshardeable_algorithms_rejected(self):
        for algorithm in ("incdbscan", "recompute"):
            with pytest.raises(ConfigError):
                EngineConfig(eps=1.0, minpts=3, algorithm=algorithm, shards=2)

    def test_open_dispatches_on_shards(self):
        assert isinstance(api.open(eps=1.0, minpts=3, shards=2), ShardedEngine)
        assert isinstance(api.open(eps=1.0, minpts=3), api.Engine)
        # An explicit shards=None override un-shards a sharded config.
        config = EngineConfig(eps=1.0, minpts=3, shards=2)
        assert isinstance(api.open(config, shards=None), api.Engine)

    def test_fragment_surface_requires_grid(self):
        engine = api.open(eps=1.0, minpts=3, algorithm="incdbscan")
        with pytest.raises(UnsupportedOperationError):
            engine.gum_edge_fragment()
        with pytest.raises(UnsupportedOperationError):
            engine.membership_fragments([0])


# ----------------------------------------------------------------------
# Dead-pid parity (satellite: all-or-nothing across the fan-out)
# ----------------------------------------------------------------------


class TestDeadPidParity:
    def _engines(self):
        single = api.open(algorithm="full", eps=2.5, minpts=5, dim=2)
        sharded = _sharded()
        points = clustered_points(120, 2, seed=9)
        single.ingest(points)
        pids = sharded.ingest(points)
        return single, sharded, pids

    def test_delete_many_unknown_pid_message_parity(self):
        single, sharded, pids = self._engines()
        with pytest.raises(UnknownPointError) as single_exc:
            single.delete_many([pids[0], 10_000, 99_999])
        with pytest.raises(UnknownPointError) as sharded_exc:
            sharded.delete_many([pids[0], 10_000, 99_999])
        assert str(sharded_exc.value) == str(single_exc.value)

    def test_delete_many_unknown_pid_mutates_no_shard(self):
        _, sharded, pids = self._engines()
        before = _shard_fingerprint(sharded)
        epoch_before = sharded.epoch
        with pytest.raises(UnknownPointError):
            sharded.delete_many([pids[3], pids[7], 424242])
        assert _shard_fingerprint(sharded) == before
        assert sharded.epoch == epoch_before  # rejected pre-routing
        assert len(sharded) == len(pids)
        # The named live pids are still deletable afterwards.
        sharded.delete_many([pids[3], pids[7]])
        assert len(sharded) == len(pids) - 2

    def test_scalar_delete_unknown_pid_message_parity(self):
        single, sharded, _ = self._engines()
        with pytest.raises(UnknownPointError) as single_exc:
            single.delete(31337)
        with pytest.raises(UnknownPointError) as sharded_exc:
            sharded.delete(31337)
        assert str(sharded_exc.value) == str(single_exc.value)

    def test_delete_many_duplicate_pid_parity(self):
        single, sharded, pids = self._engines()
        for engine in (single, sharded):
            with pytest.raises(ValueError, match="duplicate point ids"):
                engine.delete_many([pids[1], pids[1]])
        assert len(sharded) == len(pids)

    def test_query_dead_pid_message_parity(self):
        single, sharded, pids = self._engines()
        with pytest.raises(UnknownPointError) as single_exc:
            single.cgroup_by([pids[0], 777_777])
        with pytest.raises(UnknownPointError) as sharded_exc:
            sharded.cgroup_by([pids[0], 777_777])
        assert str(sharded_exc.value) == str(single_exc.value)

    def test_insert_only_family_rejects_deletions(self):
        sharded = api.open(
            algorithm="semi", eps=2.5, minpts=5, dim=2, shards=2
        )
        pids = sharded.ingest(clustered_points(40, 2, seed=4))
        with pytest.raises(UnsupportedOperationError):
            sharded.delete_many(pids[:2])
        with pytest.raises(UnsupportedOperationError):
            sharded.delete(pids[0])


# ----------------------------------------------------------------------
# Ingest sessions over the router (satellite: barrier semantics)
# ----------------------------------------------------------------------


class TestShardedSessions:
    def test_query_barrier_flushes_atomically_across_shards(self):
        sharded = _sharded(shards=4, block=1)
        points = clustered_points(150, 2, seed=11)
        single = api.open(algorithm="full", eps=2.5, minpts=5, dim=2)
        want_pids = single.ingest(points)
        with sharded.session(flush_threshold=1000) as session:
            got_pids = [session.ingest(p) for p in points]
            assert got_pids == want_pids
            assert session.pending_updates == len(points)
            assert len(sharded) == 0  # nothing routed yet
            outcome = session.cgroup_by(got_pids)  # the barrier
            assert session.pending_updates == 0
            assert len(sharded) == len(points)
            # Every shard saw its whole slice in the one flush.
            assert sharded.epoch == len(points)
            stats = sharded.stats()
            assert all(s.epoch == s.points for s in stats.per_shard)
        want = single.cgroup_by(want_pids)
        assert outcome.result.groups == want.result.groups
        assert outcome.result.noise == want.result.noise

    def test_failed_flush_discards_only_that_run_on_every_shard(self):
        sharded = _sharded(shards=3, block=1)
        seeded = sharded.ingest(clustered_points(60, 2, seed=12))
        sharded.delete_many([seeded[5]])  # make one id stale up front
        session = sharded.session(flush_threshold=1000)
        first = session.ingest_many(clustered_points(20, 2, seed=13))
        # A delete run naming the stale id: buffered now (both ids sit
        # below the watermark), rejected by router validation at flush.
        session.delete_many([seeded[0], seeded[5]])
        tail_point = (100.0, 100.0)
        predicted_tail = session.ingest(tail_point)
        before = _shard_fingerprint(sharded)
        with pytest.raises(UnknownPointError):
            session.flush()
        # The insert run before the poisoned delete run applied...
        assert len(sharded) == 59 + 20
        assert all(pid in sharded for pid in first)
        # ...the failed delete run was dropped without touching any
        # shard (fingerprints moved only by the applied insert run)...
        assert seeded[0] in sharded
        mid = _shard_fingerprint(sharded)
        assert mid != before
        # ...and the run *after* it stayed buffered: the retry applies
        # it exactly as predicted.
        assert session.pending_updates == 1
        session.flush()
        assert predicted_tail in sharded
        assert tuple(sharded.point(predicted_tail)) == tail_point

    def test_session_exit_on_exception_discards_everywhere(self):
        sharded = _sharded(shards=3, block=1)
        with pytest.raises(RuntimeError, match="boom"):
            with sharded.session() as session:
                session.ingest_many(clustered_points(25, 2, seed=14))
                raise RuntimeError("boom")
        assert len(sharded) == 0
        assert all(
            (s.epoch, s.points) == (0, 0) for s in sharded.stats().per_shard
        )


# ----------------------------------------------------------------------
# Epoch consistency token
# ----------------------------------------------------------------------


class TestEpochToken:
    def test_out_of_band_shard_write_fails_the_merge(self):
        sharded = _sharded(shards=2, block=2)
        pids = sharded.ingest(clustered_points(50, 2, seed=15))
        # Reach around the router and write to one shard directly: the
        # next merge must refuse to combine inconsistent snapshots.
        backend = sharded.raw.executor._backends[0]
        backend.engine.insert((3.0, 3.0))
        with pytest.raises(ReproError, match="out-of-band"):
            sharded.cgroup_by(pids)

    def test_sharded_stats_counts_replicas(self):
        sharded = _sharded(shards=3, block=1)
        pids = sharded.ingest(clustered_points(80, 2, seed=16))
        stats = sharded.stats()
        assert stats.points == len(pids) == len(sharded)
        assert stats.shards == 3
        assert stats.replicas == sum(s.points for s in stats.per_shard)
        assert stats.replicas >= stats.points
        assert stats.epoch == sharded.epoch == len(pids)


# ----------------------------------------------------------------------
# Runner + CLI integration
# ----------------------------------------------------------------------


class TestRunnerIntegration:
    def test_run_workload_engine_stamps_shard_count(self):
        workload = generate_workload(
            120, 2, insert_fraction=0.8, query_frequency=30, seed=5
        )
        engine = api.open(
            algorithm="full", eps=200.0, minpts=5, dim=2,
            shards=2, batch_size=40,
        )
        result = run_workload_engine(engine, workload)
        assert result.shards == 2
        assert "insert_many" in result.op_kinds
        single = api.open(algorithm="full", eps=200.0, minpts=5, dim=2)
        assert run_workload_engine(single, workload).shards == 1

    def test_cli_bench_with_shards(self, capsys):
        from repro.__main__ import main

        code = main([
            "bench", "--n", "120", "--shards", "2", "--seed", "3",
            "--format", "json", "full-exact",
        ])
        assert code == 0
        import json

        record = json.loads(capsys.readouterr().out)
        assert record["shards"] == 2
        entry = record["algorithms"][0]
        assert entry["shards"] == 2
        assert entry["config"]["shards"] == 2

    def test_cli_bench_rejects_unshardeable(self, capsys):
        from repro.__main__ import main

        code = main(["bench", "--n", "50", "--shards", "2", "incdbscan"])
        assert code == 2
        assert "cannot shard" in capsys.readouterr().err
