"""Executor failure modes, lifecycle guarantees and the shm transport.

The process executor's contract is easy to state and easy to silently
break: a worker death surfaces as a :class:`ReproError` (never a hang or
a desynchronized pipe), any backend exception is relayed even when it
defeats pickling, ``close()`` is idempotent under double-close and after
worker death, and — the tentpole guarantee — every shared-memory segment
is unlinked on close no matter what the workers did.  These tests pin
each of those down, plus the worker-isolation property of the pinned
``spawn`` start method and the config validation of the new knobs.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

import repro.api as api
from repro.api.config import EngineConfig
from repro.errors import ConfigError, ReproError, ShardTimeoutError
from repro.shard import executors as executors_mod
from repro.shard.executors import (
    REAP_TIMEOUT,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardWorkerLost,
)
from repro.shard.transport import SegmentPool


def _config(**overrides) -> EngineConfig:
    knobs = dict(
        algorithm="full", eps=3.0, minpts=5, dim=2, shards=2,
        shard_executor="process",
    )
    knobs.update(overrides)
    return EngineConfig(**knobs)


def _points(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, 50.0, size=(n, 2))


def _shm_entries(names) -> list:
    """Which of the given segment names actually exist under /dev/shm."""
    return [name for name in names if os.path.exists(f"/dev/shm/{name}")]


@pytest.fixture(params=("pickle", "shm"))
def process_executor(request):
    config = _config(shard_transport=request.param)
    executor = ProcessShardExecutor(config, 2)
    yield executor
    executor.close()


# ----------------------------------------------------------------------
# Exception relay
# ----------------------------------------------------------------------


def test_picklable_exception_relays_and_worker_survives(process_executor):
    with pytest.raises(ReproError, match="injected fault"):
        process_executor.call(0, "fault")
    # The worker is alive and its pipe in sync: the next call round-trips.
    assert process_executor.call(0, "ping") == 0
    assert process_executor.call(1, "ping") == 1


def test_unpicklable_exception_relays_as_repro_error(process_executor):
    with pytest.raises(ReproError) as excinfo:
        process_executor.call(0, "fault", "unpicklable")
    message = str(excinfo.value)
    assert "could not be relayed" in message
    # The fallback carries the original exception's repr and traceback.
    assert "injected fault carrying an unpicklable payload" in message
    assert "original traceback" in message
    # The failed relay did not kill the worker or desync the pipe.
    assert process_executor.call(0, "ping") == 0


def test_exception_in_map_still_drains_other_shards(process_executor):
    pids = process_executor.map(
        [("ingest", (_points(40),)), ("ingest", (_points(40, seed=1),))]
    )
    assert all(len(p) == 40 for p in pids)
    with pytest.raises(ReproError, match="injected fault"):
        process_executor.map([("fault", ()), ("ping", ())])
    # Shard 1's reply was drained despite shard 0's failure; both pipes
    # still alternate request/reply cleanly.
    assert process_executor.map([("ping", ()), ("ping", ())]) == [0, 1]


# ----------------------------------------------------------------------
# Worker death
# ----------------------------------------------------------------------


def test_worker_death_surfaces_as_repro_error_not_hang(process_executor):
    process_executor._procs[0].kill()
    process_executor._procs[0].join(timeout=5)
    with pytest.raises(ReproError, match="shard worker 0"):
        # Depending on pipe-buffer timing this surfaces at send (pipe
        # closed) or at receive (died mid-call); both name the shard.
        for _ in range(3):
            process_executor.call(0, "ping")
    # The surviving shard is unaffected.
    assert process_executor.call(1, "ping") == 1


def test_close_after_worker_death_is_clean(process_executor):
    names = (
        process_executor._pool.segment_names()
        if process_executor._pool is not None
        else []
    )
    for proc in process_executor._procs:
        proc.kill()
        proc.join(timeout=5)
    process_executor.close()  # must not raise
    process_executor.close()  # and stays idempotent
    assert _shm_entries(names) == []


# ----------------------------------------------------------------------
# Segment lifecycle (the no-leak guarantee)
# ----------------------------------------------------------------------


def test_shm_segments_exist_in_flight_and_unlink_on_close():
    config = _config(shard_transport="shm")
    executor = ProcessShardExecutor(config, 2)
    try:
        executor.map(
            [("ingest", (_points(200),)), ("ingest", (_points(200, seed=1),))]
        )
        names = executor._pool.segment_names()
        assert names, "bulk calls should have leased segments"
        assert _shm_entries(names) == names
        # An exception between bulk calls must not strand anything.
        with pytest.raises(ReproError):
            executor.call(0, "fault")
        executor.call(1, "ingest", _points(300, seed=2))
        names = executor._pool.segment_names()
    finally:
        executor.close()
    assert _shm_entries(names) == []
    leftover = [
        entry
        for entry in os.listdir("/dev/shm")
        if entry.startswith(f"repro-shm-{os.getpid()}-")
    ]
    assert leftover == []


def test_segment_pool_reuses_and_grows():
    pool = SegmentPool()
    try:
        first = pool.lease(1000)
        pool.release(first)
        assert pool.lease(2000) is first  # free-listed and big enough
        bigger = pool.lease(first.size + 1)
        assert bigger is not first
        assert bigger.size >= first.size + 1
        assert len(pool) == 2
        names = pool.segment_names()
    finally:
        pool.close()
        pool.close()  # idempotent
    assert _shm_entries(names) == []


def test_shm_reply_views_are_read_only():
    config = _config(shard_transport="shm")
    executor = ProcessShardExecutor(config, 2)
    try:
        result = executor.call(0, "ingest", _points(64))
        assert isinstance(result, np.ndarray)
        assert result.dtype == np.int64
        assert not result.flags.writeable
        empty = executor.call(0, "ingest", np.empty((0, 2)))
        assert len(empty) == 0
    finally:
        executor.close()


# ----------------------------------------------------------------------
# close() contracts
# ----------------------------------------------------------------------


def test_process_executor_double_close(process_executor):
    process_executor.close()
    process_executor.close()
    # close() releases every Process handle (proc.close()) after the
    # join/terminate/kill escalation, so no zombie or dead handle is
    # retained — the slots are cleared outright.
    assert process_executor._procs == [None, None]


def test_serial_executor_close_closes_engines_and_is_idempotent():
    executor = SerialShardExecutor(_config(shard_executor="serial"), 2)
    backends = list(executor._backends)
    assert executor.transport == "inline"
    executor.map([("ping", ()), ("ping", ())])
    executor.close()
    executor.close()
    assert all(backend.engine.closed for backend in backends)


def test_serial_executor_use_after_close_raises():
    executor = SerialShardExecutor(_config(shard_executor="serial"), 2)
    executor.close()
    with pytest.raises(ReproError, match="closed"):
        executor.call(0, "ping")
    with pytest.raises(ReproError, match="closed"):
        executor.map([("ping", ()), None])


def test_process_executor_use_after_close_raises(process_executor):
    process_executor.close()
    with pytest.raises(ReproError, match="closed"):
        process_executor.call(0, "ping")
    with pytest.raises(ReproError, match="closed"):
        process_executor.map([("ping", ()), ("ping", ())])
    with pytest.raises(ReproError, match="closed"):
        process_executor.restart_worker(0)


def test_failed_construction_does_not_leak_workers_or_segments():
    # crash:ping:1 kills every worker at the construction liveness ping,
    # so __init__ itself fails — and must tear down whatever it already
    # started instead of leaking processes and the segment pool.
    config = _config(shard_transport="shm", shard_fault_plan="crash:ping:1")
    with pytest.raises(ReproError, match="shard worker"):
        ProcessShardExecutor(config, 2)
    deadline = time.monotonic() + REAP_TIMEOUT
    while time.monotonic() < deadline:
        stragglers = [
            proc
            for proc in mp.active_children()
            if proc.name.startswith("repro-shard-")
        ]
        if not stragglers:
            break
        time.sleep(0.05)
    assert stragglers == []
    leftover = [
        entry
        for entry in os.listdir("/dev/shm")
        if entry.startswith(f"repro-shm-{os.getpid()}-")
    ]
    assert leftover == []


def test_close_with_hung_worker_terminates_promptly():
    # The construction ping is ping #1, so the fault arms on the first
    # user-issued ping.  After the timeout the channel is poisoned; a
    # close() must escalate terminate -> kill instead of waiting on the
    # graceful join, and still release every handle.
    config = _config(
        shard_fault_plan="hang:ping:2:shard=0", shard_call_timeout=0.5
    )
    executor = ProcessShardExecutor(config, 2)
    with pytest.raises(ShardTimeoutError, match="shard worker 0"):
        executor.call(0, "ping")
    # The poisoned channel refuses further traffic until a restart.
    with pytest.raises(ShardWorkerLost, match="poisoned"):
        executor.call(0, "ping")
    start = time.monotonic()
    executor.close()
    assert time.monotonic() - start < REAP_TIMEOUT + 5.0
    assert executor._procs == [None, None]


def test_restart_worker_replaces_a_dead_worker(process_executor):
    process_executor._procs[0].kill()
    process_executor._procs[0].join(timeout=5)
    with pytest.raises(ReproError, match="shard worker 0"):
        for _ in range(3):
            process_executor.call(0, "ping")
    assert process_executor.restart_count(0) == 0
    process_executor.restart_worker(0)
    assert process_executor.restart_count(0) == 1
    # The fresh worker answers on a fresh, unpoisoned pipe; the
    # untouched shard never noticed.
    assert process_executor.call(0, "ping") == 0
    assert process_executor.call(1, "ping") == 1


def test_sharded_engine_close_reaches_per_shard_engines():
    engine = api.open(
        algorithm="full", eps=3.0, minpts=5, dim=2, shards=2
    )
    backends = list(engine._router.executor._backends)
    engine.ingest(_points(50))
    engine.close()
    assert all(backend.engine.closed for backend in backends)


# ----------------------------------------------------------------------
# Start method / worker isolation
# ----------------------------------------------------------------------


def test_spawn_workers_rebuild_state_fresh(monkeypatch):
    monkeypatch.setattr(executors_mod, "WORKER_SENTINEL", "mutated-in-parent")
    executor = ProcessShardExecutor(_config(), 2)
    try:
        assert executor.start_method == "spawn"
        infos = executor.map([("runtime_info", ()), ("runtime_info", ())])
        for index, info in enumerate(infos):
            assert info["index"] == index
            assert info["pid"] != os.getpid()
            # spawn re-imports the module in the worker: the parent's
            # mutation must NOT be visible — backends are rebuilt fresh.
            assert info["sentinel"] == "fresh"
    finally:
        executor.close()


@pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="platform has no fork"
)
def test_fork_start_method_knob_is_honored(monkeypatch):
    monkeypatch.setattr(executors_mod, "WORKER_SENTINEL", "mutated-in-parent")
    executor = ProcessShardExecutor(_config(shard_start_method="fork"), 2)
    try:
        assert executor.start_method == "fork"
        info = executor.call(0, "runtime_info")
        # fork inherits the parent's interpreter state — the very
        # behavior the spawn default exists to avoid.
        assert info["sentinel"] == "mutated-in-parent"
    finally:
        executor.close()


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------


def test_transport_knob_requires_sharding_and_process_executor():
    with pytest.raises(ConfigError, match="shards"):
        EngineConfig(eps=3.0, minpts=5, shard_transport="shm")
    with pytest.raises(ConfigError, match="serial executor"):
        _config(shard_executor="serial", shard_transport="shm")
    with pytest.raises(ConfigError, match="shard_transport"):
        _config(shard_transport="carrier-pigeon")


def test_start_method_knob_is_validated():
    with pytest.raises(ConfigError, match="shards"):
        EngineConfig(eps=3.0, minpts=5, shard_start_method="spawn")
    with pytest.raises(ConfigError, match="shard_start_method"):
        _config(shard_start_method="teleport")


def test_transport_resolution_chain(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_TRANSPORT", raising=False)
    assert _config().resolved_shard_transport == "shm"
    assert _config(shard_transport="pickle").resolved_shard_transport == "pickle"
    monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "pickle")
    assert _config().resolved_shard_transport == "pickle"
    # Explicit knob beats the environment.
    assert _config(shard_transport="shm").resolved_shard_transport == "shm"
    serial = _config(shard_executor="serial")
    assert serial.resolved_shard_transport == "inline"
    monkeypatch.setenv("REPRO_SHARD_TRANSPORT", "morse")
    with pytest.raises(ConfigError, match="REPRO_SHARD_TRANSPORT"):
        _config().resolved_shard_transport


def test_start_method_resolution_chain(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_START_METHOD", raising=False)
    assert _config().resolved_shard_start_method == "spawn"
    monkeypatch.setenv("REPRO_SHARD_START_METHOD", "forkserver")
    assert _config().resolved_shard_start_method == "forkserver"
    monkeypatch.setenv("REPRO_SHARD_START_METHOD", "teleport")
    with pytest.raises(ConfigError, match="REPRO_SHARD_START_METHOD"):
        _config().resolved_shard_start_method


def test_fault_tolerance_knobs_require_sharding():
    with pytest.raises(ConfigError, match="requires shards"):
        EngineConfig(eps=3.0, minpts=5, shard_call_timeout=5.0)
    with pytest.raises(ConfigError, match="requires shards"):
        EngineConfig(eps=3.0, minpts=5, shard_max_restarts=1)
    with pytest.raises(ConfigError, match="requires shards"):
        EngineConfig(eps=3.0, minpts=5, shard_fault_plan="crash:ingest:1")


def test_fault_tolerance_knob_values_are_validated():
    with pytest.raises(ConfigError, match="shard_call_timeout"):
        _config(shard_call_timeout=0)
    with pytest.raises(ConfigError, match="shard_call_timeout"):
        _config(shard_call_timeout=float("inf"))
    with pytest.raises(ConfigError, match="shard_max_restarts"):
        _config(shard_max_restarts=-1)
    with pytest.raises(ConfigError, match="shard_max_restarts"):
        _config(shard_max_restarts=1.5)
    with pytest.raises(ConfigError, match="process"):
        _config(shard_executor="serial", shard_fault_plan="crash:ingest:1")
    with pytest.raises(ConfigError, match="fault kind"):
        _config(shard_fault_plan="teleport:ingest:1")
    with pytest.raises(ConfigError, match="call index"):
        _config(shard_fault_plan="crash:ingest:0")


def test_call_timeout_resolution_chain(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_CALL_TIMEOUT", raising=False)
    assert _config().resolved_shard_call_timeout == 60.0
    assert _config(shard_call_timeout=2.5).resolved_shard_call_timeout == 2.5
    monkeypatch.setenv("REPRO_SHARD_CALL_TIMEOUT", "12")
    assert _config().resolved_shard_call_timeout == 12.0
    # Explicit knob beats the environment.
    assert _config(shard_call_timeout=2.5).resolved_shard_call_timeout == 2.5
    monkeypatch.setenv("REPRO_SHARD_CALL_TIMEOUT", "-3")
    with pytest.raises(ConfigError, match="REPRO_SHARD_CALL_TIMEOUT"):
        _config().resolved_shard_call_timeout
    monkeypatch.setenv("REPRO_SHARD_CALL_TIMEOUT", "soon")
    with pytest.raises(ConfigError, match="REPRO_SHARD_CALL_TIMEOUT"):
        _config().resolved_shard_call_timeout


def test_max_restarts_resolution_chain(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_MAX_RESTARTS", raising=False)
    assert _config().resolved_shard_max_restarts == 3
    assert _config(shard_max_restarts=0).resolved_shard_max_restarts == 0
    monkeypatch.setenv("REPRO_SHARD_MAX_RESTARTS", "7")
    assert _config().resolved_shard_max_restarts == 7
    assert _config(shard_max_restarts=1).resolved_shard_max_restarts == 1
    monkeypatch.setenv("REPRO_SHARD_MAX_RESTARTS", "many")
    with pytest.raises(ConfigError, match="REPRO_SHARD_MAX_RESTARTS"):
        _config().resolved_shard_max_restarts


def test_fault_plan_resolution_chain(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    assert _config().resolved_shard_fault_plan is None
    plan = "crash:ingest:1"
    assert _config(shard_fault_plan=plan).resolved_shard_fault_plan == plan
    monkeypatch.setenv("REPRO_FAULT_PLAN", "hang:ping:1")
    assert _config().resolved_shard_fault_plan == "hang:ping:1"
    assert _config(shard_fault_plan=plan).resolved_shard_fault_plan == plan
    # The serial executor has no worker processes to inject into.
    serial = _config(shard_executor="serial")
    assert serial.resolved_shard_fault_plan is None
    monkeypatch.setenv("REPRO_FAULT_PLAN", "bogus")
    with pytest.raises(ConfigError, match="REPRO_FAULT_PLAN"):
        _config().resolved_shard_fault_plan
