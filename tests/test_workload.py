"""Tests for the seed spreader, workload generator, runner, and metrics."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.static_dbscan import dbscan_grid
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.workload.metrics import avgcost_series, checkpoints, maxupdcost_series
from repro.workload.runner import run_workload
from repro.workload.seed_spreader import seed_spreader
from repro.workload.workload import generate_workload


class TestSeedSpreader:
    def test_count_and_dimension(self):
        pts = seed_spreader(500, 3, seed=1)
        assert len(pts) == 500
        assert all(len(p) == 3 for p in pts)

    def test_points_inside_space(self):
        pts = seed_spreader(1000, 2, seed=2)
        for p in pts:
            assert all(0.0 <= x <= 1e5 for x in p)

    def test_deterministic_with_seed(self):
        assert seed_spreader(200, 2, seed=3) == seed_spreader(200, 2, seed=3)

    def test_different_seeds_differ(self):
        assert seed_spreader(200, 2, seed=3) != seed_spreader(200, 2, seed=4)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            seed_spreader(0, 2)
        with pytest.raises(ValueError):
            seed_spreader(10, 0)

    def test_produces_multiple_dense_clusters(self):
        """The generator should yield several DBSCAN clusters at the
        paper's parameterization (eps = 100d, MinPts = 10)."""
        pts = seed_spreader(3000, 2, seed=5)
        ref = dbscan_grid(pts, 200.0, 10)
        assert len(ref.clusters) >= 3
        # Noise fraction is tiny by construction.
        assert len(ref.noise) <= len(pts) * 0.05

    def test_cluster_points_are_dense(self):
        """Non-noise points huddle within the spreader radius scale."""
        pts = seed_spreader(500, 2, seed=6, noise_fraction=0.0)
        # Every point has a neighbor within 2 * radius = 50.
        from repro.geometry.points import sq_dist

        lonely = 0
        for i, p in enumerate(pts):
            if not any(
                i != j and sq_dist(p, q) <= 2500.0 for j, q in enumerate(pts)
            ):
                lonely += 1
        assert lonely <= 5


class TestWorkloadGeneration:
    def test_semi_dynamic_all_inserts(self):
        w = generate_workload(300, 2, insert_fraction=1.0, seed=1)
        assert w.insert_count == 300
        assert w.delete_count == 0
        assert w.update_count == 300

    def test_insert_fraction_respected(self):
        w = generate_workload(600, 2, insert_fraction=5 / 6, seed=2)
        assert w.insert_count == 500
        assert w.delete_count == 100

    def test_deletions_always_after_insertions(self):
        w = generate_workload(400, 2, insert_fraction=2 / 3, seed=3)
        inserted = set()
        for kind, arg in w.ops:
            if kind == "insert":
                inserted.add(arg)
            elif kind == "delete":
                assert arg in inserted
                inserted.discard(arg)

    def test_no_duplicate_inserts_or_deletes(self):
        w = generate_workload(500, 2, insert_fraction=0.8, seed=4)
        ins = [a for k, a in w.ops if k == "insert"]
        dels = [a for k, a in w.ops if k == "delete"]
        assert len(ins) == len(set(ins))
        assert len(dels) == len(set(dels))

    def test_queries_reference_alive_points(self):
        w = generate_workload(400, 2, insert_fraction=0.75, query_frequency=20, seed=5)
        assert w.query_count > 0
        alive = set()
        for kind, arg in w.ops:
            if kind == "insert":
                alive.add(arg)
            elif kind == "delete":
                alive.discard(arg)
            else:
                assert 2 <= len(arg) <= 100
                assert set(arg) <= alive
                assert len(set(arg)) == len(arg)

    def test_query_frequency_spacing(self):
        w = generate_workload(300, 2, insert_fraction=1.0, query_frequency=50, seed=6)
        assert w.query_count == 300 // 50

    def test_custom_points(self):
        pts = [(float(i), 0.0) for i in range(100)]
        w = generate_workload(100, 2, points=pts, seed=7)
        assert sorted(w.points) == sorted(pts)

    def test_custom_points_too_few_raises(self):
        with pytest.raises(ValueError):
            generate_workload(100, 2, points=[(0.0, 0.0)], seed=8)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_workload(0, 2)
        with pytest.raises(ValueError):
            generate_workload(10, 2, insert_fraction=0.0)

    def test_deterministic(self):
        a = generate_workload(200, 2, insert_fraction=0.8, query_frequency=25, seed=9)
        b = generate_workload(200, 2, insert_fraction=0.8, query_frequency=25, seed=9)
        assert a.ops == b.ops and a.points == b.points


class TestRunner:
    def test_run_records_all_ops(self):
        w = generate_workload(150, 2, insert_fraction=0.8, query_frequency=25, seed=10)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.001, dim=2)
        result = run_workload(algo, w)
        assert len(result.op_costs) == len(w.ops)
        assert result.total_cost > 0
        assert result.average_cost > 0
        assert result.max_update_cost >= max(result.update_costs())

    def test_max_ops_prefix(self):
        w = generate_workload(150, 2, insert_fraction=1.0, seed=11)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.001, dim=2)
        result = run_workload(algo, w, max_ops=40)
        assert len(result.op_costs) == 40

    def test_final_state_consistent(self):
        w = generate_workload(200, 2, insert_fraction=0.75, seed=12)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.0, dim=2)
        run_workload(algo, w)
        assert len(algo) == w.insert_count - w.delete_count

    def test_query_costs_separated(self):
        w = generate_workload(100, 2, insert_fraction=1.0, query_frequency=10, seed=13)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.001, dim=2)
        result = run_workload(algo, w)
        assert len(result.query_costs()) == w.query_count
        assert len(result.update_costs()) == w.update_count


class TestMetrics:
    def test_checkpoints_basic(self):
        assert checkpoints(100, 4) == [25, 50, 75, 100]
        assert checkpoints(0) == []
        assert checkpoints(3, 10) == [1, 2, 3]

    def test_avgcost_series(self):
        costs = [2.0, 4.0, 6.0, 8.0]
        series = avgcost_series(costs, [2, 4])
        assert series == [(2, 3.0), (4, 5.0)]

    def test_avgcost_empty(self):
        assert avgcost_series([], [1]) == []

    def test_maxupdcost_excludes_queries(self):
        kinds = ["insert", "query", "insert", "delete"]
        costs = [1.0, 100.0, 3.0, 2.0]
        series = maxupdcost_series(kinds, costs, [2, 4])
        assert series == [(2, 1.0), (4, 3.0)]

    def test_maxupdcost_monotone(self):
        rng = random.Random(0)
        kinds = ["insert"] * 50
        costs = [rng.random() for _ in range(50)]
        series = maxupdcost_series(kinds, costs, list(range(1, 51)))
        values = [v for _, v in series]
        assert values == sorted(values)


@settings(max_examples=20, deadline=None)
@given(st.integers(10, 120), st.sampled_from([2 / 3, 4 / 5, 5 / 6, 1.0]), st.integers(0, 5))
def test_hypothesis_workload_prefix_invariant(n, frac, seed):
    w = generate_workload(n, 2, insert_fraction=frac, seed=seed)
    balance = 0
    for kind, _ in w.ops:
        if kind == "insert":
            balance += 1
        elif kind == "delete":
            balance -= 1
        assert balance >= 0
    assert balance == w.insert_count - w.delete_count
