"""Tests for the seed spreader, workload generator, runner, and metrics."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.static_dbscan import dbscan_grid
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.workload.metrics import avgcost_series, checkpoints, maxupdcost_series
from repro.workload.runner import run_workload
from repro.workload.seed_spreader import seed_spreader
from repro.workload.workload import generate_workload


class TestSeedSpreader:
    def test_count_and_dimension(self):
        pts = seed_spreader(500, 3, seed=1)
        assert len(pts) == 500
        assert all(len(p) == 3 for p in pts)

    def test_points_inside_space(self):
        pts = seed_spreader(1000, 2, seed=2)
        for p in pts:
            assert all(0.0 <= x <= 1e5 for x in p)

    def test_deterministic_with_seed(self):
        assert seed_spreader(200, 2, seed=3) == seed_spreader(200, 2, seed=3)

    def test_different_seeds_differ(self):
        assert seed_spreader(200, 2, seed=3) != seed_spreader(200, 2, seed=4)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            seed_spreader(0, 2)
        with pytest.raises(ValueError):
            seed_spreader(10, 0)

    def test_produces_multiple_dense_clusters(self):
        """The generator should yield several DBSCAN clusters at the
        paper's parameterization (eps = 100d, MinPts = 10)."""
        pts = seed_spreader(3000, 2, seed=5)
        ref = dbscan_grid(pts, 200.0, 10)
        assert len(ref.clusters) >= 3
        # Noise fraction is tiny by construction.
        assert len(ref.noise) <= len(pts) * 0.05

    def test_cluster_points_are_dense(self):
        """Non-noise points huddle within the spreader radius scale."""
        pts = seed_spreader(500, 2, seed=6, noise_fraction=0.0)
        # Every point has a neighbor within 2 * radius = 50.
        from repro.geometry.points import sq_dist

        lonely = 0
        for i, p in enumerate(pts):
            if not any(
                i != j and sq_dist(p, q) <= 2500.0 for j, q in enumerate(pts)
            ):
                lonely += 1
        assert lonely <= 5


class TestWorkloadGeneration:
    def test_semi_dynamic_all_inserts(self):
        w = generate_workload(300, 2, insert_fraction=1.0, seed=1)
        assert w.insert_count == 300
        assert w.delete_count == 0
        assert w.update_count == 300

    def test_insert_fraction_respected(self):
        w = generate_workload(600, 2, insert_fraction=5 / 6, seed=2)
        assert w.insert_count == 500
        assert w.delete_count == 100

    def test_deletions_always_after_insertions(self):
        w = generate_workload(400, 2, insert_fraction=2 / 3, seed=3)
        inserted = set()
        for kind, arg in w.ops:
            if kind == "insert":
                inserted.add(arg)
            elif kind == "delete":
                assert arg in inserted
                inserted.discard(arg)

    def test_no_duplicate_inserts_or_deletes(self):
        w = generate_workload(500, 2, insert_fraction=0.8, seed=4)
        ins = [a for k, a in w.ops if k == "insert"]
        dels = [a for k, a in w.ops if k == "delete"]
        assert len(ins) == len(set(ins))
        assert len(dels) == len(set(dels))

    def test_queries_reference_alive_points(self):
        w = generate_workload(400, 2, insert_fraction=0.75, query_frequency=20, seed=5)
        assert w.query_count > 0
        alive = set()
        for kind, arg in w.ops:
            if kind == "insert":
                alive.add(arg)
            elif kind == "delete":
                alive.discard(arg)
            else:
                assert 2 <= len(arg) <= 100
                assert set(arg) <= alive
                assert len(set(arg)) == len(arg)

    def test_query_frequency_spacing(self):
        w = generate_workload(300, 2, insert_fraction=1.0, query_frequency=50, seed=6)
        assert w.query_count == 300 // 50

    def test_custom_points(self):
        pts = [(float(i), 0.0) for i in range(100)]
        w = generate_workload(100, 2, points=pts, seed=7)
        assert sorted(w.points) == sorted(pts)

    def test_custom_points_too_few_raises(self):
        with pytest.raises(ValueError):
            generate_workload(100, 2, points=[(0.0, 0.0)], seed=8)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_workload(0, 2)
        with pytest.raises(ValueError):
            generate_workload(10, 2, insert_fraction=0.0)

    def test_deterministic(self):
        a = generate_workload(200, 2, insert_fraction=0.8, query_frequency=25, seed=9)
        b = generate_workload(200, 2, insert_fraction=0.8, query_frequency=25, seed=9)
        assert a.ops == b.ops and a.points == b.points


class TestRunner:
    def test_run_records_all_ops(self):
        w = generate_workload(150, 2, insert_fraction=0.8, query_frequency=25, seed=10)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.001, dim=2)
        result = run_workload(algo, w)
        assert len(result.op_costs) == len(w.ops)
        assert result.total_cost > 0
        assert result.average_cost > 0
        assert result.max_update_cost >= max(result.update_costs())

    def test_max_ops_prefix(self):
        w = generate_workload(150, 2, insert_fraction=1.0, seed=11)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.001, dim=2)
        result = run_workload(algo, w, max_ops=40)
        assert len(result.op_costs) == 40

    def test_final_state_consistent(self):
        w = generate_workload(200, 2, insert_fraction=0.75, seed=12)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.0, dim=2)
        run_workload(algo, w)
        assert len(algo) == w.insert_count - w.delete_count

    def test_query_costs_separated(self):
        w = generate_workload(100, 2, insert_fraction=1.0, query_frequency=10, seed=13)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.001, dim=2)
        result = run_workload(algo, w)
        assert len(result.query_costs()) == w.query_count
        assert len(result.update_costs()) == w.update_count


class TestMetrics:
    def test_checkpoints_basic(self):
        assert checkpoints(100, 4) == [25, 50, 75, 100]
        assert checkpoints(0) == []
        assert checkpoints(3, 10) == [1, 2, 3]

    def test_avgcost_series(self):
        costs = [2.0, 4.0, 6.0, 8.0]
        series = avgcost_series(costs, [2, 4])
        assert series == [(2, 3.0), (4, 5.0)]

    def test_avgcost_empty(self):
        assert avgcost_series([], [1]) == []

    def test_maxupdcost_excludes_queries(self):
        kinds = ["insert", "query", "insert", "delete"]
        costs = [1.0, 100.0, 3.0, 2.0]
        series = maxupdcost_series(kinds, costs, [2, 4])
        assert series == [(2, 1.0), (4, 3.0)]

    def test_maxupdcost_monotone(self):
        rng = random.Random(0)
        kinds = ["insert"] * 50
        costs = [rng.random() for _ in range(50)]
        series = maxupdcost_series(kinds, costs, list(range(1, 51)))
        values = [v for _, v in series]
        assert values == sorted(values)


@settings(max_examples=20, deadline=None)
@given(st.integers(10, 120), st.sampled_from([2 / 3, 4 / 5, 5 / 6, 1.0]), st.integers(0, 5))
def test_hypothesis_workload_prefix_invariant(n, frac, seed):
    w = generate_workload(n, 2, insert_fraction=frac, seed=seed)
    balance = 0
    for kind, _ in w.ops:
        if kind == "insert":
            balance += 1
        elif kind == "delete":
            balance -= 1
        assert balance >= 0
    assert balance == w.insert_count - w.delete_count


class TestPercentiles:
    def _result(self, kinds, costs):
        from repro.workload.runner import RunResult

        return RunResult(op_kinds=list(kinds), op_costs=list(costs))

    def test_median_and_extremes(self):
        r = self._result(["insert"] * 5, [5.0, 1.0, 3.0, 2.0, 4.0])
        assert r.percentile(0) == 1.0
        assert r.percentile(50) == 3.0
        assert r.percentile(100) == 5.0

    def test_linear_interpolation(self):
        r = self._result(["insert"] * 4, [10.0, 20.0, 30.0, 40.0])
        assert r.percentile(50) == pytest.approx(25.0)
        assert r.percentile(99) == pytest.approx(39.7)

    def test_queries_excluded(self):
        r = self._result(
            ["insert", "query", "insert"], [1.0, 1000.0, 3.0]
        )
        assert r.percentile(100) == 3.0
        assert r.percentile(50) == 2.0

    def test_empty_and_validation(self):
        r = self._result([], [])
        assert r.percentile(50) == 0.0
        with pytest.raises(ValueError):
            self._result(["insert"], [1.0]).percentile(101)
        with pytest.raises(ValueError):
            self._result(["insert"], [1.0]).percentile(-1)

    def test_query_percentile_mirrors_update_percentile(self):
        r = self._result(
            ["insert", "query", "query", "query", "insert"],
            [1000.0, 10.0, 30.0, 20.0, 2000.0],
        )
        assert r.query_percentile(0) == 10.0
        assert r.query_percentile(50) == 20.0
        assert r.query_percentile(100) == 30.0
        assert self._result(["insert"], [1.0]).query_percentile(99) == 0.0
        with pytest.raises(ValueError):
            r.query_percentile(101)


class TestBatchedEncoding:
    def test_runs_coalesced_and_chunked(self):
        from repro.workload.workload import batch_ops

        ops = [
            ("insert", 0),
            ("insert", 1),
            ("insert", 2),
            ("delete", 0),
            ("insert", 3),
        ]
        assert batch_ops(ops, 2) == [
            ("insert_many", [0, 1]),
            ("insert_many", [2]),
            ("delete_many", [0]),
            ("insert_many", [3]),
        ]

    def test_queries_are_barriers(self):
        from repro.workload.workload import batch_ops

        ops = [
            ("insert", 0),
            ("insert", 1),
            ("query", [0, 1]),
            ("insert", 2),
        ]
        assert batch_ops(ops, 10) == [
            ("insert_many", [0, 1]),
            ("query", [0, 1]),
            ("insert_many", [2]),
        ]

    def test_batch_size_validation(self):
        from repro.workload.workload import batch_ops

        with pytest.raises(ValueError):
            batch_ops([("insert", 0)], 0)

    def test_workload_batched_method(self):
        w = generate_workload(100, 2, insert_fraction=0.8, query_frequency=10, seed=3)
        batched = w.batched(16)
        singles = sum(
            len(arg) for kind, arg in batched if kind.endswith("_many")
        )
        assert singles == w.update_count
        assert sum(1 for kind, _ in batched if kind == "query") == w.query_count
        assert all(
            len(arg) <= 16 for kind, arg in batched if kind.endswith("_many")
        )


class TestBatchedRunner:
    def test_records_batches_with_sizes(self):
        from repro.workload.runner import run_workload_batched

        w = generate_workload(120, 2, insert_fraction=0.75, query_frequency=20, seed=14)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.001, dim=2)
        result = run_workload_batched(algo, w, batch_size=16)
        assert len(result.op_kinds) == len(result.op_costs) == len(result.op_sizes)
        updates = [
            s for k, s in zip(result.op_kinds, result.op_sizes) if k != "query"
        ]
        assert sum(updates) == w.update_count
        assert set(result.op_kinds) <= {"insert_many", "delete_many", "query"}
        assert len(algo) == w.insert_count - w.delete_count

    def test_batched_equals_sequential_final_state(self):
        from repro.workload.runner import run_workload, run_workload_batched

        w = generate_workload(150, 2, insert_fraction=0.8, query_frequency=25, seed=15)
        seq = FullyDynamicClusterer(200.0, 5, rho=0.0, dim=2)
        bat = FullyDynamicClusterer(200.0, 5, rho=0.0, dim=2)
        run_workload(seq, w)
        run_workload_batched(bat, w, batch_size=10)
        canonical = lambda c: (
            frozenset(frozenset(s) for s in c.clusters().clusters),
            frozenset(c.clusters().noise),
        )
        assert canonical(seq) == canonical(bat)

    def test_max_ops_prefix(self):
        from repro.workload.runner import run_workload_batched

        w = generate_workload(100, 2, insert_fraction=1.0, seed=16)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.001, dim=2)
        result = run_workload_batched(algo, w, batch_size=8, max_ops=40)
        assert sum(result.op_sizes) == 40
        assert len(algo) == 40


class TestUnsupportedDeleteDiagnosis:
    """Regression: a delete op reaching the insert-only semi-dynamic
    clusterer must surface a clear UnsupportedOperationError instead of
    a bare NotImplementedError escaping mid-run."""

    def test_sequential_runner_raises_clear_error(self):
        from repro.core.semidynamic import SemiDynamicClusterer
        from repro.errors import UnsupportedOperationError
        from repro.workload.runner import run_workload

        w = generate_workload(60, 2, insert_fraction=0.7, seed=17)
        algo = SemiDynamicClusterer(200.0, 5, dim=2)
        with pytest.raises(UnsupportedOperationError, match="insert-only"):
            run_workload(algo, w)

    def test_batched_runner_raises_clear_error(self):
        from repro.core.semidynamic import SemiDynamicClusterer
        from repro.errors import UnsupportedOperationError
        from repro.workload.runner import run_workload_batched

        w = generate_workload(60, 2, insert_fraction=0.7, seed=18)
        algo = SemiDynamicClusterer(200.0, 5, dim=2)
        with pytest.raises(UnsupportedOperationError, match="SemiDynamicClusterer"):
            run_workload_batched(algo, w, batch_size=8)

    def test_error_names_the_offending_op(self):
        from repro.core.semidynamic import SemiDynamicClusterer
        from repro.errors import UnsupportedOperationError
        from repro.workload.runner import run_workload

        w = generate_workload(60, 2, insert_fraction=0.7, seed=19)
        algo = SemiDynamicClusterer(200.0, 5, dim=2)
        with pytest.raises(UnsupportedOperationError, match=r"op #\d+"):
            run_workload(algo, w)


class TestAmortizedBatchMetrics:
    def test_per_update_costs_amortize_batches(self):
        from repro.workload.runner import RunResult

        r = RunResult(
            op_kinds=["insert_many", "query", "delete_many"],
            op_costs=[100.0, 50.0, 30.0],
            op_sizes=[10, 1, 3],
        )
        assert r.per_update_costs() == [10.0, 10.0]
        assert r.operation_count == 14
        assert r.average_cost_per_operation == pytest.approx(180.0 / 14)
        assert r.per_update_percentile(100) == 10.0

    def test_sequential_results_unchanged_by_amortization(self):
        from repro.workload.runner import run_workload

        w = generate_workload(80, 2, insert_fraction=1.0, query_frequency=20, seed=30)
        algo = FullyDynamicClusterer(200.0, 5, rho=0.001, dim=2)
        r = run_workload(algo, w)
        assert r.per_update_costs() == r.update_costs()
        assert r.average_cost_per_operation == pytest.approx(r.average_cost)
        assert r.per_update_percentile(50) == pytest.approx(r.percentile(50))
