"""The distributed TCP executor: wire framing, chaos, bounded journals.

Three layers of proof for :mod:`repro.shard.rpc`:

* **Framing units** — the length-prefixed control/payload split round-
  trips arbitrary dtypes and shapes over a real socket pair, arrays are
  never pickled, and received views are read-only buffers that outlive
  the next call (unlike shm views).
* **Chaos over real sockets** — an injected crash aborts only the
  serving session and the supervisor reconnects + replays to a
  bit-identical deployment; a genuinely killed worker process is
  respawned *on the same port* and recovered the same way; a hung
  worker surfaces as :class:`ShardTimeoutError` and recovers; a call
  routed under a stale ownership-table version is rejected with
  :class:`StaleOwnershipError` end-to-end through the socket.
* **The journal bound** — under a long update stream the supervisor's
  per-shard journal never reaches ``shard_journal_snapshot_every``:
  truncation snapshots drain it, and snapshot-plus-suffix recovery is
  exercised against the differential oracle.

Worker processes are real ``python -m repro shard-worker`` subprocesses
(via :func:`repro.shard.rpc.local_workers`), so these tests cover the
CLI entry point too.
"""

from __future__ import annotations

import os
import socket

import numpy as np
import pytest

import repro.api as api
from repro.api.config import EngineConfig
from repro.errors import (
    ConfigError,
    ReproError,
    ShardTimeoutError,
    StaleOwnershipError,
)
from repro.shard.executors import SerialShardExecutor, ShardWorkerLost
from repro.shard.rpc import (
    TcpShardExecutor,
    local_workers,
    read_message,
    spawn_worker_process,
    terminate_worker_process,
    write_message,
)
from repro.shard.supervisor import ShardSupervisor

BASE = dict(algorithm="full", eps=3.0, minpts=5, dim=2)


def _points(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).uniform(0.0, 50.0, size=(n, 2))


def _open_tcp(addresses, **knobs):
    opts = dict(
        BASE, shards=len(addresses), shard_executor="tcp",
        shard_workers=list(addresses),
    )
    opts.update(knobs)
    return api.open(**opts)


def _snap_canon(snapshot):
    return [sorted(map(sorted, snapshot.clusters)), sorted(snapshot.noise)]


# ----------------------------------------------------------------------
# Wire framing (no worker processes)
# ----------------------------------------------------------------------


def test_wire_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        arrays = [
            np.arange(12, dtype=np.float64).reshape(3, 4),
            np.array([], dtype=np.int64),
            np.arange(5, dtype=np.int32),
        ]
        header = ("call", "ingest", ("control", {"k": 1}))
        write_message(left, header, arrays)
        got_header, views = read_message(right)
        assert got_header == header
        assert len(views) == len(arrays)
        for view, arr in zip(views, arrays):
            assert view.dtype == arr.dtype
            assert view.shape == arr.shape
            assert np.array_equal(view, arr)
            assert not view.flags.writeable
        # The views own their buffers: still valid after more traffic.
        write_message(left, ("ok", None), [])
        read_message(right)
        assert np.array_equal(views[0], arrays[0])
    finally:
        left.close()
        right.close()


def test_wire_eof_mid_message_raises_eoferror():
    left, right = socket.socketpair()
    try:
        import struct

        left.sendall(struct.pack(">Q", 100) + b"partial")
        left.close()
        with pytest.raises(EOFError):
            read_message(right)
    finally:
        right.close()


def test_connect_failure_names_the_entry_point(monkeypatch):
    """An unreachable worker fails within the startup deadline with a
    message telling the operator what to launch."""
    monkeypatch.setattr("repro.shard.rpc.STARTUP_TIMEOUT_FLOOR", 0.3)
    # Bind-and-close to get a localhost port that refuses connections.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    config = EngineConfig(
        **BASE, shards=1, shard_executor="tcp",
        shard_workers=[f"127.0.0.1:{port}"],
    )
    with pytest.raises(ShardWorkerLost, match="shard-worker"):
        TcpShardExecutor(config, 1)


def test_worker_address_validation():
    for bad in ("no-port", ":7171", "host:", "host:0", "host:70000", "h:x"):
        with pytest.raises(ConfigError):
            EngineConfig(
                **BASE, shards=1, shard_executor="tcp", shard_workers=[bad]
            )
    with pytest.raises(ConfigError, match="one worker address per shard"):
        EngineConfig(
            **BASE, shards=2, shard_executor="tcp",
            shard_workers=["a:1", "b:2", "c:3"],
        )
    with pytest.raises(ConfigError, match="requires shards"):
        EngineConfig(**BASE, shard_workers=["a:1"])  # no shards at all
    with pytest.raises(ConfigError, match="tcp"):
        EngineConfig(**BASE, shards=1, shard_workers=["a:1"])  # serial


def test_stale_version_rejected_by_backend():
    """Version discipline is executor-independent: a serial deployment
    rejects a call stamped with a non-current table version."""
    engine = api.open(**BASE, shards=2)
    try:
        engine.ingest(_points(40))
        executor = engine.raw.executor
        with pytest.raises(StaleOwnershipError, match="version"):
            executor.call(
                0, "merge_state", None, engine.raw.ownership_version + 1
            )
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Chaos over real sockets
# ----------------------------------------------------------------------


def test_injected_crash_aborts_session_and_recovers_bit_identically():
    """The tcp twin of the process-executor flagship differential: both
    workers' sessions are crash-aborted mid-run, the supervisor
    reconnects to the surviving listeners and replays, and nothing
    distinguishes the recovered deployment from an engine that never
    failed."""
    pts = _points(120, seed=42)
    single = api.open(**BASE)
    with local_workers(2) as addresses:
        sharded = _open_tcp(addresses, shard_fault_plan="crash:ingest:2")
        try:
            s_ids = single.ingest(pts[:60])
            g_ids = sharded.ingest(pts[:60])
            single.delete_many(s_ids[:10])
            sharded.delete_many(g_ids[:10])
            s_ids2 = single.ingest(pts[60:])
            g_ids2 = sharded.ingest(pts[60:])
            assert sharded.restarts >= 1
            live_s = s_ids[10:] + s_ids2
            live_g = g_ids[10:] + g_ids2
            assert (
                single.cgroup_by(live_s).result
                == sharded.cgroup_by(live_g).result
            )
            assert _snap_canon(single.snapshot().clustering) == _snap_canon(
                sharded.snapshot().clustering
            )
        finally:
            sharded.close()
            single.close()


def test_killed_worker_respawned_on_same_port_is_replayed():
    """A genuinely dead worker process (SIGKILL, not an injected
    fault): respawning it on the same address and issuing the next call
    reconnects, restores the snapshot, replays the journal suffix, and
    stays bit-identical."""
    pts = _points(100, seed=5)
    single = api.open(**BASE)
    proc0, addr0 = spawn_worker_process()
    proc1, addr1 = spawn_worker_process()
    port0 = int(addr0.rsplit(":", 1)[1])
    sharded = None
    try:
        sharded = _open_tcp(
            [addr0, addr1], shard_journal_snapshot_every=2
        )
        s_ids = single.ingest(pts[:50])
        g_ids = sharded.ingest(pts[:50])
        single.delete_many(s_ids[::5])
        sharded.delete_many(g_ids[::5])
        single.ingest(pts[50:80])
        sharded.ingest(pts[50:80])  # 3 mutations: snapshot + suffix exist
        supervisor = sharded.raw.executor
        assert supervisor.has_snapshot(0)
        proc0.kill()
        proc0.wait()
        # The platform brings the worker back on the same address...
        proc0 = spawn_worker_process(port=port0)[0]
        # ...and the next touch of shard 0 recovers through it.
        single.ingest(pts[80:])
        sharded.ingest(pts[80:])
        assert sharded.restarts >= 1
        assert _snap_canon(single.snapshot().clustering) == _snap_canon(
            sharded.snapshot().clustering
        )
        assert len(single) == len(sharded)
    finally:
        if sharded is not None:
            sharded.close()
        single.close()
        terminate_worker_process(proc0)
        terminate_worker_process(proc1)


def test_hung_tcp_worker_times_out_and_recovers():
    """A hang on the remote side surfaces as ShardTimeoutError within
    the deadline; once the worker comes back (the finite hang models an
    external supervisor clearing it), reconnection replays exactly."""
    pts = _points(90, seed=9)
    single = api.open(**BASE)
    with local_workers(2) as addresses:
        sharded = _open_tcp(
            addresses,
            shard_fault_plan="hang:ingest:1:shard=0:seconds=2.5",
            shard_call_timeout=0.75,
        )
        try:
            s_ids = single.ingest(pts)
            g_ids = sharded.ingest(pts)
            assert sharded.restarts >= 1
            assert (
                single.cgroup_by(s_ids).result
                == sharded.cgroup_by(g_ids).result
            )
        finally:
            sharded.close()
            single.close()


def test_stale_version_rejected_over_the_wire():
    """StaleOwnershipError relays through the socket as a backend
    error: no recovery, no poisoning, the session keeps serving."""
    with local_workers(1) as addresses:
        sharded = _open_tcp(addresses)
        try:
            sharded.ingest(_points(30))
            executor = sharded.raw.executor
            with pytest.raises(StaleOwnershipError, match="version"):
                executor.call(
                    0, "merge_state", None, sharded.ownership_version + 1
                )
            # The session survived the rejection.
            assert executor.call(0, "ping") == 0
            assert sharded.restarts == 0
        finally:
            sharded.close()


def test_rebalance_over_tcp_is_bit_identical():
    """One online rebalance mid-workload over real sockets: transfer,
    broadcast, flip — and the clustering cannot tell."""
    pts = _points(140, seed=11)
    single = api.open(**BASE)
    with local_workers(2) as addresses:
        sharded = _open_tcp(addresses)
        try:
            s_ids = single.ingest(pts[:70])
            g_ids = sharded.ingest(pts[:70])
            router = sharded.raw
            block = router.topology.block_of(
                router._grid.cell_of(tuple(pts[0]))
            )
            owner = router.topology.owner_of_block(block)
            version = sharded.rebalance(block, (owner + 1) % 2)
            assert version == sharded.ownership_version == 1
            assert router.topology.owner_of_block(block) == (owner + 1) % 2
            single.delete_many(s_ids[:20])
            sharded.delete_many(g_ids[:20])
            single.ingest(pts[70:])
            sharded.ingest(pts[70:])
            assert _snap_canon(single.snapshot().clustering) == _snap_canon(
                sharded.snapshot().clustering
            )
        finally:
            sharded.close()
            single.close()


# ----------------------------------------------------------------------
# The journal bound
# ----------------------------------------------------------------------


def test_supervisor_journal_truncation_unit():
    """Deterministic, in-process: the journal never reaches the knob,
    snapshots capture the drained prefix, and recovery from
    snapshot-plus-suffix rebuilds the exact backend state."""
    config = EngineConfig(
        **BASE, shards=2, shard_journal_snapshot_every=3
    )
    supervisor = ShardSupervisor(SerialShardExecutor(config, 2), config)
    try:
        rng = np.random.default_rng(3)
        version = 0
        for i in range(8):
            batch = rng.uniform(0.0, 50.0, size=(6, 2))
            supervisor.call(0, "ingest", batch, version)
            # The bound is <= : hitting the threshold schedules the
            # snapshot for the next dispatch rather than taking it
            # while this call's reply views are still live.
            assert supervisor.journal_size(0) <= 3
        assert supervisor.has_snapshot(0)
        assert supervisor.snapshot_epoch(0) is not None
        before = supervisor.call(0, "export_state")
        before = {
            k: (np.array(v, copy=True) if isinstance(v, np.ndarray) else v)
            for k, v in before.items()
        }
        # Simulate a death: fresh backend, then recover through the
        # snapshot + suffix path.
        supervisor._recover(0, ReproError("injected death"))
        after = supervisor.call(0, "export_state")
        assert np.array_equal(before["points"], after["points"])
        assert np.array_equal(before["local_ids"], after["local_ids"])
        assert before["next_local"] == after["next_local"]
        assert before["epoch"] == after["epoch"]
        assert before["version"] == after["version"]
    finally:
        supervisor.close()


def test_journal_stays_bounded_under_update_stream():
    """The leak fix, end to end over tcp: a long mixed update stream
    (REPRO_JOURNAL_OPS points, default 600; CI runs 10000) keeps every
    shard's journal strictly under the knob, and the final clustering
    matches the single-engine oracle."""
    total = int(os.environ.get("REPRO_JOURNAL_OPS", "600"))
    every = 16
    rng = np.random.default_rng(17)
    single = api.open(**BASE)
    with local_workers(1) as addresses:
        sharded = _open_tcp(
            addresses, shard_journal_snapshot_every=every
        )
        try:
            supervisor = sharded.raw.executor
            live_s: list = []
            live_g: list = []
            streamed = 0
            while streamed < total:
                n = min(25, total - streamed)
                batch = rng.uniform(0.0, 50.0, size=(n, 2))
                live_s.extend(single.ingest(batch))
                live_g.extend(sharded.ingest(batch))
                streamed += n
                if len(live_s) > 150:
                    single.delete_many(live_s[:40])
                    sharded.delete_many(live_g[:40])
                    del live_s[:40], live_g[:40]
                assert supervisor.journal_size(0) <= every
            assert supervisor.has_snapshot(0), (
                "the stream never triggered a truncation snapshot"
            )
            assert _snap_canon(single.snapshot().clustering) == _snap_canon(
                sharded.snapshot().clustering
            )
        finally:
            sharded.close()
            single.close()
