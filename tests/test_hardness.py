"""Tests for the USEC / USEC-LS machinery and the Lemma 2 reduction."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardness.reduction import (
    make_reduction_clusterer,
    solve_usec_ls_with_clusterer,
)
from repro.hardness.usec import (
    random_usec_instance,
    random_usec_ls_instance,
    usec_brute,
    usec_ls_brute,
    usec_via_ls_oracle,
)


class TestBruteSolvers:
    def test_empty_sides(self):
        assert usec_brute([], [(0.0, 0.0)]) is False
        assert usec_brute([(0.0, 0.0)], []) is False

    def test_yes_instance(self):
        assert usec_brute([(0.0, 0.0)], [(0.5, 0.5)]) is True

    def test_no_instance(self):
        assert usec_brute([(0.0, 0.0)], [(2.0, 2.0)]) is False

    def test_boundary_inclusive(self):
        assert usec_brute([(0.0, 0.0)], [(1.0, 0.0)]) is True

    def test_ls_instance_generator_is_separated(self):
        inst = random_usec_ls_instance(20, 20, 3, seed=1)
        assert inst.is_line_separated()
        assert all(p[0] <= 0 for p in inst.red)
        assert all(p[0] >= 0 for p in inst.blue)

    def test_usec_generator_size(self):
        inst = random_usec_instance(10, 15, 2, seed=2)
        assert len(inst.red) == 10 and len(inst.blue) == 15
        assert inst.size == 25


class TestLemma1DivideAndConquer:
    """usec_via_ls_oracle must agree with brute force on any instance."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("dim", [2, 3])
    def test_random_instances(self, seed, dim):
        inst = random_usec_instance(12, 12, dim, extent=6.0, seed=seed)
        want = usec_brute(inst.red, inst.blue)
        got = usec_via_ls_oracle(inst.red, inst.blue, usec_ls_brute)
        assert got == want

    def test_oracle_receives_separated_inputs(self):
        """Every oracle call in the recursion must be line-separable."""
        calls = []

        def spy_oracle(red, blue):
            calls.append((list(red), list(blue)))
            return usec_ls_brute(red, blue)

        inst = random_usec_instance(16, 16, 2, extent=5.0, seed=42)
        usec_via_ls_oracle(inst.red, inst.blue, spy_oracle)
        for red, blue in calls:
            max_red = max(p[0] for p in red)
            min_blue = min(p[0] for p in blue)
            max_blue = max(p[0] for p in blue)
            min_red = min(p[0] for p in red)
            assert max_red <= min_blue or max_blue <= min_red


class TestLemma2Reduction:
    """Solving USEC-LS through the fully-dynamic clusterer."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("dim", [2, 3])
    def test_matches_brute(self, seed, dim):
        inst = random_usec_ls_instance(15, 15, dim, extent=3.0, seed=seed)
        want = usec_ls_brute(inst.red, inst.blue)
        got = solve_usec_ls_with_clusterer(
            inst.red, inst.blue, make_reduction_clusterer
        )
        assert got == want

    def test_empty_instances(self):
        assert solve_usec_ls_with_clusterer([], [(1.0, 0.0)], make_reduction_clusterer) is False
        assert solve_usec_ls_with_clusterer([(-1.0, 0.0)], [], make_reduction_clusterer) is False

    def test_single_touching_pair(self):
        red = [(-0.3, 0.0)]
        blue = [(0.3, 0.0)]
        assert solve_usec_ls_with_clusterer(red, blue, make_reduction_clusterer)

    def test_single_distant_pair(self):
        red = [(-2.0, 0.0)]
        blue = [(2.0, 0.0)]
        assert not solve_usec_ls_with_clusterer(red, blue, make_reduction_clusterer)

    def test_dataset_restored_between_probes(self):
        """The reduction's delete step must leave earlier probes unaffected:
        a late 'yes' pair is still detected after many 'no' probes."""
        red = [(-0.1, float(i)) for i in range(5)]
        blue = [(3.0, float(i)) for i in range(4)] + [(0.4, 0.0)]
        assert solve_usec_ls_with_clusterer(red, blue, make_reduction_clusterer)

    def test_full_pipeline_usec_via_dynamic_clustering(self):
        """End-to-end Lemma 1 + Lemma 2: USEC solved by dynamic clustering."""

        def clusterer_oracle(red, blue):
            return solve_usec_ls_with_clusterer(red, blue, make_reduction_clusterer)

        for seed in range(4):
            inst = random_usec_instance(8, 8, 2, extent=4.0, seed=seed)
            want = usec_brute(inst.red, inst.blue)
            got = usec_via_ls_oracle(inst.red, inst.blue, clusterer_oracle)
            assert got == want


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.tuples(st.floats(-3, -0.01), st.floats(0, 3)), min_size=1, max_size=10),
    st.lists(st.tuples(st.floats(0.01, 3), st.floats(0, 3)), min_size=1, max_size=10),
)
def test_hypothesis_reduction_matches_brute(red, blue):
    want = usec_ls_brute(red, blue)
    got = solve_usec_ls_with_clusterer(red, blue, make_reduction_clusterer)
    assert got == want
