"""Tests for the shared framework pieces and the workload config."""

from __future__ import annotations

import os

import pytest

from repro.core.framework import CGroupByResult, Clustering, GridClusterer
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.workload import config


class TestCGroupByResult:
    def test_group_sets(self):
        r = CGroupByResult(groups=[[1, 2], [3]], noise=[4])
        assert r.group_sets() == [{1, 2}, {3}]

    def test_memberships_counts_multi(self):
        r = CGroupByResult(groups=[[1, 2], [2, 3]], noise=[4])
        assert r.memberships() == {1: 1, 2: 2, 3: 1, 4: 0}

    def test_empty(self):
        r = CGroupByResult()
        assert r.groups == [] and r.noise == []
        assert r.memberships() == {}


class TestClustering:
    def test_cluster_count(self):
        c = Clustering(clusters=[{1}, {2, 3}], noise={4})
        assert c.cluster_count == 2


class TestGridClustererShared:
    def test_point_accessors(self):
        algo = SemiDynamicClusterer(1.0, 2, dim=2)
        pid = algo.insert((1.5, 2.5))
        assert algo.point(pid) == (1.5, 2.5)
        assert pid in algo
        assert list(algo.ids()) == [pid]
        assert algo.cell_of(pid) == algo._grid.cell_of((1.5, 2.5))

    def test_point_ids_monotone(self):
        algo = FullyDynamicClusterer(1.0, 2, dim=2)
        a = algo.insert((0.0, 0.0))
        b = algo.insert((1.0, 1.0))
        assert b == a + 1
        algo.delete(a)
        c = algo.insert((2.0, 2.0))
        assert c == b + 1  # ids are never reused

    def test_coordinates_coerced_to_float_tuples(self):
        algo = SemiDynamicClusterer(1.0, 2, dim=2)
        pid = algo.insert([1, 2])  # list of ints
        assert algo.point(pid) == (1.0, 2.0)
        assert isinstance(algo.point(pid), tuple)

    def test_base_class_insert_not_implemented(self):
        base = GridClusterer(1.0, 2, dim=2)
        with pytest.raises(NotImplementedError):
            base.insert((0.0, 0.0))
        with pytest.raises(NotImplementedError):
            base.delete(0)

    def test_cell_count_tracks_occupancy(self):
        algo = FullyDynamicClusterer(1.0, 2, dim=2)
        a = algo.insert((0.0, 0.0))
        b = algo.insert((50.0, 50.0))
        assert algo.cell_count == 2
        algo.delete(a)
        assert algo.cell_count == 1
        algo.delete(b)
        assert algo.cell_count == 0

    def test_same_cluster_with_noise_points(self):
        algo = FullyDynamicClusterer(1.0, 3, dim=2)
        a = algo.insert((0.0, 0.0))
        b = algo.insert((20.0, 20.0))
        assert not algo.same_cluster(a, b)
        assert not algo.same_cluster(a, a)  # noise shares no cluster, even with itself


class TestFactories:
    def test_paper_algorithm_factories(self):
        from repro import double_approx, full_exact_2d, semi_approx, semi_exact_2d

        a = semi_exact_2d(5.0, 7)
        assert (a.eps, a.minpts, a.rho, a.dim) == (5.0, 7, 0.0, 2)
        b = semi_approx(5.0, 7, rho=0.01, dim=5)
        assert (b.rho, b.dim) == (0.01, 5)
        c = full_exact_2d(5.0, 7)
        assert (c.eps, c.minpts, c.rho, c.dim) == (5.0, 7, 0.0, 2)
        d = double_approx(5.0, 7, rho=0.01, dim=3, connectivity="naive")
        assert (d.rho, d.dim) == (0.01, 3)

    def test_high_dim_smoke(self):
        """rho > 0 clusterers operate in d = 7 (the paper's max)."""
        from repro import double_approx, semi_approx

        pts = [tuple(float(i + j) for j in range(7)) for i in range(15)]
        for algo in (
            semi_approx(3.0, 3, rho=0.001, dim=7),
            double_approx(3.0, 3, rho=0.001, dim=7),
        ):
            ids = [algo.insert(p) for p in pts]
            result = algo.cgroup_by(ids)
            assert len(result.groups) >= 1


class TestConfig:
    def test_eps_for_default(self):
        assert config.eps_for(2) == 200.0
        assert config.eps_for(7, 800) == 5600.0

    def test_bench_n_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "123")
        assert config.bench_n() == 123
        monkeypatch.delenv("REPRO_BENCH_N")
        assert config.bench_n(777) == 777

    def test_table2_values_present(self):
        assert config.MINPTS == 10
        assert config.RHO == 0.001
        assert set(config.DIMENSIONS) == {2, 3, 5, 7}
        assert set(config.EPS_PER_D) == {50, 100, 200, 400, 800}
        assert 5 / 6 in config.INSERT_FRACTIONS
