"""The streaming cluster-analytics service (:mod:`repro.service`).

Four contracts are pinned here:

* **Differential correctness** — a scripted multi-session run of mixed
  ingest/delete/cgroup_by ops with interleaved barriers produces
  responses bit-identical at ``rho = 0`` to driving the same op
  sequence against a direct :class:`repro.api.Engine`, for both the
  unsharded and the ``shards=4`` backend (the acceptance criterion).
* **Backpressure** — admission control and bounded queues reject with
  429s, and a stalled client is aborted at the write-buffer ceiling
  instead of growing service memory without bound.
* **Graceful drain** — shutdown answers every admitted op and flushes
  every session's buffered ingest; acked ops are never lost.
* **Protocol** — malformed requests get 400s, engine errors map to
  their HTTP-style codes, epochs are echoed monotonically.

Every test drives a real ``asyncio.start_server`` socket on an
ephemeral port, under asyncio debug mode with a hard per-test deadline
(a deadlocked service fails loudly instead of hanging the suite).
"""

from __future__ import annotations

import asyncio
import json
import random
from contextlib import asynccontextmanager
from typing import Any, Dict, List, Tuple

import pytest

import repro.api as api
from repro.analysis.window import WindowedEngine
from repro.errors import ConfigError, ReproError, UnsupportedOperationError
from repro.service import (
    ClusterService,
    ServiceClient,
    ServiceError,
    ServiceLimits,
    protocol,
)

from conftest import clustered_points

EPS = 2.0
MINPTS = 3
TIMEOUT = 60.0


def run_async(coro, timeout: float = TIMEOUT):
    """Drive one service-test coroutine to completion.

    Always under asyncio debug mode and a hard deadline — the same
    posture the CI service leg runs the suite with.
    """

    async def bounded():
        return await asyncio.wait_for(coro, timeout)

    return asyncio.run(bounded(), debug=True)


def open_engine(shards=None, **overrides):
    knobs: Dict[str, Any] = dict(
        algorithm="full", eps=EPS, minpts=MINPTS, rho=0.0, dim=2
    )
    if shards:
        knobs.update(shards=shards, shard_executor="serial")
    knobs.update(overrides)
    return api.open(**knobs)


@asynccontextmanager
async def serving(engine, **kwargs):
    service = ClusterService(engine, **kwargs)
    await service.start("127.0.0.1", 0)
    try:
        yield service
    finally:
        await service.aclose()


async def connect(service: ClusterService) -> ServiceClient:
    host, port = service.address
    return await ServiceClient.connect(host, port)


async def raw_connect(service: ClusterService):
    host, port = service.address
    return await asyncio.open_connection(host, port)


# ----------------------------------------------------------------------
# Differential harness (the acceptance criterion)
# ----------------------------------------------------------------------

Step = Tuple[int, str, Dict[str, Any]]


def scripted_steps(seed: int, clients: int = 3, rounds: int = 24) -> List[Step]:
    """A deterministic multi-session mixed op script.

    Each step is ``(client_index, op, params)``.  Point ids are
    predicted with a sequential counter — sound because the driver
    round-robins clients and awaits every response, so the global op
    order (and hence id assignment at ``rho = 0``) is fixed.
    """
    rng = random.Random(seed)
    pool = clustered_points(rounds * 6, 2, seed=seed)
    cursor = 0
    next_id = 0
    live: List[int] = []
    steps: List[Step] = []
    for round_no in range(rounds):
        client = round_no % clients
        choice = rng.random()
        if choice < 0.45 or len(live) < 4:
            count = rng.randint(2, 6)
            batch = [list(p) for p in pool[cursor : cursor + count]]
            cursor += count
            steps.append((client, "ingest", {"points": batch}))
            live.extend(range(next_id, next_id + len(batch)))
            next_id += len(batch)
        elif choice < 0.60:
            victims = rng.sample(live, rng.randint(1, min(3, len(live))))
            for pid in victims:
                live.remove(pid)
            steps.append((client, "delete", {"pids": victims}))
        elif choice < 0.85:
            pids = rng.sample(live, rng.randint(1, min(8, len(live))))
            steps.append((client, "cgroup_by", {"pids": pids}))
        elif choice < 0.95:
            steps.append((client, "snapshot", {}))
        else:
            steps.append((client, "flush", {}))
    steps.append((0, "snapshot", {}))
    return steps


async def drive_service(engine, steps: List[Step], clients: int = 3):
    """Run the script over real sockets; one response dict per step."""
    responses = []
    async with serving(engine) as service:
        conns = [await connect(service) for _ in range(clients)]
        try:
            for client, op, params in steps:
                response = await conns[client].call(op, **params)
                response.pop("id")
                response.pop("ok")
                responses.append(response)
        finally:
            for conn in conns:
                await conn.aclose()
    return responses


def drive_reference(engine, steps: List[Step]):
    """The same op sequence against a direct engine, same payloads.

    Uses the service's own payload builders, so "bit-identical" is
    checked through one serialization.
    """
    responses = []
    for _client, op, params in steps:
        if op == "ingest":
            pids = engine.ingest(params["points"])
            responses.append({"pids": pids})
        elif op == "delete":
            engine.delete_many(params["pids"])
            responses.append({"deleted": len(params["pids"])})
        elif op == "cgroup_by":
            outcome = engine.cgroup_by_many(params["pids"])
            responses.append(protocol.outcome_payload(outcome))
        elif op == "flush":
            # flush is per-session: it applies the *caller's* buffered
            # updates, not other sessions', so only `pending` is
            # deterministic here.  Query epochs (below) barrier the
            # whole service and stay bit-comparable.
            responses.append({"pending": 0})
        else:
            responses.append(protocol.snapshot_payload(engine.snapshot()))
    return responses


class TestDifferential:
    @pytest.mark.parametrize("shards", [None, 4], ids=["unsharded", "shards4"])
    def test_multi_session_bit_identical_rho0(self, shards):
        """The acceptance differential: service == direct engine."""
        steps = scripted_steps(seed=11)
        service_engine = open_engine(shards=shards)
        reference = open_engine()
        try:
            got = run_async(drive_service(service_engine, steps))
            want = drive_reference(reference, steps)
            assert len(got) == len(want)
            for step, (response, expected) in enumerate(zip(got, want)):
                for key, value in expected.items():
                    assert response[key] == value, (
                        f"step {step} ({steps[step][1]}): field {key!r} "
                        f"diverged"
                    )
        finally:
            service_engine.close()
            reference.close()

    def test_cross_session_barrier_visibility(self):
        """A query on session B observes session A's acked ingest."""
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                a = await connect(service)
                b = await connect(service)
                acked = await a.ingest([[0.0, 0.0], [0.1, 0.0], [0.0, 0.1]])
                outcome = await b.cgroup_by(acked["pids"])
                assert outcome["groups"] == [acked["pids"]]
                assert outcome["epoch"] == 3
                await a.aclose()
                await b.aclose()

        run_async(scenario())
        engine.close()

    def test_epochs_monotonic_across_sessions(self):
        engine = open_engine()

        async def scenario():
            epochs = []
            async with serving(engine) as service:
                conns = [await connect(service) for _ in range(2)]
                for i in range(8):
                    conn = conns[i % 2]
                    acked = await conn.ingest([[float(i), 0.0]])
                    await conn.cgroup_by(acked["pids"])
                    flushed = await conn.flush()
                    epochs.append(flushed["epoch"])
                for conn in conns:
                    await conn.aclose()
            assert epochs == sorted(epochs)
            assert epochs[-1] == 8

        run_async(scenario())
        engine.close()


# ----------------------------------------------------------------------
# Backpressure and admission control
# ----------------------------------------------------------------------


class TestBackpressure:
    def test_session_limit_rejects_connection(self):
        engine = open_engine()

        async def scenario():
            limits = ServiceLimits(max_sessions=1)
            async with serving(engine, limits=limits) as service:
                first = await connect(service)
                await first.ping()
                reader, writer = await raw_connect(service)
                line = await reader.readline()
                response = json.loads(line)
                assert response["ok"] is False
                assert response["error"]["code"] == protocol.BACKPRESSURE
                assert await reader.readline() == b""  # hung up
                assert service.stats.sessions_rejected == 1
                writer.close()
                await writer.wait_closed()
                await first.aclose()

        run_async(scenario())
        engine.close()

    def test_queue_depth_rejects_burst_with_429(self):
        """A one-chunk burst overruns a depth-1 queue: 429s, not memory."""
        engine = open_engine()

        async def scenario():
            limits = ServiceLimits(queue_depth=1)
            async with serving(engine, limits=limits) as service:
                reader, writer = await raw_connect(service)
                burst_size = 64
                writer.write(
                    b"".join(
                        protocol.encode({"id": i, "op": "ping"})
                        for i in range(burst_size)
                    )
                )
                await writer.drain()
                accepted = rejected = 0
                for _ in range(burst_size):
                    response = json.loads(await reader.readline())
                    if response["ok"]:
                        accepted += 1
                    else:
                        assert (
                            response["error"]["code"] == protocol.BACKPRESSURE
                        )
                        rejected += 1
                assert accepted + rejected == burst_size
                assert accepted >= 1, "first op of the burst must land"
                assert rejected >= 1, "a depth-1 queue must shed the burst"
                assert service.stats.ops_rejected == rejected
                assert service.stats.ops_accepted == accepted
                writer.close()
                await writer.wait_closed()

        run_async(scenario())
        engine.close()

    def test_global_inflight_ceiling(self):
        engine = open_engine()

        async def scenario():
            limits = ServiceLimits(queue_depth=32, max_inflight=1)
            async with serving(engine, limits=limits) as service:
                reader, writer = await raw_connect(service)
                writer.write(
                    b"".join(
                        protocol.encode({"id": i, "op": "ping"})
                        for i in range(32)
                    )
                )
                await writer.drain()
                codes = []
                for _ in range(32):
                    response = json.loads(await reader.readline())
                    codes.append(
                        None
                        if response["ok"]
                        else response["error"]["code"]
                    )
                assert codes.count(None) >= 1
                assert protocol.BACKPRESSURE in codes
                writer.close()
                await writer.wait_closed()

        run_async(scenario())
        engine.close()

    def test_stalled_client_is_aborted_not_buffered(self):
        """The bounded-memory contract: a client that stops reading is
        aborted once its write buffer passes the ceiling."""
        engine = open_engine()

        async def scenario():
            limits = ServiceLimits(max_write_buffer=256 * 1024)
            async with serving(engine, limits=limits) as service:
                reader, writer = await raw_connect(service)
                # Each ping echoes its 64KB payload; the client never
                # reads, so responses pile up on the server side:
                # kernel buffers fill first, then the transport buffer
                # crosses the ceiling and the session is aborted.  The
                # 1024-iteration cap (~64MB of echo) is far beyond any
                # kernel buffering — reaching it means the service
                # buffered unboundedly, which is exactly the bug.
                payload = "x" * 65536
                for i in range(1024):
                    if service.stats.sessions_aborted:
                        break
                    try:
                        writer.write(
                            protocol.encode(
                                {"id": i, "op": "ping", "payload": payload}
                            )
                        )
                        await writer.drain()
                    except (ConnectionError, OSError):
                        break
                    await asyncio.sleep(0)
                while service.stats.sessions_aborted == 0:
                    await asyncio.sleep(0.01)
                assert service.stats.sessions_aborted == 1
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        run_async(scenario())
        engine.close()


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


class TestDrain:
    def test_drain_flushes_every_buffered_session(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                conns = [await connect(service) for _ in range(3)]
                for i, conn in enumerate(conns):
                    acked = await conn.ingest(
                        [[float(i), float(j)] for j in range(4)]
                    )
                    assert len(acked["pids"]) == 4
                # The active-writer token flushes each previous writer
                # when the next one buffers: only the last session may
                # still hold a buffer here.
                assert len(engine) >= 8
                await service.aclose()
                assert service.stats.drained_sessions == 3
                assert service.stats.failed_drains == 0
                # No lost acked ops: every acked ingest reached the
                # engine.
                assert len(engine) == 12
                # Drained connections are hung up.
                for conn in conns:
                    with pytest.raises(ReproError):
                        await conn.ping()
                for conn in conns:
                    await conn.aclose()

        run_async(scenario())
        engine.close()

    def test_drain_answers_queued_ops_before_closing(self):
        """Every admitted op is executed and answered during drain."""
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                reader, writer = await raw_connect(service)
                burst = 10
                writer.write(
                    b"".join(
                        protocol.encode(
                            {
                                "id": i,
                                "op": "ingest",
                                "points": [[float(i), 0.0]],
                            }
                        )
                        for i in range(burst)
                    )
                )
                await writer.drain()
                # Let the reader admit (or reject) the burst, then
                # drain concurrently with the worker.
                await asyncio.sleep(0)
                await service.aclose()
                acked = rejected = 0
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    response = json.loads(line)
                    if response["ok"]:
                        acked += 1
                    else:
                        rejected += 1
                assert acked + rejected == burst
                # The consistency core: engine state is exactly the
                # acked ops — nothing lost, nothing extra.
                assert len(engine) == acked
                writer.close()
                await writer.wait_closed()

        run_async(scenario())
        engine.close()

    def test_drained_service_refuses_new_connections(self):
        engine = open_engine()

        async def scenario():
            service = ClusterService(engine)
            await service.start("127.0.0.1", 0)
            host, port = service.address
            client = await connect(service)
            await client.ping()
            await service.aclose()
            # The listening socket is gone: new connections are
            # refused at the TCP level, not queued behind the drain.
            assert service.address is None
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection(host, port)
            await client.aclose()

        run_async(scenario())
        engine.close()

    def test_aclose_is_idempotent(self):
        engine = open_engine()

        async def scenario():
            service = ClusterService(engine)
            await service.start("127.0.0.1", 0)
            await service.aclose()
            await service.aclose()

        run_async(scenario())
        engine.close()

    def test_bye_flushes_before_hangup(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                client = await connect(service)
                await client.ingest([[0.0, 0.0], [1.0, 1.0]])
                farewell = await client.bye()
                assert farewell["bye"] is True
                # The normal end-of-connection path flushes buffered
                # ingest even though the client never queried.
                while len(engine) < 2:
                    await asyncio.sleep(0.01)
                await client.aclose()

        run_async(scenario())
        assert len(engine) == 2
        engine.close()


# ----------------------------------------------------------------------
# Sliding-window mode
# ----------------------------------------------------------------------


class TestWindowedService:
    def test_window_append_expires_oldest(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine, window_capacity=5) as service:
                client = await connect(service)
                first = await client.window_append(
                    [[float(i), 0.0] for i in range(3)]
                )
                assert first["pids"] == [0, 1, 2]
                assert first["expired"] == []
                assert first["window_size"] == 3
                second = await client.window_append(
                    [[float(i), 1.0] for i in range(4)]
                )
                assert second["pids"] == [3, 4, 5, 6]
                assert second["expired"] == [0, 1]
                assert second["window_size"] == 5
                stats = await client.stats()
                assert stats["window_size"] == 5
                assert stats["window_capacity"] == 5
                await client.aclose()

        run_async(scenario())
        engine.close()

    def test_windowed_mode_rejects_raw_updates(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine, window_capacity=4) as service:
                client = await connect(service)
                for op in ("ingest", "delete"):
                    with pytest.raises(ServiceError) as failure:
                        if op == "ingest":
                            await client.ingest([[0.0, 0.0]])
                        else:
                            await client.delete([0])
                    assert failure.value.code == protocol.UNSUPPORTED
                await client.aclose()

        run_async(scenario())
        engine.close()

    def test_window_append_requires_windowed_deployment(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                client = await connect(service)
                with pytest.raises(ServiceError) as failure:
                    await client.window_append([[0.0, 0.0]])
                assert failure.value.code == protocol.UNSUPPORTED
                await client.aclose()

        run_async(scenario())
        engine.close()

    def test_windowed_service_differential_vs_direct_window(self):
        """Windowed service responses == a direct WindowedEngine."""
        service_engine = open_engine()
        reference = WindowedEngine(open_engine(), 6)
        batches = [
            [[float(i), float(tick)] for i in range(3)] for tick in range(5)
        ]

        async def scenario():
            collected = []
            async with serving(service_engine, window_capacity=6) as service:
                client = await connect(service)
                for batch in batches:
                    appended = await client.window_append(batch)
                    snapshot = await client.snapshot()
                    collected.append((appended, snapshot))
                await client.aclose()
            return collected

        got = run_async(scenario())
        for batch, (appended, snapshot) in zip(batches, got):
            pids, expired = reference.append_many(batch)
            assert appended["pids"] == pids
            assert appended["expired"] == expired
            assert appended["window_size"] == len(reference)
            expected = protocol.snapshot_payload(reference.snapshot())
            for key, value in expected.items():
                assert snapshot[key] == value
        service_engine.close()
        reference.engine.close()

    def test_windowed_service_rejects_insert_only_engine(self):
        engine = api.open(algorithm="semi", eps=EPS, minpts=MINPTS, dim=2)
        with pytest.raises(UnsupportedOperationError):
            ClusterService(engine, window_capacity=4)
        engine.close()


# ----------------------------------------------------------------------
# Protocol and error mapping
# ----------------------------------------------------------------------


class TestProtocol:
    def _expect_error(self, engine, lines: List[bytes], code: int):
        async def scenario():
            async with serving(engine) as service:
                reader, writer = await raw_connect(service)
                for line in lines:
                    writer.write(line)
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == code
                writer.close()
                await writer.wait_closed()

        run_async(scenario())

    def test_not_json_is_400(self):
        engine = open_engine()
        self._expect_error(engine, [b"this is not json\n"], protocol.BAD_REQUEST)
        engine.close()

    def test_unknown_op_is_400(self):
        engine = open_engine()
        self._expect_error(
            engine, [b'{"op": "explode"}\n'], protocol.BAD_REQUEST
        )
        engine.close()

    def test_wrong_dim_point_is_400(self):
        engine = open_engine()
        self._expect_error(
            engine,
            [b'{"id": 1, "op": "ingest", "points": [[1.0]]}\n'],
            protocol.BAD_REQUEST,
        )
        engine.close()

    def test_non_finite_coordinate_is_400(self):
        engine = open_engine()
        self._expect_error(
            engine,
            [b'{"id": 1, "op": "ingest", "points": [[NaN, 0.0]]}\n'],
            protocol.BAD_REQUEST,
        )
        engine.close()

    def test_non_integer_pid_is_400(self):
        engine = open_engine()
        self._expect_error(
            engine,
            [b'{"id": 1, "op": "delete", "pids": ["zero"]}\n'],
            protocol.BAD_REQUEST,
        )
        engine.close()

    def test_bad_request_id_type_is_400(self):
        engine = open_engine()
        self._expect_error(
            engine, [b'{"id": {}, "op": "ping"}\n'], protocol.BAD_REQUEST
        )
        engine.close()

    def test_unknown_pid_surfaces_as_404_at_flush(self):
        """A buffered delete of a dead id fails at the flush barrier
        with the 404 mapping of UnknownPointError."""
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                client = await connect(service)
                await client.delete([999])  # buffered, acked
                with pytest.raises(ServiceError) as failure:
                    await client.flush()
                assert failure.value.code == protocol.UNKNOWN_POINT
                await client.aclose()

        run_async(scenario())
        engine.close()

    def test_shutdown_op_disabled_by_default(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                client = await connect(service)
                with pytest.raises(ServiceError) as failure:
                    await client.shutdown()
                assert failure.value.code == protocol.UNSUPPORTED
                await client.aclose()

        run_async(scenario())
        engine.close()

    def test_shutdown_op_when_enabled(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine, allow_shutdown=True) as service:
                client = await connect(service)
                response = await client.shutdown()
                assert response["shutting_down"] is True
                await asyncio.wait_for(service.wait_shutdown(), timeout=5)
                await client.aclose()

        run_async(scenario())
        engine.close()

    def test_ping_echoes_payload_and_epoch(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                client = await connect(service)
                response = await client.ping(payload={"tag": 7})
                assert response["pong"] is True
                assert response["payload"] == {"tag": 7}
                assert response["epoch"] == 0
                await client.aclose()

        run_async(scenario())
        engine.close()

    def test_stats_op_reports_service_counters(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                client = await connect(service)
                await client.ingest([[0.0, 0.0]])
                stats = await client.stats()
                assert stats["points"] == 1
                assert stats["algorithm"] == "full-exact"
                assert stats["sessions"] == 1
                assert stats["service"]["sessions_opened"] == 1
                assert stats["service"]["ops_accepted"] >= 2
                await client.aclose()

        run_async(scenario())
        engine.close()


# ----------------------------------------------------------------------
# Client behavior and service lifecycle
# ----------------------------------------------------------------------


class TestClientAndLifecycle:
    def test_client_pipelining_matches_responses_out_of_order_safe(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                client = await connect(service)
                futures = [
                    client.submit("ping", payload=i) for i in range(20)
                ]
                responses = await asyncio.gather(*futures)
                assert [r["payload"] for r in responses] == list(range(20))
                await client.aclose()

        run_async(scenario())
        engine.close()

    def test_server_killed_mid_request_fails_pending_futures(self):
        """The response pump under a hard server death: every pending
        future must raise ServiceError (503 connection_lost), never
        hang.  The stub server reads one request and drops the
        connection without replying — what a killed server process
        looks like from the client's side of the socket."""

        async def scenario():
            died = asyncio.Event()

            async def killed_mid_request(reader, writer):
                await reader.readline()  # a request is in flight...
                writer.transport.abort()  # ...and the server dies on it
                died.set()

            server = await asyncio.start_server(
                killed_mid_request, "127.0.0.1", 0
            )
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = await ServiceClient.connect(host, port)
                futures = [
                    client.submit("ping", payload=i) for i in range(5)
                ]
                await died.wait()
                results = await asyncio.gather(
                    *futures, return_exceptions=True
                )
                assert len(results) == 5
                for failure in results:
                    assert isinstance(failure, ServiceError)
                    assert failure.code == protocol.UNAVAILABLE
                    assert failure.error_type == "connection_lost"
                # The client knows the connection is gone: later
                # submissions fail fast instead of queueing forever.
                with pytest.raises(ReproError, match="connection lost"):
                    client.submit("ping")
                await client.aclose()
            finally:
                server.close()
                await server.wait_closed()

        run_async(scenario())

    def test_client_submit_after_close_raises(self):
        engine = open_engine()

        async def scenario():
            async with serving(engine) as service:
                client = await connect(service)
                await client.aclose()
                with pytest.raises(ReproError):
                    client.submit("ping")

        run_async(scenario())
        engine.close()

    def test_double_start_raises(self):
        engine = open_engine()

        async def scenario():
            service = ClusterService(engine)
            await service.start("127.0.0.1", 0)
            with pytest.raises(ReproError):
                await service.start("127.0.0.1", 0)
            await service.aclose()

        run_async(scenario())
        engine.close()

    def test_address_none_before_start(self):
        engine = open_engine()
        service = ClusterService(engine)
        assert service.address is None
        engine.close()

    def test_service_borrows_engine(self):
        """Closing the service must not close the engine."""
        engine = open_engine()

        async def scenario():
            service = ClusterService(engine)
            await service.start("127.0.0.1", 0)
            await service.aclose()

        run_async(scenario())
        assert not engine.closed
        engine.ingest([[0.0, 0.0]])
        engine.close()

    def test_limits_validation(self):
        for bad in (
            {"max_sessions": 0},
            {"queue_depth": -1},
            {"max_inflight": 0},
            {"max_write_buffer": 0},
            {"max_sessions": True},
            {"queue_depth": 2.5},
            {"drain_timeout": 0.0},
        ):
            with pytest.raises(ConfigError):
                ServiceLimits(**bad)

    def test_window_capacity_validation(self):
        engine = open_engine()
        for bad in (0, -3, True, 1.5):
            with pytest.raises(ConfigError):
                ClusterService(engine, window_capacity=bad)
        engine.close()
