"""Tests for the benchmark-results report renderer."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workload.report import (
    parse_results_file,
    render_figure,
    render_report,
)

SERIES_FILE = """# Figure X: demo, d=2, N=100

# Algo-A
t\tavgcost_us\tmaxupdcost_us
50\t10.00\t100.00
100\t12.00\t150.00

# IncDBSCAN
t\tavgcost_us\tmaxupdcost_us
50\t100.00\t500.00
100\t120.00\t900.00
"""

SWEEP_FILE = """# Figure Y: sweep demo

x\talgorithm\tavg_workload_cost_us
eps=50\tAlgo-A\t10.00
eps=50\tIncDBSCAN\t90.00
eps=100\tAlgo-A\t8.00
eps=100\tIncDBSCAN\t96.00
"""


@pytest.fixture
def series_path(tmp_path) -> Path:
    p = tmp_path / "figx.txt"
    p.write_text(SERIES_FILE)
    return p


@pytest.fixture
def sweep_path(tmp_path) -> Path:
    p = tmp_path / "figy.txt"
    p.write_text(SWEEP_FILE)
    return p


class TestParsing:
    def test_parse_series(self, series_path):
        data = parse_results_file(series_path)
        assert data.header.startswith("Figure X")
        assert [b.name for b in data.series] == ["Algo-A", "IncDBSCAN"]
        assert data.series[0].rows == [(50, 10.0, 100.0), (100, 12.0, 150.0)]
        assert data.series[0].first_avg == 10.0
        assert data.series[0].last_avg == 12.0
        assert data.series[1].max_update == 900.0

    def test_parse_sweep(self, sweep_path):
        data = parse_results_file(sweep_path)
        assert data.header.startswith("Figure Y")
        assert len(data.sweep) == 4
        assert data.sweep[0].x == "eps=50"
        assert data.sweep[0].cost == 10.0


class TestRendering:
    def test_render_series_includes_win_factor(self, series_path):
        lines = render_figure(parse_results_file(series_path))
        text = "\n".join(lines)
        assert "| Algo-A | 10.0 | 12.0 | 150.0 |" in text
        assert "10.0x" in text  # 120 / 12

    def test_render_sweep_matrix(self, sweep_path):
        text = "\n".join(render_figure(parse_results_file(sweep_path)))
        assert "| eps=100 | 8.0 | 96.0 | 12.0x |" in text

    def test_render_report_over_directory(self, series_path, sweep_path):
        report = render_report(series_path.parent)
        assert "Figure X" in report
        assert "Figure Y" in report
        assert report.startswith("# Measured benchmark series")

    def test_render_report_empty_dir(self, tmp_path):
        assert "no results files" in render_report(tmp_path)

    def test_real_results_parse_if_present(self):
        results = Path(__file__).parent.parent / "benchmarks" / "results"
        if not results.exists():
            pytest.skip("benchmarks not yet run")
        report = render_report(results)
        assert "Figure" in report or "Table" in report
