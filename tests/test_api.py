"""Behavior of the `repro.api` facade: config, engine, ingest sessions.

The engine-vs-direct output equivalence suite lives in
``tests/test_engine_equivalence.py``; this file covers the facade's own
semantics — typed config validation and normalization, epoch stamping,
protocol compatibility with the workload runners, and the buffered
ingest session's flush/barrier contract.
"""

from __future__ import annotations

import pytest

import repro
import repro.api as api
from repro.api import Engine, EngineConfig, IngestSession, QueryOutcome, Snapshot
from repro.baselines.incdbscan import IncDBSCAN
from repro.baselines.naive_dynamic import RecomputeClusterer
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.errors import (
    ConfigError,
    ReproError,
    UnknownPointError,
    UnsupportedOperationError,
)

from conftest import clustered_points


def _full_engine(**overrides) -> Engine:
    knobs = dict(algorithm="full", eps=1.0, minpts=3, dim=2)
    knobs.update(overrides)
    return api.open(**knobs)


class TestEngineConfig:
    def test_frozen(self):
        config = EngineConfig(eps=1.0, minpts=5)
        with pytest.raises(AttributeError):
            config.eps = 2.0

    def test_alias_resolution_by_rho(self):
        """Aliases stay as given; resolved_algorithm is the canonical name."""
        config = EngineConfig(eps=1.0, minpts=5, algorithm="semi")
        assert config.algorithm == "semi"
        assert config.resolved_algorithm == "semi-exact"
        assert (
            EngineConfig(eps=1.0, minpts=5, algorithm="semi", rho=0.01).resolved_algorithm
            == "semi-approx"
        )
        assert (
            EngineConfig(eps=1.0, minpts=5, algorithm="full").resolved_algorithm
            == "full-exact"
        )
        assert (
            EngineConfig(eps=1.0, minpts=5, algorithm="full", rho=0.01).resolved_algorithm
            == "double-approx"
        )
        canonical = EngineConfig(eps=1.0, minpts=5, algorithm="double-approx", rho=0.01)
        assert canonical.resolved_algorithm == canonical.algorithm

    def test_alias_survives_rho_override(self):
        """replace()/open(config, rho=...) re-resolves a family alias
        instead of contradicting an eagerly-frozen exact choice."""
        config = EngineConfig(eps=1.0, minpts=5, algorithm="full")
        assert config.resolved_algorithm == "full-exact"
        approx = config.replace(rho=0.001)
        assert approx.resolved_algorithm == "double-approx"
        assert api.open(config, rho=0.001).config.resolved_algorithm == "double-approx"
        # An explicitly exact name still rejects the contradiction.
        with pytest.raises(ConfigError, match="exact by definition"):
            EngineConfig(eps=1.0, minpts=5, algorithm="full-exact").replace(rho=0.001)

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigError, match="unknown algorithm"):
            EngineConfig(eps=1.0, minpts=5, algorithm="quantum-dbscan")

    def test_exact_rho_contradiction(self):
        with pytest.raises(ConfigError, match="exact by definition"):
            EngineConfig(eps=1.0, minpts=5, algorithm="full-exact", rho=0.01)
        with pytest.raises(ConfigError, match="no rho parameter"):
            EngineConfig(eps=1.0, minpts=5, algorithm="incdbscan", rho=0.01)

    @pytest.mark.parametrize(
        "knobs, match",
        [
            (dict(eps=float("nan")), "finite"),
            (dict(eps="wide"), "number"),
            (dict(minpts=2.5), "integer"),
            (dict(batch_size=0), "batch_size"),
            (dict(batch_size=True), "batch_size"),
            (dict(flush_threshold=0), "flush_threshold"),
        ],
    )
    def test_knob_validation(self, knobs, match):
        base = dict(eps=1.0, minpts=5)
        base.update(knobs)
        with pytest.raises(ConfigError, match=match):
            EngineConfig(**base)

    def test_replace_revalidates(self):
        config = EngineConfig(eps=1.0, minpts=5)
        assert config.replace(dim=3).dim == 3
        with pytest.raises(ConfigError):
            config.replace(eps=-1.0)

    def test_as_dict_roundtrip(self):
        config = EngineConfig(eps=2.0, minpts=7, algorithm="full", rho=0.001, dim=3)
        assert EngineConfig(**config.as_dict()) == config

    def test_build_clusterer_types(self):
        cases = {
            "semi-exact": SemiDynamicClusterer,
            "semi-approx": SemiDynamicClusterer,
            "full-exact": FullyDynamicClusterer,
            "double-approx": FullyDynamicClusterer,
            "incdbscan": IncDBSCAN,
            "recompute": RecomputeClusterer,
        }
        for name, cls in cases.items():
            rho = 0.001 if name.endswith("approx") else 0.0
            config = EngineConfig(eps=1.0, minpts=5, algorithm=name, rho=rho)
            clusterer = config.build_clusterer()
            assert type(clusterer) is cls
            if hasattr(clusterer, "rho"):
                assert clusterer.rho == config.effective_rho


class TestEngineFacade:
    def test_open_variants_are_equivalent(self):
        config = EngineConfig(eps=1.0, minpts=3, dim=2)
        assert Engine.open(config).config == api.open(eps=1.0, minpts=3).config
        overridden = api.open(config, dim=3)
        assert overridden.config.dim == 3

    def test_open_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            api.open(eps=1.0, minpts=3, nonsense=True)

    def test_epoch_counts_update_operations(self):
        engine = _full_engine()
        pids = engine.ingest([(0.0, 0.0), (0.1, 0.1), (5.0, 5.0)])
        assert engine.epoch == 3
        engine.insert((0.2, 0.2))
        assert engine.epoch == 4
        engine.delete(pids[2])
        assert engine.epoch == 5
        engine.delete_many(pids[:2])
        assert engine.epoch == 7

    def test_query_outcome_is_epoch_stamped(self):
        engine = _full_engine()
        pids = engine.ingest([(0.0, 0.0), (0.1, 0.1), (0.2, 0.2)])
        outcome = engine.cgroup_by(pids)
        assert isinstance(outcome, QueryOutcome)
        assert outcome.epoch == engine.epoch == 3
        assert outcome.backend == engine.backend
        assert outcome.groups == [sorted(pids)]
        assert outcome.noise == []
        assert outcome.group_sets() == [set(pids)]

    def test_snapshot_and_stats(self):
        engine = _full_engine()
        engine.ingest([(0.0, 0.0), (0.1, 0.1), (0.2, 0.2), (9.0, 9.0)])
        snap = engine.snapshot()
        assert isinstance(snap, Snapshot)
        assert snap.epoch == 4 and snap.size == 4
        assert snap.cluster_count == 1 and snap.noise == {3}
        stats = engine.stats()
        assert stats.points == 4 and stats.epoch == 4
        assert stats.algorithm == "full-exact"
        assert stats.cells == engine.raw.cell_count
        assert stats.config is engine.config

    def test_dead_pid_and_insert_only_errors(self):
        engine = _full_engine()
        with pytest.raises(UnknownPointError):
            engine.delete(3)
        semi = api.open(algorithm="semi", eps=1.0, minpts=3)
        semi.insert((0.0, 0.0))
        with pytest.raises(UnsupportedOperationError, match="insert-only"):
            semi.delete(0)
        with pytest.raises(UnsupportedOperationError, match="insert-only"):
            semi.delete_many([0])

    def test_engine_satisfies_runner_protocols(self):
        """The runners drive an Engine exactly like a bare clusterer."""
        from repro.workload.runner import run_workload_engine
        from repro.workload.workload import generate_workload

        workload = generate_workload(120, 2, seed=5)
        sequential = run_workload_engine(
            api.open(algorithm="full", eps=200.0, minpts=10, dim=2), workload
        )
        batched = run_workload_engine(
            api.open(
                algorithm="full", eps=200.0, minpts=10, dim=2, batch_size=16
            ),
            workload,
        )
        assert sequential.operation_count == batched.operation_count == 120 + workload.query_count
        assert "insert_many" in batched.op_kinds
        assert "insert_many" not in sequential.op_kinds

    def test_context_manager_closes_on_exit(self):
        with _full_engine() as engine:
            engine.insert((0.0, 0.0))
            assert len(engine) == 1
        # Exiting the block releases the engine (matching ShardedEngine),
        # and close stays idempotent afterwards.
        assert engine.closed
        engine.close()
        assert engine.closed

    def test_top_level_reexports(self):
        assert repro.Engine is Engine
        assert repro.EngineConfig is EngineConfig
        assert repro.IngestSession is IngestSession


class TestIngestSession:
    def test_eager_ids_match_applied_ids(self):
        engine = _full_engine(flush_threshold=None)
        session = engine.session()
        predicted = [session.ingest(p) for p in [(0.0, 0.0), (0.1, 0.1)]]
        predicted += session.ingest_many([(0.2, 0.2), (0.3, 0.3)])
        assert predicted == [0, 1, 2, 3]
        assert session.pending_updates == 4
        assert len(engine) == 0  # nothing applied yet
        session.flush()
        assert len(engine) == 4
        assert sorted(engine.raw.ids()) == predicted

    def test_auto_flush_on_threshold(self):
        engine = _full_engine()
        session = engine.session(flush_threshold=3)
        session.ingest((0.0, 0.0))
        session.ingest((0.1, 0.1))
        assert len(engine) == 0
        session.ingest((0.2, 0.2))
        assert len(engine) == 3 and session.pending_updates == 0
        assert session.flush_count == 1

    def test_query_barrier_flushes_first(self):
        engine = _full_engine(flush_threshold=None)
        session = engine.session()
        pids = session.ingest_many([(0.0, 0.0), (0.1, 0.1), (0.2, 0.2)])
        outcome = session.cgroup_by(pids)
        assert outcome.groups == [sorted(pids)]
        assert outcome.epoch == 3  # the barrier applied the buffer
        assert session.pending_updates == 0

    def test_snapshot_and_stats_are_barriers(self):
        engine = _full_engine(flush_threshold=None)
        session = engine.session()
        session.ingest((0.0, 0.0))
        assert session.snapshot().size == 1
        session.ingest((0.1, 0.1))
        assert session.stats().points == 2

    def test_buffered_deletes_coalesce(self):
        engine = _full_engine(flush_threshold=None)
        pids = engine.ingest([(0.0, 0.0), (0.1, 0.1), (5.0, 5.0)])
        session = engine.session()
        session.delete(pids[0])
        session.delete(pids[2])
        assert len(engine) == 3  # buffered
        session.flush()
        assert len(engine) == 1

    def test_delete_of_pending_insert_forces_flush(self):
        engine = _full_engine(flush_threshold=None)
        session = engine.session()
        pid = session.ingest((0.0, 0.0))
        session.delete(pid)  # targets a buffered insertion
        session.flush()
        assert len(engine) == 0
        assert engine.epoch == 2  # one insert + one delete applied

    def test_insert_only_delete_fails_fast(self):
        engine = api.open(algorithm="semi", eps=1.0, minpts=3)
        session = engine.session()
        session.ingest((0.0, 0.0))
        with pytest.raises(UnsupportedOperationError):
            session.delete(0)
        # The buffered insert is still intact and flushable.
        session.flush()
        assert len(engine) == 1

    def test_context_manager_flushes_on_success(self):
        engine = _full_engine(flush_threshold=None)
        with engine.session() as session:
            session.ingest((0.0, 0.0))
        assert len(engine) == 1

    def test_context_manager_discards_on_error(self):
        engine = _full_engine(flush_threshold=None)
        with pytest.raises(RuntimeError, match="boom"):
            with engine.session() as session:
                session.ingest((0.0, 0.0))
                raise RuntimeError("boom")
        assert len(engine) == 0 and session.pending_updates == 0

    def test_discard(self):
        engine = _full_engine(flush_threshold=None)
        session = engine.session()
        session.ingest_many([(0.0, 0.0), (0.1, 0.1)])
        assert session.discard() == 2
        session.flush()
        assert len(engine) == 0

    def test_failed_run_keeps_later_runs_buffered(self):
        """A mid-flush failure drops only the failing run; later runs
        (and their handed-out ids) survive for a retried flush."""
        engine = _full_engine(flush_threshold=None)
        first = engine.insert((5.0, 5.0))
        session = engine.session()
        session.delete(first)
        pid_a = session.ingest((0.0, 0.0))
        session.delete(999)          # dead pid: this run will fail
        pid_b = session.ingest((0.1, 0.1))
        with pytest.raises(UnknownPointError):
            session.flush()
        # Runs before the failure applied; the dead delete run is gone;
        # the trailing insert run is still pending with its id intact.
        assert first not in engine and pid_a in engine
        assert session.pending_updates == 1
        session.flush()
        assert pid_b in engine and len(engine) == 2

    def test_stale_session_detected(self):
        engine = _full_engine(flush_threshold=None)
        session = engine.session()
        session.ingest((0.0, 0.0))
        engine.insert((9.0, 9.0))  # direct write invalidates predictions
        with pytest.raises(ReproError, match="stale"):
            session.flush()

    def test_bad_threshold_rejected(self):
        engine = _full_engine()
        with pytest.raises(ConfigError, match="flush_threshold"):
            engine.session(flush_threshold=0)

    def test_large_stream_equals_direct_ingest(self):
        points = clustered_points(400, 2, seed=11)
        direct = FullyDynamicClusterer(1.0, 5, rho=0.0, dim=2)
        direct.insert_many(points)
        engine = _full_engine(eps=1.0, minpts=5)
        with engine.session(flush_threshold=64) as session:
            for p in points:
                session.ingest(p)
        assert session.flush_count >= 6
        expected = direct.cgroup_by_many(sorted(direct.ids()))
        got = engine.snapshot()
        direct_snap = direct.clusters()
        assert sorted(map(sorted, got.clusters)) == sorted(
            map(sorted, direct_snap.clusters)
        )
        assert got.noise == direct_snap.noise
        assert expected.groups == engine.cgroup_by_many(
            sorted(engine.raw.ids())
        ).groups


class TestLifecycleIdempotence:
    """The close()/__exit__ audit: Engine, ShardedEngine, IngestSession.

    One shared contract: the first close does the work, every later
    close is a silent no-op (a crash-path double-close must never raise
    a secondary error on top of the one that mattered), and using a
    retired session raises a clear ReproError.
    """

    # -- Engine ---------------------------------------------------------

    def test_engine_double_close(self):
        engine = _full_engine()
        engine.insert((0.0, 0.0))
        engine.close()
        assert engine.closed
        engine.close()
        engine.close()
        assert engine.closed

    def test_engine_exit_then_close(self):
        with _full_engine() as engine:
            pass
        assert engine.closed
        engine.close()  # close after __exit__ stays a no-op

    def test_engine_close_inside_with_block(self):
        # __exit__ after an explicit close must not raise.
        with _full_engine() as engine:
            engine.close()
        assert engine.closed

    # -- ShardedEngine --------------------------------------------------

    def test_sharded_engine_double_close(self):
        engine = api.open(
            algorithm="full", eps=1.0, minpts=3, dim=2,
            shards=2, shard_executor="serial",
        )
        engine.ingest([(0.0, 0.0), (5.0, 5.0)])
        engine.close()
        assert engine.closed
        engine.close()
        assert engine.closed

    def test_sharded_engine_context_manager(self):
        with api.open(
            algorithm="full", eps=1.0, minpts=3, dim=2,
            shards=2, shard_executor="serial",
        ) as engine:
            engine.ingest([(0.0, 0.0)])
            engine.close()  # explicit close inside the block is fine
        assert engine.closed

    # -- IngestSession --------------------------------------------------

    def test_session_close_flushes_buffered_ops(self):
        engine = _full_engine(flush_threshold=None)
        session = engine.session()
        pids = session.ingest_many([(0.0, 0.0), (0.1, 0.1)])
        assert session.pending_updates == 2
        session.close()
        assert session.closed
        assert session.pending_updates == 0
        assert all(pid in engine for pid in pids)

    def test_session_double_close_is_silent(self):
        engine = _full_engine(flush_threshold=None)
        session = engine.session()
        session.ingest((0.0, 0.0))
        session.close()
        session.close()
        session.close()
        assert session.closed and len(engine) == 1

    @pytest.mark.parametrize(
        "op",
        [
            lambda s: s.ingest((0.0, 0.0)),
            lambda s: s.ingest_many([(0.0, 0.0)]),
            lambda s: s.delete(0),
            lambda s: s.delete_many([0]),
            lambda s: s.cgroup_by([0]),
            lambda s: s.cgroup_by_many([0]),
            lambda s: s.snapshot(),
            lambda s: s.stats(),
        ],
        ids=[
            "ingest", "ingest_many", "delete", "delete_many",
            "cgroup_by", "cgroup_by_many", "snapshot", "stats",
        ],
    )
    def test_closed_session_rejects_ops(self, op):
        engine = _full_engine(flush_threshold=None)
        engine.insert((0.0, 0.0))
        session = engine.session()
        session.close()
        with pytest.raises(ReproError, match="closed ingest session"):
            op(session)

    def test_session_close_with_failing_flush_raises_once(self):
        """A failing final flush propagates the primary error exactly
        once: the buffer is discarded, later closes are silent."""
        engine = _full_engine(flush_threshold=None)
        session = engine.session()
        session.delete(999)  # dead pid: the close-flush will fail
        with pytest.raises(UnknownPointError):
            session.close()
        assert session.closed
        assert session.pending_updates == 0  # discarded, not stuck
        session.close()  # no secondary error

    def test_session_exit_after_close_is_silent(self):
        engine = _full_engine(flush_threshold=None)
        with engine.session() as session:
            session.ingest((0.0, 0.0))
            session.close()
        assert session.closed and len(engine) == 1

    def test_session_close_after_engine_close_discards(self):
        """Closing a session whose engine died discards the buffer and
        surfaces the engine failure — exactly once."""
        engine = _full_engine(flush_threshold=None)
        session = engine.session()
        session.ingest((0.0, 0.0))
        engine.close()
        with pytest.raises(Exception):
            session.close()
        assert session.closed and session.pending_updates == 0
        session.close()  # and never again
