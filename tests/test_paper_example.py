"""A hand-built configuration mirroring the paper's running example.

Figure 2/4 of the paper uses 18 points, MinPts = 3, forming three exact
clusters {o1..o5}, {o6..o12}, {o13..o17} with o13 a border point attached
to the cluster of o14 and o18 noise.  The paper gives no coordinates, so we
construct an analogous configuration with the same qualitative features:

* three well-separated groups of core points,
* a border point within eps of exactly one core point (o13 ~ o14),
* an isolated noise point (o18),
* a "don't care" gap between groups 1 and 2 of width between eps and
  (1 + rho) eps for rho = 0.5 (the o4 - o10 edge), so the approximate
  variants may merge those clusters while exact DBSCAN must not.
"""

from __future__ import annotations

import pytest

from repro.baselines.static_dbscan import dbscan_brute, dbscan_grid
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.validation import check_legality, check_sandwich

EPS = 1.0
MINPTS = 3
RHO = 0.5

# Group 1 (o1..o5): a tight chain of core points.
GROUP1 = [(0.0, 0.0), (0.8, 0.0), (1.6, 0.0), (2.4, 0.0), (2.4, 0.8)]
# Group 2 (o6..o12): another chain, 1.3 away from o4=(2.4, 0) on the x-axis
# (inside the don't-care band (1.0, 1.5] for rho = 0.5).
GROUP2 = [
    (3.7, 0.0),
    (4.5, 0.0),
    (5.3, 0.0),
    (5.3, 0.8),
    (4.5, 0.8),
    (3.7, 0.8),
    (4.5, 1.6),
]
# Group 3 (o14..o17) plus the border point o13.
GROUP3 = [(10.0, 10.0), (10.8, 10.0), (10.0, 10.8), (10.8, 10.8)]
O13 = (9.1, 10.0)  # within eps of o14=(10, 10) only; |B(o13,eps)| = 2 < 3
O18 = (50.0, 50.0)  # noise

ALL = GROUP1 + GROUP2 + GROUP3 + [O13, O18]
IDX_O13 = len(ALL) - 2
IDX_O18 = len(ALL) - 1


class TestStaticShape:
    def test_exact_clusters(self):
        ref = dbscan_brute(ALL, EPS, MINPTS)
        assert len(ref.clusters) == 3
        assert ref.noise == {IDX_O18}
        assert IDX_O13 not in ref.core
        # o13 joins exactly the cluster of group 3.
        memberships = ref.memberships(IDX_O13)
        assert len(memberships) == 1
        cluster3 = ref.clusters[memberships[0]]
        assert set(range(len(GROUP1) + len(GROUP2), len(ALL) - 1)) <= cluster3

    def test_grid_matches_brute(self):
        assert dbscan_grid(ALL, EPS, MINPTS).canonical() == dbscan_brute(
            ALL, EPS, MINPTS
        ).canonical()

    def test_dont_care_band_width(self):
        """The group-1/group-2 gap really is inside (eps, (1+rho) eps]."""
        from repro.geometry.points import dist

        gap = dist((2.4, 0.0), (3.7, 0.0))
        assert EPS < gap <= (1 + RHO) * EPS


class TestDynamicVariants:
    @pytest.mark.parametrize("cls", [SemiDynamicClusterer, FullyDynamicClusterer])
    def test_exact_variant_three_clusters(self, cls):
        algo = cls(EPS, MINPTS, rho=0.0, dim=2)
        ids = [algo.insert(p) for p in ALL]
        clustering = algo.clusters()
        assert len(clustering.clusters) == 3
        assert clustering.noise == {ids[IDX_O18]}
        assert not algo.is_core(ids[IDX_O13])

    @pytest.mark.parametrize("cls", [SemiDynamicClusterer, FullyDynamicClusterer])
    def test_approx_variant_sandwich(self, cls):
        algo = cls(EPS, MINPTS, rho=RHO, dim=2)
        ids = [algo.insert(p) for p in ALL]
        clustering = algo.clusters()
        # The don't-care edge means 2 or 3 clusters are both legal.
        assert len(clustering.clusters) in (2, 3)
        coords = {pid: algo.point(pid) for pid in ids}
        assert check_sandwich(coords, clustering.clusters, EPS, MINPTS, RHO) == []
        core = {pid for pid in ids if algo.is_core(pid)}
        relaxed = isinstance(algo, FullyDynamicClusterer)
        assert check_legality(
            coords, clustering.clusters, clustering.noise, core,
            EPS, MINPTS, RHO, relaxed_core=relaxed,
        ) == []

    def test_o13_relaxed_core_band(self):
        """Under double approximation o13 is a don't-care core point:
        |B(o13, eps)| = 2 < 3 but |B(o13, 1.5)| >= 3."""
        from repro.geometry.points import sq_dist

        tight = sum(1 for p in ALL if sq_dist(p, O13) <= EPS * EPS)
        loose = sum(
            1 for p in ALL if sq_dist(p, O13) <= (1 + RHO) ** 2 * EPS * EPS
        )
        assert tight == 2
        assert loose >= 3

    def test_deleting_bridge_restores_three_clusters(self):
        """Insert a bridge merging groups 1-2, then delete it (Figure 1)."""
        algo = FullyDynamicClusterer(EPS, MINPTS, rho=0.0, dim=2)
        ids = [algo.insert(p) for p in ALL]
        assert len(algo.clusters().clusters) == 3
        bridge = [algo.insert(p) for p in [(3.05, 0.0), (3.05, 0.6), (3.05, -0.6)]]
        assert len(algo.clusters().clusters) == 2
        for pid in bridge:
            algo.delete(pid)
        assert len(algo.clusters().clusters) == 3

    def test_cgroup_by_example_query(self):
        """The paper's example: Q = {o13, o14, o8} -> {o14, o13}, {o8, o13}
        under approximate semantics, or {o14, o13}, {o8} under exact."""
        algo = FullyDynamicClusterer(EPS, MINPTS, rho=0.0, dim=2)
        ids = [algo.insert(p) for p in ALL]
        o8 = ids[len(GROUP1) + 2]
        o14 = ids[len(GROUP1) + len(GROUP2)]
        o13 = ids[IDX_O13]
        result = algo.cgroup_by([o13, o14, o8])
        groups = sorted(map(sorted, result.group_sets()))
        assert groups == sorted(map(sorted, [{o13, o14}, {o8}]))
