"""Tests for the semi-dynamic (insert-only) clusterer — Theorem 1."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.static_dbscan import dbscan_brute
from repro.core.semidynamic import SemiDynamicClusterer, semi_approx, semi_exact_2d
from repro.validation import check_legality, check_sandwich

from conftest import assert_matches_static, clustered_points, random_points


class TestBasics:
    def test_empty_clusterer(self):
        algo = SemiDynamicClusterer(1.0, 3)
        assert len(algo) == 0
        result = algo.cgroup_by([])
        assert result.groups == [] and result.noise == []

    def test_single_point_is_noise_with_high_minpts(self):
        algo = SemiDynamicClusterer(1.0, 3)
        pid = algo.insert((0.0, 0.0))
        assert not algo.is_core(pid)
        assert algo.cgroup_by([pid]).noise == [pid]

    def test_minpts_one_every_point_core(self):
        algo = SemiDynamicClusterer(1.0, 1)
        pid = algo.insert((0.0, 0.0))
        assert algo.is_core(pid)

    def test_dimension_mismatch_rejected(self):
        algo = SemiDynamicClusterer(1.0, 3, dim=2)
        with pytest.raises(ValueError):
            algo.insert((1.0, 2.0, 3.0))

    def test_delete_unsupported(self):
        algo = SemiDynamicClusterer(1.0, 3)
        pid = algo.insert((0.0, 0.0))
        with pytest.raises(NotImplementedError):
            algo.delete(pid)

    def test_minpts_validation(self):
        with pytest.raises(ValueError):
            SemiDynamicClusterer(1.0, 0)

    def test_three_close_points_form_cluster(self):
        algo = SemiDynamicClusterer(1.0, 3)
        ids = [algo.insert(p) for p in [(0, 0), (0.5, 0), (0, 0.5)]]
        assert all(algo.is_core(pid) for pid in ids)
        result = algo.cgroup_by(ids)
        assert len(result.groups) == 1
        assert set(result.groups[0]) == set(ids)

    def test_vicinity_count_tracks_insertions(self):
        algo = SemiDynamicClusterer(1.0, 4)
        a = algo.insert((0.0, 0.0))
        assert algo.vicinity_count(a) == 1
        algo.insert((0.5, 0.0))
        assert algo.vicinity_count(a) == 2
        algo.insert((0.0, 0.5))
        assert algo.vicinity_count(a) == 3
        algo.insert((0.2, 0.2))
        assert algo.vicinity_count(a) is None  # promoted
        assert algo.is_core(a)

    def test_query_unknown_id_raises(self):
        algo = SemiDynamicClusterer(1.0, 3)
        with pytest.raises(KeyError):
            algo.cgroup_by([123])

    def test_cluster_merge_via_bridge(self):
        """Two separate clusters merge when bridging points arrive (Fig 1)."""
        algo = SemiDynamicClusterer(1.0, 2)
        left = [algo.insert((float(x) / 2, 0.0)) for x in range(4)]
        right = [algo.insert((float(x) / 2 + 10.0, 0.0)) for x in range(4)]
        assert not algo.same_cluster(left[0], right[0])
        assert len(algo.clusters().clusters) == 2
        for x in range(4, 21):
            algo.insert((float(x) / 2, 0.0))
        assert algo.same_cluster(left[0], right[0])
        assert len(algo.clusters().clusters) == 1


class TestExactEquivalence:
    """With rho = 0 the dynamic output must equal static exact DBSCAN."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_random_uniform(self, seed, dim):
        pts = random_points(120, dim, extent=12.0, seed=seed)
        algo = SemiDynamicClusterer(1.5, 4, rho=0.0, dim=dim)
        ids = [algo.insert(p) for p in pts]
        idmap = {pid: i for i, pid in enumerate(ids)}
        assert_matches_static(algo.clusters(), idmap, dbscan_brute(pts, 1.5, 4))

    @pytest.mark.parametrize("seed", [3, 4])
    def test_clustered_data(self, seed):
        pts = clustered_points(150, 2, seed=seed)
        algo = semi_exact_2d(2.0, 5)
        ids = [algo.insert(p) for p in pts]
        idmap = {pid: i for i, pid in enumerate(ids)}
        assert_matches_static(algo.clusters(), idmap, dbscan_brute(pts, 2.0, 5))

    def test_prefix_equivalence(self):
        """Equality must hold after *every* insertion, not only at the end."""
        pts = clustered_points(60, 2, seed=9)
        algo = semi_exact_2d(2.0, 4)
        ids = []
        for i, p in enumerate(pts):
            ids.append(algo.insert(p))
            if i % 7 == 6:
                idmap = {pid: j for j, pid in enumerate(ids)}
                ref = dbscan_brute(pts[: i + 1], 2.0, 4)
                assert_matches_static(algo.clusters(), idmap, ref)

    def test_duplicate_points(self):
        algo = SemiDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        pts = [(1.0, 1.0)] * 5 + [(8.0, 8.0)]
        ids = [algo.insert(p) for p in pts]
        idmap = {pid: i for i, pid in enumerate(ids)}
        assert_matches_static(algo.clusters(), idmap, dbscan_brute(pts, 1.0, 3))

    def test_boundary_distances(self):
        """Points exactly eps apart must connect (<= semantics)."""
        algo = SemiDynamicClusterer(1.0, 2, rho=0.0, dim=1)
        a = algo.insert((0.0,))
        b = algo.insert((1.0,))
        assert algo.same_cluster(a, b)


class TestApproximateLegality:
    @pytest.mark.parametrize("rho", [0.001, 0.1, 0.5])
    @pytest.mark.parametrize("dim", [2, 3])
    def test_sandwich_and_legality(self, rho, dim):
        pts = clustered_points(130, dim, seed=11)
        algo = semi_approx(2.0, 5, rho=rho, dim=dim)
        ids = [algo.insert(p) for p in pts]
        clustering = algo.clusters()
        coords = {pid: algo.point(pid) for pid in ids}
        core = {pid for pid in ids if algo.is_core(pid)}
        assert check_sandwich(coords, clustering.clusters, 2.0, 5, rho) == []
        violations = check_legality(
            coords, clustering.clusters, clustering.noise, core,
            2.0, 5, rho, relaxed_core=False,
        )
        assert violations == []

    def test_core_status_is_exact_for_semi(self):
        """rho-approximate semantics keep the exact core definition."""
        pts = clustered_points(100, 2, seed=13)
        algo = semi_approx(2.0, 5, rho=0.4, dim=2)
        ids = [algo.insert(p) for p in pts]
        ref = dbscan_brute(pts, 2.0, 5)
        idmap = {pid: i for i, pid in enumerate(ids)}
        got_core = {idmap[pid] for pid in ids if algo.is_core(pid)}
        assert got_core == ref.core


class TestCGroupBySemantics:
    def test_subset_query_matches_full_clustering(self):
        pts = clustered_points(100, 2, seed=21)
        algo = semi_exact_2d(2.0, 5)
        ids = [algo.insert(p) for p in pts]
        full = algo.clusters()
        rng = random.Random(0)
        for _ in range(10):
            q = rng.sample(ids, 15)
            result = algo.cgroup_by(q)
            # Each group must be the intersection of some full cluster with Q.
            expected = [c & set(q) for c in full.clusters]
            expected = [e for e in expected if e]
            got = sorted(map(sorted, result.group_sets()))
            assert got == sorted(map(sorted, expected))
            assert set(result.noise) == full.noise & set(q)

    def test_border_point_in_multiple_groups(self):
        algo = SemiDynamicClusterer(1.0, 4, rho=0.0, dim=1)
        # Two 4-point clusters whose tips are 1.0 away from the border
        # point; the border's ball holds only the two tips plus itself.
        left = [algo.insert((x,)) for x in (0.1, 0.4, 0.7, 1.0)]
        right = [algo.insert((x,)) for x in (3.0, 3.3, 3.6, 3.9)]
        border = algo.insert((2.0,))  # within 1.0 of 1.0 and 3.0 only
        assert not algo.is_core(border)
        result = algo.cgroup_by([*left, *right, border])
        assert len(result.groups) == 2
        count = sum(1 for g in result.groups if border in g)
        assert count == 2

    def test_memberships_helper(self):
        algo = SemiDynamicClusterer(1.0, 1, dim=1)
        a = algo.insert((0.0,))
        b = algo.insert((10.0,))
        result = algo.cgroup_by([a, b])
        assert result.memberships() == {a: 1, b: 1}


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 15), st.floats(0, 15)),
        min_size=1,
        max_size=60,
    ),
    st.integers(2, 5),
)
def test_hypothesis_exact_equivalence(cloud, minpts):
    algo = SemiDynamicClusterer(2.0, minpts, rho=0.0, dim=2)
    ids = [algo.insert(p) for p in cloud]
    idmap = {pid: i for i, pid in enumerate(ids)}
    assert_matches_static(algo.clusters(), idmap, dbscan_brute(cloud, 2.0, minpts))


class TestVicinityCountAfterDensePromotion:
    """Regression: once a cell turns dense every member is promoted and
    must stop carrying a vicinity count, including points that join the
    already-dense cell later."""

    def test_counts_cleared_when_cell_turns_dense(self):
        algo = SemiDynamicClusterer(10.0, 3, dim=2)
        # All in one cell (side = 10/sqrt(2) ~ 7.07) but pairwise spread.
        a = algo.insert((0.5, 0.5))
        b = algo.insert((6.5, 0.5))
        assert algo.vicinity_count(a) is not None
        assert algo.vicinity_count(b) is not None
        c = algo.insert((0.5, 6.5))  # third point: cell now dense
        for pid in (a, b, c):
            assert algo.is_core(pid)
            assert algo.vicinity_count(pid) is None

    def test_late_arrival_into_dense_cell_never_tracked(self):
        algo = SemiDynamicClusterer(10.0, 3, dim=2)
        ids = [algo.insert((0.5 + 0.1 * i, 0.5)) for i in range(3)]
        late = algo.insert((6.9, 6.9))
        assert algo.is_core(late)
        assert algo.vicinity_count(late) is None
        assert all(algo.vicinity_count(pid) is None for pid in ids)

    def test_bulk_path_matches_dense_promotion(self):
        pts = [(0.5, 0.5), (6.5, 0.5), (0.5, 6.5), (6.9, 6.9)]
        seq = SemiDynamicClusterer(10.0, 3, dim=2)
        for p in pts:
            seq.insert(p)
        bat = SemiDynamicClusterer(10.0, 3, dim=2)
        ids = bat.insert_many(pts)
        assert all(bat.is_core(pid) for pid in ids)
        assert all(bat.vicinity_count(pid) is None for pid in ids)
