"""Randomized differential harness: a sharded engine is indistinguishable.

In the spirit of workload-fuzzing database testing (query/workload
generation against a differential oracle), this harness feeds seeded
randomized mixed insert/delete/query workloads through a
:class:`repro.api.ShardedEngine` and a plain :class:`repro.api.Engine`
side by side:

* at ``rho = 0`` every primitive is exact and the clustering unique, so
  every C-group-by result along the way — and the final full-clustering
  snapshot — must be **bit-identical** between the two, for shard
  counts {1, 2, 4, 8} (the ``--shards`` pytest option narrows the
  sweep, e.g. for the CI shard matrix), across dims 2/3/5;
* at ``rho > 0`` the two may legally disagree inside the approximation
  band, so the sharded results are checked for canonical ordering and
  the final state against the first-principles pointwise legality rules
  (:func:`repro.validation.legality.check_legality`).

Shard blocks are deliberately tiny (``shard_block=1``: every cell its
own ownership block) so cross-shard boundaries cut straight through
every cluster — the maximally adversarial topology for the boundary
merge.  A process-executor configuration runs the same differential to
cover the transport; block sizes > 1 are covered by the clustered
regime below.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

import repro.api as api
from repro.core.framework import CGroupByResult
from repro.validation.legality import check_legality
from repro.workload.config import eps_for
from repro.workload.workload import Workload, generate_workload

from conftest import clustered_points

DIMS = (2, 3, 5)
RHOS = (0.0, 0.001, 0.1)
N = 220
MINPTS = 10
BATCH = 33

#: Reference replays are pure functions of (algorithm, dim, rho); cache
#: them so the shard-count sweep pays for each single-engine run once.
_reference_cache: Dict[tuple, tuple] = {}


def _workload(dim: int, insert_only: bool) -> Workload:
    return generate_workload(
        N,
        dim,
        insert_fraction=1.0 if insert_only else 0.75,
        query_frequency=22,
        seed=1234 + dim,
    )


def _replay(engine, workload: Workload) -> Tuple[List[CGroupByResult], list]:
    """Drive the batched encoding; returns (query results, final snapshot)."""
    results = []
    pid_of: Dict[int, int] = {}
    for kind, arg in workload.batched(BATCH):
        if kind == "insert_many":
            pids = engine.insert_many([workload.points[i] for i in arg])
            pid_of.update(zip(arg, pids))
        elif kind == "delete_many":
            engine.delete_many([pid_of.pop(i) for i in arg])
        else:
            results.append(engine.cgroup_by_many([pid_of[i] for i in arg]).result)
    snap = engine.snapshot()
    return results, [sorted(map(sorted, snap.clusters)), sorted(snap.noise)]


def _open_single(algorithm: str, dim: int, rho: float):
    return api.open(
        algorithm=algorithm, eps=eps_for(dim), minpts=MINPTS, rho=rho, dim=dim
    )


def _reference(algorithm: str, dim: int, rho: float, workload: Workload):
    key = (algorithm, dim, rho)
    if key not in _reference_cache:
        engine = _open_single(algorithm, dim, rho)
        _reference_cache[key] = _replay(engine, workload) + (engine,)
    return _reference_cache[key]


def _open_sharded(
    algorithm: str,
    dim: int,
    rho: float,
    shard_count: int,
    executor: str = "serial",
    block: int = 1,
    transport: str | None = None,
):
    return api.open(
        algorithm=algorithm,
        eps=eps_for(dim),
        minpts=MINPTS,
        rho=rho,
        dim=dim,
        shards=shard_count,
        shard_block=block,
        shard_executor=executor,
        shard_transport=transport,
    )


def _assert_canonical(result: CGroupByResult) -> None:
    for group in result.groups:
        assert group == sorted(set(group))
    assert result.groups == sorted(result.groups)
    assert result.noise == sorted(set(result.noise))


def _assert_identical_runs(label, got, want) -> None:
    got_queries, got_snap = got
    want_queries, want_snap = want
    assert len(got_queries) == len(want_queries)
    for i, (g, w) in enumerate(zip(got_queries, want_queries)):
        assert g.groups == w.groups, f"{label}: query #{i} groups differ"
        assert g.noise == w.noise, f"{label}: query #{i} noise differs"
    assert got_snap == want_snap, f"{label}: final snapshots differ"


def _assert_legal_final_state(engine, rho: float, relaxed_core: bool) -> None:
    """Pointwise Sections 2/6.2 legality of the sharded final state."""
    router = engine.raw
    coords = {pid: router.point(pid) for pid in router.ids()}
    snap = engine.snapshot()
    core = {pid for pid in coords if engine.is_core(pid)}
    violations = check_legality(
        coords=coords,
        clusters=snap.clusters,
        noise=snap.noise,
        core=core,
        eps=engine.config.eps,
        minpts=engine.config.minpts,
        rho=rho,
        relaxed_core=relaxed_core,
    )
    assert not violations, "\n".join(violations[:10])


@pytest.mark.parametrize("rho", RHOS)
@pytest.mark.parametrize("dim", DIMS)
def test_full_mixed_workload_differential(dim, rho, shard_count):
    """Fully-dynamic mixed workloads: identical at rho=0, legal beyond."""
    workload = _workload(dim, insert_only=False)
    engine = _open_sharded("full", dim, rho, shard_count)
    got = _replay(engine, workload)
    assert got[0], "workload produced no queries"
    for result in got[0]:
        _assert_canonical(result)
    if rho == 0.0:
        want_queries, want_snap, _ = _reference("full", dim, rho, workload)
        _assert_identical_runs(
            f"full d={dim} shards={shard_count}", got, (want_queries, want_snap)
        )
    else:
        _assert_legal_final_state(engine, rho, relaxed_core=True)


@pytest.mark.parametrize("rho", RHOS)
@pytest.mark.parametrize("dim", DIMS)
def test_semi_insert_only_differential(dim, rho, shard_count):
    """Insert-only workloads through the semi-dynamic family."""
    workload = _workload(dim, insert_only=True)
    engine = _open_sharded("semi", dim, rho, shard_count)
    got = _replay(engine, workload)
    assert got[0], "workload produced no queries"
    for result in got[0]:
        _assert_canonical(result)
    if rho == 0.0:
        want_queries, want_snap, _ = _reference("semi", dim, rho, workload)
        _assert_identical_runs(
            f"semi d={dim} shards={shard_count}", got, (want_queries, want_snap)
        )
    else:
        # Semi-dynamic core counts are exact (rho relaxes only edges and
        # memberships), hence the strict core rule.
        _assert_legal_final_state(engine, rho, relaxed_core=False)


@pytest.mark.parametrize("block", (2, 16))
@pytest.mark.parametrize("dim", (2, 3))
def test_clustered_regime_block_sizes(dim, block, shard_count):
    """Dense blobs split across real multi-cell ownership blocks.

    The workload harness above shreds ownership maximally (block=1);
    this regime covers blocks that actually contain several cells, with
    interleaved bulk deletions, at rho=0 where results are unique.
    """
    points = clustered_points(260, dim, seed=dim * 7 + block)
    single = api.open(algorithm="full", eps=2.5, minpts=5, dim=dim)
    sharded = api.open(
        algorithm="full", eps=2.5, minpts=5, dim=dim,
        shards=shard_count, shard_block=block,
    )
    single_pids = single.ingest(points)
    sharded_pids = sharded.ingest(points)
    assert sharded_pids == single_pids
    for eng, pids in ((single, single_pids), (sharded, sharded_pids)):
        eng.delete_many(pids[::4])
    live = [pid for i, pid in enumerate(single_pids) if i % 4]
    rng = random.Random(dim * 100 + block)
    queries = [live, rng.sample(live, 40), rng.sample(live, 80)]
    for q in queries:
        got = sharded.cgroup_by_many(q).result
        want = single.cgroup_by_many(q).result
        assert got.groups == want.groups
        assert got.noise == want.noise
    got_snap, want_snap = sharded.snapshot(), single.snapshot()
    assert sorted(map(sorted, got_snap.clusters)) == sorted(
        map(sorted, want_snap.clusters)
    )
    assert got_snap.noise == want_snap.noise


@pytest.mark.parametrize("tcp_shards", (2, 4))
def test_tcp_executor_differential(tcp_shards):
    """The distributed executor clears the same bar: real shard-worker
    subprocesses behind sockets, merged bit-identically at rho=0."""
    from repro.shard.rpc import local_workers

    workload = _workload(2, insert_only=False)
    with local_workers(tcp_shards) as addresses:
        engine = api.open(
            algorithm="full",
            eps=eps_for(2),
            minpts=MINPTS,
            rho=0.0,
            dim=2,
            shards=tcp_shards,
            shard_block=1,
            shard_executor="tcp",
            shard_workers=addresses,
        )
        try:
            got = _replay(engine, workload)
            want_queries, want_snap, _ = _reference("full", 2, 0.0, workload)
            _assert_identical_runs(
                f"tcp executor shards={tcp_shards}",
                got,
                (want_queries, want_snap),
            )
        finally:
            engine.close()


def test_rebalance_mid_workload_differential(shard_count):
    """An online ownership migration in the middle of a mixed workload
    changes nothing observable: every query before and after the flip,
    and the final snapshot, stay bit-identical to the single engine."""
    if shard_count == 1:
        pytest.skip("rebalancing needs somewhere to move a block")
    workload = _workload(2, insert_only=False)
    engine = _open_sharded("full", 2, 0.0, shard_count)
    reference = _open_single("full", 2, 0.0)
    results, want_results = [], []
    pid_of: Dict[int, int] = {}
    ref_of: Dict[int, int] = {}
    steps = list(workload.batched(BATCH))
    flip_at = len(steps) // 2
    for step, (kind, arg) in enumerate(steps):
        if step == flip_at:
            router = engine.raw
            anchor = next(iter(router.ids()))
            block = router.topology.block_of(
                router._grid.cell_of(router.point(anchor))
            )
            owner = router.topology.owner_of_block(block)
            version = engine.rebalance(block, (owner + 1) % shard_count)
            assert version == engine.ownership_version >= 1
        if kind == "insert_many":
            points = [workload.points[i] for i in arg]
            pid_of.update(zip(arg, engine.insert_many(points)))
            ref_of.update(zip(arg, reference.insert_many(points)))
        elif kind == "delete_many":
            engine.delete_many([pid_of.pop(i) for i in arg])
            reference.delete_many([ref_of.pop(i) for i in arg])
        else:
            results.append(engine.cgroup_by_many([pid_of[i] for i in arg]).result)
            want_results.append(
                reference.cgroup_by_many([ref_of[i] for i in arg]).result
            )
    assert results, "workload produced no queries"
    for got, want in zip(results, want_results):
        assert got.groups == want.groups
        assert got.noise == want.noise
    got_snap, want_snap = engine.snapshot(), reference.snapshot()
    assert sorted(map(sorted, got_snap.clusters)) == sorted(
        map(sorted, want_snap.clusters)
    )
    assert sorted(got_snap.noise) == sorted(want_snap.noise)


@pytest.mark.parametrize("transport", ("pickle", "shm"))
def test_process_executor_differential(transport):
    """Both worker-process transports merge bit-identically too."""
    workload = _workload(2, insert_only=False)
    engine = _open_sharded(
        "full", 2, 0.0, 3, executor="process", transport=transport
    )
    try:
        got = _replay(engine, workload)
        want_queries, want_snap, _ = _reference("full", 2, 0.0, workload)
        _assert_identical_runs(
            f"process executor ({transport})", got, (want_queries, want_snap)
        )
    finally:
        engine.close()


def test_epoch_stamps_track_the_global_dataset_version(shard_count):
    """QueryOutcome/Snapshot epochs count global updates, like Engine."""
    workload = _workload(2, insert_only=False)
    engine = _open_sharded("full", 2, 0.0, shard_count)
    updates = 0
    pid_of: Dict[int, int] = {}
    for kind, arg in workload.batched(BATCH):
        if kind == "insert_many":
            pids = engine.insert_many([workload.points[i] for i in arg])
            pid_of.update(zip(arg, pids))
            updates += len(arg)
        elif kind == "delete_many":
            engine.delete_many([pid_of.pop(i) for i in arg])
            updates += len(arg)
        else:
            outcome = engine.cgroup_by_many([pid_of[i] for i in arg])
            assert outcome.epoch == updates == engine.epoch
            assert outcome.backend == engine.backend
    assert engine.snapshot().epoch == updates
