"""Tests for the cluster-evolution tracker."""

from __future__ import annotations

import pytest

from repro.analysis import ClusterTracker, cluster_stats
from repro.core.framework import Clustering
from repro.core.fullydynamic import FullyDynamicClusterer


def clustering(*clusters, noise=()):
    return Clustering(clusters=[set(c) for c in clusters], noise=set(noise))


class TestDiffEvents:
    def test_first_snapshot_appears(self):
        t = ClusterTracker()
        events = t.observe(clustering({1, 2}, {3, 4}))
        assert sorted(e.kind for e in events) == ["appear", "appear"]

    def test_no_change_no_events(self):
        t = ClusterTracker()
        t.observe(clustering({1, 2}, {3, 4}))
        assert t.observe(clustering({1, 2}, {3, 4})) == []

    def test_grow_and_shrink(self):
        t = ClusterTracker()
        t.observe(clustering({1, 2}, {10, 11, 12}))
        events = t.observe(clustering({1, 2, 3}, {10, 11}))
        kinds = sorted(e.kind for e in events)
        assert kinds == ["grow", "shrink"]

    def test_merge(self):
        t = ClusterTracker()
        t.observe(clustering({1, 2}, {3, 4}))
        events = t.observe(clustering({1, 2, 3, 4, 5}))
        assert [e.kind for e in events] == ["merge"]
        assert len(events[0].before) == 2
        assert len(events[0].after) == 1

    def test_split(self):
        t = ClusterTracker()
        t.observe(clustering({1, 2, 3, 4}))
        events = t.observe(clustering({1, 2}, {3, 4}))
        assert [e.kind for e in events] == ["split"]

    def test_vanish_and_appear(self):
        t = ClusterTracker()
        t.observe(clustering({1, 2}))
        events = t.observe(clustering({8, 9}))
        kinds = sorted(e.kind for e in events)
        assert kinds == ["appear", "vanish"]

    def test_replaced_membership_same_size(self):
        t = ClusterTracker()
        t.observe(clustering({1, 2, 3}))
        events = t.observe(clustering({1, 2, 9}))
        assert [e.kind for e in events] == ["grow"]  # same size, new members

    def test_event_str(self):
        t = ClusterTracker()
        t.observe(clustering({1, 2}, {3, 4}))
        (event,) = t.observe(clustering({1, 2, 3, 4}))
        assert "merge" in str(event)


class TestWithClusterer:
    def test_bridge_merge_and_split_events(self):
        algo = FullyDynamicClusterer(1.0, 2, rho=0.0, dim=1)
        tracker = ClusterTracker()
        left = [algo.insert((float(i),)) for i in range(3)]
        right = [algo.insert((float(i) + 6.0,)) for i in range(3)]
        events = tracker.observe(algo.clusters())
        assert sorted(e.kind for e in events) == ["appear", "appear"]

        bridge = [algo.insert((3.0,)), algo.insert((4.0,)), algo.insert((5.0,))]
        events = tracker.observe(algo.clusters())
        assert "merge" in {e.kind for e in events}

        for pid in bridge:
            algo.delete(pid)
        events = tracker.observe(algo.clusters())
        assert "split" in {e.kind for e in events}


class TestStats:
    def test_stats_of_empty(self):
        stats = cluster_stats(clustering())
        assert stats.cluster_count == 0
        assert stats.largest == 0
        assert stats.clustered_points == 0

    def test_stats_sizes_sorted(self):
        stats = cluster_stats(clustering({1}, {2, 3, 4}, {5, 6}, noise=(9,)))
        assert stats.sizes == [3, 2, 1]
        assert stats.largest == 3
        assert stats.noise_count == 1
        assert stats.clustered_points == 6
