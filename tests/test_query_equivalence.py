"""Batch-vs-sequential equivalence harness for the C-group-by engine.

``cgroup_by_many`` must produce results equivalent to per-point
resolution (``cgroup_by_sequential``):

* with ``rho = 0`` every emptiness decision is exact, so the batched
  result (groups and noise, in the shared canonical ordering) must be
  *identical* to the sequential path on every configuration;
* with ``rho > 0`` each path may legally answer differently inside the
  approximation band, so the batched result is validated against
  first-principles membership bounds: every component holding a core
  point within ``eps`` of a queried point must be reported for it, and
  no component farther than ``(1+rho) * eps`` may be.

The harness sweeps dims 2/3/5, rho in {0, 0.001, 0.1}, core-heavy /
mixed / noise-heavy regimes, random subset queries, and queries
interleaved with bulk updates through both dynamic clusterers.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

import pytest

import repro.core.framework as framework
from repro.core.framework import CGroupByResult, canonical_cgroup_result
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.geometry.points import sq_dist
from repro.workload.workload import generate_workload

from conftest import clustered_points, random_points

Point = Tuple[float, ...]

DIMS = (2, 3, 5)
RHOS = (0.0, 0.001, 0.1)
REGIMES = ("dense", "mixed", "sparse")


@pytest.fixture(autouse=True)
def force_batch_engine(monkeypatch):
    """Exercise the vectorized engine even on small queries.

    ``cgroup_by_many`` routes queries at or below the cutoff through the
    scalar path (they would trivially compare equal to themselves); the
    harness zeroes the cutoff so every comparison below genuinely pits
    the batch engine against per-point resolution.  The cutoff's own
    routing behavior is covered by ``test_small_query_cutoff_routing``.
    """
    monkeypatch.setattr(framework, "_SEQUENTIAL_QUERY_CUTOFF", 0)


def _points_for(regime: str, n: int, dim: int, seed: int) -> List[Point]:
    if regime == "dense":
        # Everything crowds into a handful of cells: almost all core.
        return random_points(n, dim, extent=3.0, seed=seed)
    if regime == "mixed":
        # Blobs of varied density plus outliers: core, border and noise.
        return clustered_points(n, dim, seed=seed)
    # Spread thin: mostly noise, plenty of empty neighbor probes.
    return random_points(n, dim, extent=400.0, seed=seed)


def _assert_identical(batch: CGroupByResult, seq: CGroupByResult) -> None:
    assert batch.groups == seq.groups
    assert batch.noise == seq.noise


def _assert_canonical(result: CGroupByResult) -> None:
    """The deterministic-ordering contract of every clusterer result."""
    for group in result.groups:
        assert group == sorted(set(group))
    assert result.groups == sorted(result.groups)
    assert result.noise == sorted(set(result.noise))


def _membership_bounds(algo, pid: int):
    """First-principles (must, may) component sets for one queried point.

    ``must`` holds the CC ids of close core cells with a core point
    within ``eps`` (memberships every legal answer reports); ``may``
    additionally allows anything within ``(1+rho) * eps`` (the don't-care
    band of the emptiness contract).
    """
    pt = algo.point(pid)
    cell = algo._grid.cell_of(pt)
    data = algo._cells[cell]
    if pid in data.core:
        cid = algo._cc_id(cell)
        return {cid}, {cid}
    must: Set = set()
    may: Set = set()
    if data.core:
        # Same-cell core points are within eps by the cell diameter.
        cid = algo._cc_id(cell)
        must.add(cid)
        may.add(cid)
    for other in data.neighbors:
        odata = algo._cells[other]
        if not odata.core:
            continue
        dmin = min(sq_dist(algo.point(c), pt) for c in odata.core)
        cid = algo._cc_id(other)
        if dmin <= algo._sq_eps:
            must.add(cid)
            may.add(cid)
        elif dmin <= algo._sq_relaxed:
            may.add(cid)
    return must, may


def _assert_sandwich_legal_full_query(algo) -> None:
    """Validate a Q = P batched query against the membership bounds."""
    result = algo.cgroup_by_many(list(algo.ids()))
    _assert_canonical(result)
    reported: Dict[int, Set] = {pid: set() for pid in algo.ids()}
    for group in result.groups:
        core_members = [pid for pid in group if algo.is_core(pid)]
        assert core_members, "every reported cluster must hold a core point"
        cids = {
            algo._cc_id(algo._grid.cell_of(algo.point(pid)))
            for pid in core_members
        }
        assert len(cids) == 1, "a group must map to exactly one component"
        cid = cids.pop()
        for pid in group:
            reported[pid].add(cid)
    for pid in result.noise:
        assert not reported[pid]
    for pid in algo.ids():
        must, may = _membership_bounds(algo, pid)
        assert must <= reported[pid] <= may, (
            f"pid {pid}: reported {reported[pid]} outside [{must}, {may}]"
        )


class TestExactIdentical:
    """rho = 0: the batched engine must equal per-point resolution."""

    @pytest.mark.parametrize("dim", DIMS)
    @pytest.mark.parametrize("regime", REGIMES)
    def test_semi_full_and_subset_queries(self, dim, regime):
        points = _points_for(regime, 240, dim, seed=dim * 11 + len(regime))
        algo = SemiDynamicClusterer(2.0, 5, rho=0.0, dim=dim)
        ids = algo.insert_many(points)
        _assert_identical(
            algo.cgroup_by_many(ids), algo.cgroup_by_sequential(ids)
        )
        rng = random.Random(dim)
        for _ in range(6):
            q = rng.sample(ids, 25)
            _assert_identical(
                algo.cgroup_by_many(q), algo.cgroup_by_sequential(q)
            )

    @pytest.mark.parametrize("dim", DIMS)
    @pytest.mark.parametrize("regime", REGIMES)
    def test_full_after_bulk_churn(self, dim, regime):
        points = _points_for(regime, 220, dim, seed=dim * 17 + len(regime))
        algo = FullyDynamicClusterer(2.0, 4, rho=0.0, dim=dim)
        ids = algo.insert_many(points)
        algo.delete_many(ids[::3])
        live = list(algo.ids())
        _assert_identical(
            algo.cgroup_by_many(live), algo.cgroup_by_sequential(live)
        )
        rng = random.Random(dim + 99)
        for _ in range(6):
            q = rng.sample(live, 20)
            _assert_identical(
                algo.cgroup_by_many(q), algo.cgroup_by_sequential(q)
            )

    @pytest.mark.parametrize("seed", (0, 1))
    def test_queries_interleaved_with_bulk_updates(self, seed):
        """Every query barrier of a batched workload answers identically."""
        workload = generate_workload(
            260, 2, insert_fraction=0.75, query_frequency=20, seed=seed
        )
        algo = FullyDynamicClusterer(150.0, 5, rho=0.0, dim=2)
        pid_of: Dict[int, int] = {}
        compared = 0
        for kind, arg in workload.batched(25):
            if kind == "insert_many":
                pids = algo.insert_many([workload.points[i] for i in arg])
                pid_of.update(zip(arg, pids))
            elif kind == "delete_many":
                algo.delete_many([pid_of.pop(i) for i in arg])
            else:
                q = [pid_of[i] for i in arg]
                _assert_identical(
                    algo.cgroup_by_many(q), algo.cgroup_by_sequential(q)
                )
                compared += 1
        assert compared > 0

    def test_small_query_cutoff_routing(self, monkeypatch):
        """At the default cutoff, small queries take the scalar path and
        large ones the engine — with identical canonical results."""
        monkeypatch.setattr(framework, "_SEQUENTIAL_QUERY_CUTOFF", 128)
        points = _points_for("mixed", 300, 2, seed=31)
        algo = SemiDynamicClusterer(2.0, 5, rho=0.0, dim=2)
        ids = algo.insert_many(points)
        calls = []
        original = algo.__class__.cgroup_by_sequential

        def spy(self, pids):
            calls.append(len(list(pids)))
            return original(self, pids)

        monkeypatch.setattr(algo.__class__, "cgroup_by_sequential", spy)
        small = algo.cgroup_by_many(ids[:50])
        assert calls == [50]  # routed through the scalar path
        calls.clear()
        large = algo.cgroup_by_many(ids)
        assert calls == []  # stayed on the engine
        monkeypatch.setattr(algo.__class__, "cgroup_by_sequential", original)
        _assert_identical(small, algo.cgroup_by_sequential(ids[:50]))
        _assert_identical(large, algo.cgroup_by_sequential(ids))

    def test_cgroup_by_routes_through_batch_engine(self):
        """The public entry points agree with both resolution paths."""
        points = _points_for("mixed", 150, 2, seed=3)
        algo = SemiDynamicClusterer(2.0, 5, rho=0.0, dim=2)
        ids = algo.insert_many(points)
        result = algo.cgroup_by(ids)
        _assert_identical(result, algo.cgroup_by_many(ids))
        clustering = algo.clusters()
        assert [sorted(c) for c in clustering.clusters] == result.groups
        assert sorted(clustering.noise) == result.noise


class TestApproximateLegal:
    """rho > 0: batched answers must stay inside the sandwich band."""

    @pytest.mark.parametrize("dim", DIMS)
    @pytest.mark.parametrize("rho", RHOS[1:])
    def test_semi_full_query_legal(self, dim, rho):
        points = _points_for("mixed", 200, dim, seed=dim + int(rho * 1000))
        algo = SemiDynamicClusterer(2.5, 4, rho=rho, dim=dim)
        algo.insert_many(points)
        _assert_sandwich_legal_full_query(algo)

    @pytest.mark.parametrize("rho", RHOS[1:])
    @pytest.mark.parametrize("regime", REGIMES)
    def test_full_churned_query_legal(self, rho, regime):
        points = _points_for(regime, 180, 3, seed=int(rho * 10_000) + len(regime))
        algo = FullyDynamicClusterer(2.5, 4, rho=rho, dim=3)
        ids = algo.insert_many(points)
        algo.delete_many(ids[::4])
        _assert_sandwich_legal_full_query(algo)


class TestQueryValidation:
    """Dead pids must fail the whole query before any group is built."""

    def test_dead_pid_rejected_up_front(self):
        algo = FullyDynamicClusterer(1.0, 2, dim=2)
        pids = algo.insert_many([(0.0, 0.0), (0.1, 0.1), (5.0, 5.0)])
        algo.delete(pids[1])
        for query in ([pids[0], pids[1]], [pids[1], pids[0]], [999]):
            with pytest.raises(KeyError, match="not live"):
                algo.cgroup_by(query)
            with pytest.raises(KeyError, match="not live"):
                algo.cgroup_by_sequential(query)

    def test_error_lists_every_dead_pid(self):
        algo = SemiDynamicClusterer(1.0, 2, dim=2)
        pid = algo.insert((0.0, 0.0))
        with pytest.raises(KeyError, match=r"777.*888|888.*777"):
            algo.cgroup_by([pid, 888, 777])

    def test_empty_query(self):
        algo = SemiDynamicClusterer(1.0, 2, dim=2)
        algo.insert((0.0, 0.0))
        result = algo.cgroup_by_many([])
        assert result.groups == [] and result.noise == []


class TestDeterministicOrdering:
    """The canonical-result satellite: stable, iteration-order-free."""

    def test_canonical_helper(self):
        result = canonical_cgroup_result(
            [[9, 3, 3], [], [5, 2], [4]], noise=[8, 1, 8]
        )
        assert result.groups == [[2, 5], [3, 9], [4]]
        assert result.noise == [1, 8]

    def test_engine_results_are_canonical(self):
        points = _points_for("mixed", 200, 2, seed=13)
        algo = SemiDynamicClusterer(2.0, 5, rho=0.001, dim=2)
        ids = algo.insert_many(points)
        rng = random.Random(5)
        shuffled = ids[:]
        rng.shuffle(shuffled)
        _assert_canonical(algo.cgroup_by_many(shuffled))
        _assert_canonical(algo.cgroup_by_sequential(shuffled))
        # Query order must not affect the result at all.
        _assert_identical(
            algo.cgroup_by_many(shuffled), algo.cgroup_by_many(ids)
        )

    def test_duplicate_query_ids_deduplicated(self):
        algo = SemiDynamicClusterer(1.0, 1, dim=1)
        a = algo.insert((0.0,))
        b = algo.insert((10.0,))
        result = algo.cgroup_by_many([a, a, b, b, a])
        assert result.groups == [[a], [b]]

    def test_baseline_results_are_canonical(self):
        from repro.baselines.incdbscan import IncDBSCAN
        from repro.baselines.naive_dynamic import RecomputeClusterer

        points = _points_for("mixed", 120, 2, seed=7)
        for algo in (IncDBSCAN(2.0, 5, dim=2), RecomputeClusterer(2.0, 5, dim=2)):
            ids = [algo.insert(p) for p in points]
            result = algo.cgroup_by(ids)
            _assert_canonical(result)
            # The SequentialQueryMixin fallback answers identically.
            fallback = algo.cgroup_by_many(ids)
            _assert_identical(fallback, result)
            with pytest.raises(KeyError, match="not live"):
                algo.cgroup_by([ids[0], 10_000])
