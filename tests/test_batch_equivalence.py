"""Batch-vs-sequential equivalence harness for the bulk-update engine.

``insert_many`` / ``delete_many`` must produce cluster groupings
equivalent to the sequential path:

* with ``rho = 0`` every structure involved is exact, so the batch
  clustering (clusters, noise, core status, vicinity counts) must be
  *identical* to sequential processing;
* with ``rho > 0`` the two paths may legally diverge inside the
  approximation band, so both must independently satisfy the sandwich
  guarantee (:mod:`repro.validation.sandwich`).

The harness sweeps dims 2/3/5, rho in {0, 0.001, 0.1}, dense-cell and
sparse regimes, several batch sizes, and interleaved insert / delete /
query workloads.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.validation.sandwich import check_sandwich
from repro.workload.workload import batch_ops, generate_workload

from conftest import clustered_points, random_points

Point = Tuple[float, ...]

DIMS = (2, 3, 5)
RHOS = (0.0, 0.001, 0.1)
BATCH_SIZES = (1, 7, 64, 10_000)

#: (regime name, eps) — point generators live in `_points_for`.
REGIMES = ("dense", "mixed", "sparse")


def _points_for(regime: str, n: int, dim: int, seed: int) -> List[Point]:
    if regime == "dense":
        # Everything crowds into a handful of cells: exercises the
        # dense-cell short-circuit (cells holding >= MinPts points).
        return random_points(n, dim, extent=3.0, seed=seed)
    if regime == "mixed":
        # Blobs of varied density plus outliers.
        return clustered_points(n, dim, seed=seed)
    # Spread thin: mostly noise, no dense cells.
    return random_points(n, dim, extent=400.0, seed=seed)


def _canonical(clusterer) -> Tuple[frozenset, frozenset]:
    clustering = clusterer.clusters()
    return (
        frozenset(frozenset(c) for c in clustering.clusters),
        frozenset(clustering.noise),
    )


def _query_canonical(result) -> Tuple[frozenset, frozenset]:
    return (
        frozenset(frozenset(g) for g in result.groups),
        frozenset(result.noise),
    )


def _assert_both_sandwich(seq, bat, eps: float, minpts: int, rho: float) -> None:
    for label, clusterer in (("sequential", seq), ("batched", bat)):
        coords = {pid: clusterer.point(pid) for pid in clusterer.ids()}
        clusters = clusterer.clusters().clusters
        violations = check_sandwich(coords, clusters, eps, minpts, rho)
        assert not violations, f"{label} path violates sandwich: {violations}"


class TestSemiInsertMany:
    @pytest.mark.parametrize("dim", DIMS)
    @pytest.mark.parametrize("regime", REGIMES)
    @pytest.mark.parametrize("batch_size", (7, 10_000))
    def test_exact_identical_to_sequential(self, dim, regime, batch_size):
        """rho = 0: batch state must equal sequential state exactly."""
        points = _points_for(regime, 240, dim, seed=dim * 7 + len(regime))
        eps, minpts = 2.0, 5
        seq = SemiDynamicClusterer(eps, minpts, rho=0.0, dim=dim)
        seq_ids = [seq.insert(p) for p in points]
        bat = SemiDynamicClusterer(eps, minpts, rho=0.0, dim=dim)
        bat_ids: List[int] = []
        for start in range(0, len(points), batch_size):
            bat_ids.extend(bat.insert_many(points[start : start + batch_size]))
        assert seq_ids == bat_ids
        assert _canonical(seq) == _canonical(bat)
        for pid in seq_ids:
            assert seq.is_core(pid) == bat.is_core(pid)
            assert seq.vicinity_count(pid) == bat.vicinity_count(pid)

    @pytest.mark.parametrize("dim", DIMS)
    @pytest.mark.parametrize("rho", RHOS[1:])
    def test_approximate_sandwich_legal(self, dim, rho):
        """rho > 0: both paths must satisfy the sandwich guarantee."""
        points = _points_for("mixed", 160, dim, seed=dim + int(rho * 1000))
        eps, minpts = 2.5, 4
        seq = SemiDynamicClusterer(eps, minpts, rho=rho, dim=dim)
        for p in points:
            seq.insert(p)
        bat = SemiDynamicClusterer(eps, minpts, rho=rho, dim=dim)
        bat.insert_many(points)
        _assert_both_sandwich(seq, bat, eps, minpts, rho)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_batch_size_invariance_exact(self, batch_size):
        """Any chunking of the same stream yields the same clustering."""
        points = _points_for("mixed", 300, 2, seed=99)
        eps, minpts = 2.0, 5
        ref = SemiDynamicClusterer(eps, minpts, rho=0.0, dim=2)
        ref.insert_many(points)
        bat = SemiDynamicClusterer(eps, minpts, rho=0.0, dim=2)
        for start in range(0, len(points), batch_size):
            bat.insert_many(points[start : start + batch_size])
        assert _canonical(ref) == _canonical(bat)

    def test_batch_interleaved_with_sequential_inserts(self):
        """Mixing insert and insert_many on one instance stays exact."""
        points = _points_for("mixed", 200, 3, seed=4)
        eps, minpts = 2.0, 4
        seq = SemiDynamicClusterer(eps, minpts, rho=0.0, dim=3)
        for p in points:
            seq.insert(p)
        mix = SemiDynamicClusterer(eps, minpts, rho=0.0, dim=3)
        for p in points[:50]:
            mix.insert(p)
        mix.insert_many(points[50:150])
        for p in points[150:170]:
            mix.insert(p)
        mix.insert_many(points[170:])
        assert _canonical(seq) == _canonical(mix)

    def test_empty_and_singleton_batches(self):
        algo = SemiDynamicClusterer(1.0, 3, dim=2)
        assert algo.insert_many([]) == []
        assert algo.insert_many([(0.0, 0.0)]) == [0]
        assert len(algo) == 1

    def test_dimension_mismatch_rejected(self):
        algo = SemiDynamicClusterer(1.0, 3, dim=2)
        with pytest.raises(ValueError):
            algo.insert_many([(0.0, 0.0, 0.0)])
        with pytest.raises(ValueError):
            algo.insert_many([(0.0, 0.0), (1.0,)])


class TestFullyDynamicBulk:
    @pytest.mark.parametrize("dim", DIMS)
    @pytest.mark.parametrize("regime", REGIMES)
    def test_insert_delete_many_exact(self, dim, regime):
        """rho = 0: bulk insert + bulk delete equals sequential exactly."""
        rng = random.Random(dim * 31 + len(regime))
        points = _points_for(regime, 200, dim, seed=dim * 13)
        eps, minpts = 2.0, 4
        seq = FullyDynamicClusterer(eps, minpts, rho=0.0, dim=dim)
        seq_ids = [seq.insert(p) for p in points]
        bat = FullyDynamicClusterer(eps, minpts, rho=0.0, dim=dim)
        bat_ids = bat.insert_many(points)
        assert seq_ids == bat_ids
        assert _canonical(seq) == _canonical(bat)

        doomed = rng.sample(seq_ids, len(seq_ids) // 3)
        for pid in doomed:
            seq.delete(pid)
        bat.delete_many(doomed)
        assert _canonical(seq) == _canonical(bat)
        for pid in seq.ids():
            assert seq.is_core(pid) == bat.is_core(pid)

    @pytest.mark.parametrize("rho", RHOS[1:])
    def test_insert_delete_many_sandwich_legal(self, rho):
        points = _points_for("mixed", 150, 2, seed=int(rho * 10_000))
        eps, minpts = 2.5, 4
        seq = FullyDynamicClusterer(eps, minpts, rho=rho, dim=2)
        seq_ids = [seq.insert(p) for p in points]
        bat = FullyDynamicClusterer(eps, minpts, rho=rho, dim=2)
        bat.insert_many(points)
        doomed = seq_ids[::4]
        for pid in doomed:
            seq.delete(pid)
        bat.delete_many(doomed)
        _assert_both_sandwich(seq, bat, eps, minpts, rho)

    def test_delete_many_empties_cells_and_registry(self):
        algo = FullyDynamicClusterer(1.0, 2, dim=2)
        pids = algo.insert_many([(0.1, 0.1), (0.2, 0.2), (5.0, 5.0)])
        algo.delete_many(pids)
        assert len(algo) == 0
        assert algo.cell_count == 0

    def test_delete_many_validates_ids(self):
        algo = FullyDynamicClusterer(1.0, 2, dim=2)
        pids = algo.insert_many([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(KeyError):
            algo.delete_many([pids[0], 999])
        with pytest.raises(ValueError):
            algo.delete_many([pids[0], pids[0]])
        # Failed validation must not have mutated anything.
        assert len(algo) == 2

    def test_delete_many_then_reinsert(self):
        """State stays consistent across bulk delete / bulk re-insert."""
        points = _points_for("mixed", 120, 2, seed=21)
        eps, minpts = 2.0, 4
        seq = FullyDynamicClusterer(eps, minpts, rho=0.0, dim=2)
        bat = FullyDynamicClusterer(eps, minpts, rho=0.0, dim=2)
        seq_ids = [seq.insert(p) for p in points]
        bat_ids = bat.insert_many(points)
        victims = seq_ids[10:70]
        for pid in victims:
            seq.delete(pid)
        bat.delete_many(victims)
        revived = [points[seq_ids.index(pid)] for pid in victims]
        seq_new = [seq.insert(p) for p in revived]
        bat_new = bat.insert_many(revived)
        assert seq_new == bat_new
        assert _canonical(seq) == _canonical(bat)


class TestInterleavedWorkloads:
    """Full interleaved insert/delete/query streams through both encodings."""

    def _apply_sequential(self, clusterer, workload):
        pid_of: Dict[int, int] = {}
        answers = []
        for kind, arg in workload.ops:
            if kind == "insert":
                pid_of[arg] = clusterer.insert(workload.points[arg])
            elif kind == "delete":
                clusterer.delete(pid_of.pop(arg))
            else:
                result = clusterer.cgroup_by([pid_of[i] for i in arg])
                answers.append(_query_canonical(result))
        return answers

    def _apply_batched(self, clusterer, workload, batch_size):
        pid_of: Dict[int, int] = {}
        answers = []
        for kind, arg in workload.batched(batch_size):
            if kind == "insert_many":
                pids = clusterer.insert_many([workload.points[i] for i in arg])
                pid_of.update(zip(arg, pids))
            elif kind == "delete_many":
                clusterer.delete_many([pid_of.pop(i) for i in arg])
            else:
                result = clusterer.cgroup_by([pid_of[i] for i in arg])
                answers.append(_query_canonical(result))
        return answers

    @pytest.mark.parametrize("batch_size", (3, 25, 10_000))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_exact_queries_identical(self, batch_size, seed):
        """rho = 0: every interleaved query answers identically."""
        workload = generate_workload(
            260, 2, insert_fraction=0.75, query_frequency=20, seed=seed
        )
        eps, minpts = 150.0, 5
        seq = FullyDynamicClusterer(eps, minpts, rho=0.0, dim=2)
        bat = FullyDynamicClusterer(eps, minpts, rho=0.0, dim=2)
        seq_answers = self._apply_sequential(seq, workload)
        bat_answers = self._apply_batched(bat, workload, batch_size)
        assert seq_answers == bat_answers
        assert _canonical(seq) == _canonical(bat)

    @pytest.mark.parametrize("rho", (0.001, 0.1))
    def test_approximate_final_state_sandwich(self, rho):
        workload = generate_workload(
            200, 3, insert_fraction=0.8, query_frequency=25, seed=5
        )
        eps, minpts = 200.0, 4
        seq = FullyDynamicClusterer(eps, minpts, rho=rho, dim=3)
        bat = FullyDynamicClusterer(eps, minpts, rho=rho, dim=3)
        self._apply_sequential(seq, workload)
        self._apply_batched(bat, workload, 25)
        _assert_both_sandwich(seq, bat, eps, minpts, rho)

    def test_batched_encoding_preserves_update_multiset(self):
        """Between any two queries both encodings apply the same updates."""
        workload = generate_workload(
            300, 2, insert_fraction=0.7, query_frequency=15, seed=8
        )
        sequential_segments = []
        segment: List[Tuple[str, int]] = []
        for kind, arg in workload.ops:
            if kind == "query":
                sequential_segments.append(sorted(segment))
                segment = []
            else:
                segment.append((kind, arg))
        sequential_segments.append(sorted(segment))

        batched_segments = []
        segment = []
        for kind, arg in batch_ops(workload.ops, 13):
            if kind == "query":
                batched_segments.append(sorted(segment))
                segment = []
            else:
                single = kind[: -len("_many")]
                segment.extend((single, idx) for idx in arg)
        batched_segments.append(sorted(segment))
        assert sequential_segments == batched_segments


class TestBatchInputValidation:
    """insert_many must reject poison inputs up front, before any state
    mutation — a NaN reaching the cell grid would corrupt the registry."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_rejected_without_mutation(self, bad):
        for cls in (SemiDynamicClusterer, FullyDynamicClusterer):
            algo = cls(1.0, 3, dim=2)
            with pytest.raises(ValueError, match="non-finite"):
                algo.insert_many([(0.0, 0.0), (bad, 1.0)])
            assert len(algo) == 0
            assert algo.cell_count == 0
