"""Tests for the recompute-on-query baseline."""

from __future__ import annotations

import random

import pytest

from repro.baselines.naive_dynamic import RecomputeClusterer
from repro.baselines.static_dbscan import dbscan_brute
from repro.core.fullydynamic import FullyDynamicClusterer

from conftest import assert_matches_static, clustered_points


class TestBasics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RecomputeClusterer(0.0, 3)
        with pytest.raises(ValueError):
            RecomputeClusterer(1.0, 0)

    def test_dimension_check(self):
        algo = RecomputeClusterer(1.0, 3, dim=2)
        with pytest.raises(ValueError):
            algo.insert((1.0,))

    def test_roundtrip(self):
        algo = RecomputeClusterer(1.0, 2, dim=1)
        a = algo.insert((0.0,))
        b = algo.insert((0.5,))
        assert algo.same_cluster(a, b)
        algo.delete(b)
        assert len(algo) == 1
        assert algo.cgroup_by([a]).noise == [a]

    def test_unknown_pid_raises(self):
        algo = RecomputeClusterer(1.0, 2)
        with pytest.raises(KeyError):
            algo.cgroup_by([99])

    def test_cache_invalidation_counts(self):
        algo = RecomputeClusterer(1.0, 2, dim=1)
        ids = [algo.insert((float(i),)) for i in range(5)]
        algo.clusters()
        algo.clusters()  # cached: no recompute
        assert algo.recomputations == 1
        algo.delete(ids[0])
        algo.clusters()
        assert algo.recomputations == 2

    def test_is_core(self):
        algo = RecomputeClusterer(1.0, 3, dim=1)
        ids = [algo.insert((0.1 * i,)) for i in range(3)]
        assert all(algo.is_core(pid) for pid in ids)


class TestEquivalence:
    def test_matches_brute_after_churn(self):
        rng = random.Random(1)
        pts = clustered_points(90, 2, seed=1)
        algo = RecomputeClusterer(2.0, 4, dim=2)
        live = {}
        for i, p in enumerate(pts):
            live[algo.insert(p)] = p
            if i % 3 == 2:
                victim = rng.choice(sorted(live))
                algo.delete(victim)
                del live[victim]
        keys = sorted(live)
        idmap = {pid: i for i, pid in enumerate(keys)}
        ref = dbscan_brute([live[k] for k in keys], 2.0, 4)
        assert_matches_static(algo.clusters(), idmap, ref)

    def test_agrees_with_fully_dynamic_exact(self):
        rng = random.Random(2)
        pts = clustered_points(80, 2, seed=2)
        naive = RecomputeClusterer(2.0, 4, dim=2)
        fast = FullyDynamicClusterer(2.0, 4, rho=0.0, dim=2)
        naive_live, fast_live = {}, {}
        for i, p in enumerate(pts):
            naive_live[naive.insert(p)] = i
            fast_live[fast.insert(p)] = i
            if i % 4 == 3:
                idx = rng.choice(sorted(naive_live.values()))
                npid = next(k for k, v in naive_live.items() if v == idx)
                fpid = next(k for k, v in fast_live.items() if v == idx)
                naive.delete(npid)
                fast.delete(fpid)
                del naive_live[npid]
                del fast_live[fpid]
        canon_naive = frozenset(
            frozenset(naive_live[p] for p in c) for c in naive.clusters().clusters
        )
        canon_fast = frozenset(
            frozenset(fast_live[p] for p in c) for c in fast.clusters().clusters
        )
        assert canon_naive == canon_fast
