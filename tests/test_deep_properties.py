"""Deeper property tests across substrates.

Targets the internals that the main property suites exercise only
indirectly: ETT tour ordering, HDT vertex lifecycle under churn, fuzzy
count stop_at semantics, and the legality checker's don't-care band.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.connectivity.euler_tour import EulerTourForest, _position
from repro.connectivity.hdt import HDTConnectivity
from repro.connectivity.naive import NaiveConnectivity
from repro.geometry.kdtree import DynamicKDTree
from repro.validation import check_legality


class TestEttPositions:
    def test_positions_are_distinct_and_ordered(self):
        rng = random.Random(3)
        f = EulerTourForest(seed=3)
        for i in range(20):
            f.ensure_vertex(i)
        edges = []
        for i in range(1, 20):
            j = rng.randrange(i)
            f.link(j, i)
            edges.append((j, i))
        root = f.find_root(0)
        nodes = []
        stack = [root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        positions = sorted(_position(n) for n in nodes)
        assert positions == list(range(len(nodes)))

    def test_arc_pair_brackets_subtree(self):
        """Between arc(u,v) and arc(v,u) lies exactly v's subtree tour."""
        f = EulerTourForest(seed=4)
        # Path 0 - 1 - 2 - 3 rooted anywhere.
        for i in range(3):
            f.link(i, i + 1)
        a_uv = f._arcs[(1, 2)]
        a_vu = f._arcs[(2, 1)]
        lo, hi = sorted((_position(a_uv), _position(a_vu)))
        inside = set()
        root = f.find_root(0)
        stack = [root]
        while stack:
            node = stack.pop()
            if node.vertex is not None and lo < _position(node) < hi:
                inside.add(node.vertex)
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        # The side containing vertex 2 (and possibly 3) must be bracketed.
        assert inside in ({2, 3}, {0, 1})  # depends on current tour root


class TestHdtVertexChurn:
    def test_vertices_added_and_removed_during_edge_churn(self):
        rng = random.Random(6)
        h = HDTConnectivity(seed=6)
        naive = NaiveConnectivity()
        alive = set()
        edges = set()
        next_v = 0
        for step in range(1500):
            action = rng.random()
            if action < 0.25 or len(alive) < 2:
                h.add_vertex(next_v)
                naive.add_vertex(next_v)
                alive.add(next_v)
                next_v += 1
            elif action < 0.45 and alive:
                # remove an isolated vertex if one exists
                isolated = [
                    v for v in alive
                    if not any(v in e for e in edges)
                ]
                if isolated:
                    v = rng.choice(isolated)
                    h.remove_vertex(v)
                    naive.remove_vertex(v)
                    alive.discard(v)
            elif action < 0.75:
                u, v = rng.sample(sorted(alive), 2)
                e = (min(u, v), max(u, v))
                if e not in edges:
                    edges.add(e)
                    h.insert_edge(*e)
                    naive.insert_edge(*e)
            elif edges:
                e = rng.choice(sorted(edges))
                edges.discard(e)
                h.delete_edge(*e)
                naive.delete_edge(*e)
            if step % 100 == 0 and len(alive) >= 2:
                for _ in range(8):
                    a, b = rng.sample(sorted(alive), 2)
                    assert h.connected(a, b) == naive.connected(a, b)

    def test_component_sizes_after_churn(self):
        rng = random.Random(7)
        h = HDTConnectivity(seed=7)
        n = 20
        for v in range(n):
            h.add_vertex(v)
        edges = set()
        for _ in range(400):
            if edges and rng.random() < 0.5:
                e = rng.choice(sorted(edges))
                edges.discard(e)
                h.delete_edge(*e)
            else:
                u, v = rng.sample(range(n), 2)
                e = (min(u, v), max(u, v))
                if e not in edges:
                    edges.add(e)
                    h.insert_edge(*e)
        for v in range(n):
            members = h.component_vertices(v)
            assert h.component_size(v) == len(members)
            assert v in members
            for w in members:
                assert h.connected(v, w)


class TestFuzzyCountStopAt:
    @given(
        st.lists(st.floats(0, 3), min_size=0, max_size=60),
        st.integers(1, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_stop_at_never_underreports_threshold(self, xs, threshold):
        """count(stop_at=m) >= m iff the true count >= m (rho = 0)."""
        tree = DynamicKDTree(1)
        for pid, x in enumerate(xs):
            tree.insert(pid, (x,))
        true_count = sum(1 for x in xs if x <= 1.0)
        counted = tree.count_fuzzy((0.0,), 1.0, 1.0, stop_at=threshold)
        assert (counted >= threshold) == (true_count >= threshold)

    def test_stop_at_none_gives_full_count(self):
        tree = DynamicKDTree(1)
        for pid in range(50):
            tree.insert(pid, (0.01 * pid,))
        assert tree.count_fuzzy((0.0,), 1.0, 1.0) == 50


class TestLegalityDontCareBand:
    def test_band_point_accepted_as_core_and_noncore(self):
        """|B(p,eps)| < MinPts <= |B(p,(1+rho)eps)|: both flags legal."""
        coords = {0: (0.0,), 1: (1.0,), 2: (1.3,)}
        eps, minpts, rho = 1.0, 3, 0.5
        # Point 0 has tight count 2, loose count 3 -> don't care.
        for zero_is_core in (True, False):
            if zero_is_core:
                core = {0, 1, 2}
                clusters = [{0, 1, 2}]
                noise = set()
            else:
                # With 0 non-core, 1 and 2 remain core? tight counts:
                # |B(1, 1)| = {0,1,2} = 3 -> 1 is definitely core;
                # |B(2, 1)| = {1,2} = 2, loose adds 0 -> don't care; pick core.
                core = {1, 2}
                clusters = [{0, 1, 2}]
                noise = set()
            violations = check_legality(
                coords, clusters, noise, core, eps, minpts, rho,
                relaxed_core=True,
            )
            assert violations == [], (zero_is_core, violations)

    def test_outside_band_rejected(self):
        coords = {0: (0.0,), 1: (10.0,), 2: (20.0,)}
        violations = check_legality(
            coords, [{0, 1, 2}], set(), {0, 1, 2}, 1.0, 3, 0.5,
            relaxed_core=True,
        )
        assert violations != []  # isolated points can never be core
