"""Tests for the fully-dynamic clusterer — Theorem 4."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.static_dbscan import dbscan_brute
from repro.core.fullydynamic import (
    FullyDynamicClusterer,
    double_approx,
    full_exact_2d,
)
from repro.validation import check_legality, check_sandwich

from conftest import assert_matches_static, clustered_points, random_points


class TestBasics:
    def test_insert_then_delete_roundtrip(self):
        algo = FullyDynamicClusterer(1.0, 3)
        pid = algo.insert((0.0, 0.0))
        assert len(algo) == 1
        algo.delete(pid)
        assert len(algo) == 0
        assert algo.cell_count == 0

    def test_delete_unknown_raises(self):
        algo = FullyDynamicClusterer(1.0, 3)
        with pytest.raises(KeyError):
            algo.delete(5)

    def test_double_delete_raises(self):
        algo = FullyDynamicClusterer(1.0, 3)
        pid = algo.insert((0.0, 0.0))
        algo.delete(pid)
        with pytest.raises(KeyError):
            algo.delete(pid)

    def test_invalid_connectivity_rejected(self):
        with pytest.raises(ValueError):
            FullyDynamicClusterer(1.0, 3, connectivity="bogus")

    def test_cluster_split_on_delete(self):
        """Deleting a bridge point splits one cluster into two (Fig 1)."""
        algo = FullyDynamicClusterer(1.0, 2, rho=0.0, dim=1)
        ids = [algo.insert((float(x),)) for x in range(11)]
        assert len(algo.clusters().clusters) == 1
        algo.delete(ids[5])
        clustering = algo.clusters()
        assert len(clustering.clusters) == 2
        assert algo.same_cluster(ids[0], ids[4])
        assert not algo.same_cluster(ids[0], ids[6])

    def test_reinsert_heals_split(self):
        algo = FullyDynamicClusterer(1.0, 2, rho=0.0, dim=1)
        ids = [algo.insert((float(x),)) for x in range(11)]
        algo.delete(ids[5])
        assert len(algo.clusters().clusters) == 2
        algo.insert((5.0,))
        assert len(algo.clusters().clusters) == 1

    def test_core_demotion_on_delete(self):
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        a = algo.insert((0.0, 0.0))
        b = algo.insert((0.5, 0.0))
        c = algo.insert((0.0, 0.5))
        assert algo.is_core(a)
        algo.delete(c)
        assert not algo.is_core(a)

    def test_grid_edge_count_nonnegative(self):
        algo = FullyDynamicClusterer(1.0, 2, rho=0.0, dim=2)
        ids = [algo.insert((float(i) * 0.6, 0.0)) for i in range(10)]
        assert algo.grid_edge_count >= 1
        for pid in ids:
            algo.delete(pid)
        assert algo.grid_edge_count == 0


class TestExactEquivalence:
    """rho = 0 must reproduce exact DBSCAN after any update sequence."""

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_insert_only_matches_static(self, seed, dim):
        pts = random_points(100, dim, extent=10.0, seed=seed)
        algo = FullyDynamicClusterer(1.5, 4, rho=0.0, dim=dim)
        ids = [algo.insert(p) for p in pts]
        idmap = {pid: i for i, pid in enumerate(ids)}
        assert_matches_static(algo.clusters(), idmap, dbscan_brute(pts, 1.5, 4))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_churn_matches_static(self, seed):
        rng = random.Random(seed)
        pts = clustered_points(140, 2, seed=seed)
        algo = full_exact_2d(2.0, 4)
        live = {}
        for i, p in enumerate(pts):
            live[algo.insert(p)] = p
            if i % 3 == 2:
                victim = rng.choice(sorted(live))
                algo.delete(victim)
                del live[victim]
        keys = sorted(live)
        idmap = {pid: i for i, pid in enumerate(keys)}
        ref = dbscan_brute([live[k] for k in keys], 2.0, 4)
        assert_matches_static(algo.clusters(), idmap, ref)

    def test_delete_everything_then_rebuild(self):
        pts = clustered_points(80, 2, seed=5)
        algo = full_exact_2d(2.0, 4)
        ids = [algo.insert(p) for p in pts]
        for pid in ids:
            algo.delete(pid)
        assert len(algo) == 0 and algo.cell_count == 0
        ids2 = [algo.insert(p) for p in pts]
        idmap = {pid: i for i, pid in enumerate(ids2)}
        assert_matches_static(algo.clusters(), idmap, dbscan_brute(pts, 2.0, 4))

    def test_interleaved_prefix_checks(self):
        rng = random.Random(7)
        pts = clustered_points(70, 2, seed=7)
        algo = full_exact_2d(2.0, 4)
        live = {}
        for i, p in enumerate(pts):
            live[algo.insert(p)] = p
            if rng.random() < 0.3 and live:
                victim = rng.choice(sorted(live))
                algo.delete(victim)
                del live[victim]
            if i % 10 == 9:
                keys = sorted(live)
                idmap = {pid: j for j, pid in enumerate(keys)}
                ref = dbscan_brute([live[k] for k in keys], 2.0, 4)
                assert_matches_static(algo.clusters(), idmap, ref)

    @pytest.mark.parametrize("bcp", ["abcp", "rescan", "suffix"])
    def test_bcp_variants_agree_with_static(self, bcp):
        rng = random.Random(23)
        pts = clustered_points(90, 2, seed=23)
        algo = FullyDynamicClusterer(2.0, 4, rho=0.0, dim=2, bcp=bcp)
        live = {}
        for i, p in enumerate(pts):
            live[algo.insert(p)] = p
            if i % 3 == 2:
                victim = rng.choice(sorted(live))
                algo.delete(victim)
                del live[victim]
        keys = sorted(live)
        idmap = {pid: i for i, pid in enumerate(keys)}
        ref = dbscan_brute([live[k] for k in keys], 2.0, 4)
        assert_matches_static(algo.clusters(), idmap, ref)

    def test_invalid_bcp_rejected(self):
        with pytest.raises(ValueError):
            FullyDynamicClusterer(1.0, 3, bcp="bogus")

    @pytest.mark.parametrize("connectivity", ["hdt", "naive"])
    def test_connectivity_backends_agree(self, connectivity):
        rng = random.Random(11)
        pts = clustered_points(90, 2, seed=11)
        algo = FullyDynamicClusterer(2.0, 4, rho=0.0, dim=2, connectivity=connectivity)
        live = {}
        for i, p in enumerate(pts):
            live[algo.insert(p)] = p
            if i % 4 == 3:
                victim = rng.choice(sorted(live))
                algo.delete(victim)
                del live[victim]
        keys = sorted(live)
        idmap = {pid: i for i, pid in enumerate(keys)}
        ref = dbscan_brute([live[k] for k in keys], 2.0, 4)
        assert_matches_static(algo.clusters(), idmap, ref)


class TestDoubleApproxLegality:
    @pytest.mark.parametrize("rho", [0.001, 0.2, 0.5])
    def test_sandwich_and_legality_under_churn(self, rho):
        rng = random.Random(int(rho * 100))
        pts = clustered_points(120, 2, seed=31)
        algo = double_approx(2.0, 5, rho=rho, dim=2)
        live = set()
        for i, p in enumerate(pts):
            live.add(algo.insert(p))
            if i % 3 == 1 and live:
                victim = rng.choice(sorted(live))
                algo.delete(victim)
                live.discard(victim)
        clustering = algo.clusters()
        coords = {pid: algo.point(pid) for pid in live}
        core = {pid for pid in live if algo.is_core(pid)}
        assert check_sandwich(coords, clustering.clusters, 2.0, 5, rho) == []
        violations = check_legality(
            coords, clustering.clusters, clustering.noise, core,
            2.0, 5, rho, relaxed_core=True,
        )
        assert violations == []

    def test_relaxed_core_status_band(self):
        """A point in the don't-care band may be core or not, but points
        outside the band are forced."""
        algo = double_approx(1.0, 3, rho=0.5, dim=1)
        ids = [algo.insert((x,)) for x in (0.0, 1.0, 1.3)]
        # |B(0, 1.0)| = 2 < 3 but |B(0, 1.5)| = 3 >= 3: don't care for id 0.
        # Either answer is legal; legality checker accepts both:
        coords = {pid: algo.point(pid) for pid in ids}
        clustering = algo.clusters()
        core = {pid for pid in ids if algo.is_core(pid)}
        assert check_legality(
            coords, clustering.clusters, clustering.noise, core,
            1.0, 3, 0.5, relaxed_core=True,
        ) == []

    @pytest.mark.parametrize("dim", [3, 5])
    def test_higher_dimensions(self, dim):
        rng = random.Random(dim)
        pts = clustered_points(80, dim, seed=41, spread=1.0)
        algo = double_approx(3.0, 4, rho=0.1, dim=dim)
        live = set()
        for i, p in enumerate(pts):
            live.add(algo.insert(p))
            if i % 4 == 1:
                victim = rng.choice(sorted(live))
                algo.delete(victim)
                live.discard(victim)
        clustering = algo.clusters()
        coords = {pid: algo.point(pid) for pid in live}
        assert check_sandwich(coords, clustering.clusters, 3.0, 4, 0.1) == []


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 12), st.floats(0, 12)),
        min_size=1,
        max_size=40,
    ),
    st.data(),
)
def test_hypothesis_churn_equivalence(cloud, data):
    """Random insert/delete scripts: rho=0 output equals brute force."""
    algo = FullyDynamicClusterer(2.0, 3, rho=0.0, dim=2)
    live = {}
    for p in cloud:
        live[algo.insert(p)] = p
    victims = data.draw(
        st.lists(st.sampled_from(sorted(live)), unique=True, max_size=len(live))
    )
    for pid in victims:
        algo.delete(pid)
        del live[pid]
    keys = sorted(live)
    idmap = {pid: i for i, pid in enumerate(keys)}
    ref = dbscan_brute([live[k] for k in keys], 2.0, 3)
    assert_matches_static(algo.clusters(), idmap, ref)
