"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.n == 2000
        assert args.dim == 2
        assert args.algorithms == ["double-approx", "incdbscan"]

    def test_bench_rejects_unknown_algorithm(self, capsys):
        code = main(["bench", "--n", "50", "quantum-dbscan"])
        assert code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.n == 10000 and args.dim == 2


class TestCommands:
    def test_bench_runs(self, capsys):
        code = main(["bench", "--n", "150", "--seed", "1", "double-approx"])
        assert code == 0
        out = capsys.readouterr().out
        assert "double-approx" in out
        assert "avg" in out

    def test_bench_semi_flag_builds_insert_only(self, capsys):
        code = main(["bench", "--n", "120", "--semi", "semi-approx"])
        assert code == 0
        assert "%ins=1.000" in capsys.readouterr().out

    def test_bench_skips_semi_on_mixed_workload(self, capsys):
        code = main(["bench", "--n", "120", "semi-approx"])
        assert code == 0
        assert "skipped" in capsys.readouterr().out

    def test_generate_writes_csv(self, tmp_path, capsys):
        out_file = tmp_path / "points.csv"
        code = main(["generate", "--n", "25", "--dim", "3", "--output", str(out_file)])
        assert code == 0
        lines = out_file.read_text().strip().splitlines()
        assert len(lines) == 25
        assert all(len(line.split(",")) == 3 for line in lines)

    def test_generate_stdout(self, capsys):
        code = main(["generate", "--n", "5"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 5

    def test_usec_agrees(self, capsys):
        code = main(["usec", "--n", "8", "--instances", "3"])
        assert code == 0
        assert "3/3 agree" in capsys.readouterr().out


class TestBatchedBench:
    def test_batch_size_flag_parsed(self):
        args = build_parser().parse_args(["bench", "--batch-size", "64"])
        assert args.batch_size == 64
        assert build_parser().parse_args(["bench"]).batch_size is None

    def test_bench_runs_batched(self, capsys):
        code = main(
            ["bench", "--n", "150", "--seed", "2", "--batch-size", "32",
             "double-approx"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batched" in out and "batch=32" in out
        assert "p99-update" in out

    def test_bench_batched_semi_insert_only(self, capsys):
        code = main(
            ["bench", "--n", "120", "--semi", "--batch-size", "16",
             "semi-approx"]
        )
        assert code == 0
        assert "semi-approx" in capsys.readouterr().out

    def test_backend_flag_parsed_and_reported(self, capsys):
        from repro import kernels

        args = build_parser().parse_args(["bench", "--backend", "numpy"])
        assert args.backend == "numpy"
        previous = kernels.active_backend().requested
        try:
            code = main(
                ["bench", "--n", "120", "--backend", "numpy", "double-approx"]
            )
        finally:
            kernels.use_backend(previous)
        assert code == 0
        assert "backend=numpy" in capsys.readouterr().out

    def test_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--backend", "warp"])

    def test_invalid_batch_size_clean_error(self, capsys):
        for bad in ("0", "-4"):
            code = main(["bench", "--n", "50", "--batch-size", bad, "double-approx"])
            assert code == 2
            assert "--batch-size must be >= 1" in capsys.readouterr().err


class TestJsonBench:
    """`bench --format json` emits one machine-consumable metrics record."""

    def test_format_flag_parsed(self):
        assert build_parser().parse_args(["bench"]).format == "text"
        args = build_parser().parse_args(["bench", "--format", "json"])
        assert args.format == "json"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--format", "yaml"])

    def test_json_record_structure(self, capsys):
        code = main(
            ["bench", "--n", "150", "--seed", "3", "--format", "json",
             "double-approx", "recompute"]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["workload"]["n"] == 150
        assert record["workload"]["dim"] == 2
        assert record["backend"]
        by_name = {a["name"]: a for a in record["algorithms"]}
        assert set(by_name) == {"double-approx", "recompute"}
        entry = by_name["double-approx"]
        assert not entry["skipped"]
        for key in (
            "avg_cost_per_op_us", "avg_update_us", "max_update_us",
            "p50_update_us", "p99_update_us", "avg_query_us",
            "p50_query_us", "p99_query_us",
        ):
            assert isinstance(entry[key], float), key
        assert entry["p50_update_us"] <= entry["p99_update_us"] <= entry["max_update_us"]
        assert entry["config"]["algorithm"] == "double-approx"
        assert entry["config"]["rho"] == pytest.approx(0.001)
        assert entry["epoch"] == entry["update_count"]
        assert entry["backend"] == record["backend"]

    def test_json_marks_skipped_algorithms(self, capsys):
        code = main(["bench", "--n", "120", "--format", "json", "semi-approx"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        (entry,) = record["algorithms"]
        assert entry["skipped"] and "deletions" in entry["reason"]

    def test_json_batched_run(self, capsys):
        code = main(
            ["bench", "--n", "150", "--seed", "4", "--batch-size", "32",
             "--format", "json", "double-approx"]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["workload"]["batch_size"] == 32
        (entry,) = record["algorithms"]
        assert entry["config"]["batch_size"] == 32


class TestScenarioBench:
    """`bench --scenario sliding-window` swaps in the streaming family."""

    def test_scenario_flags_parsed(self):
        args = build_parser().parse_args(["bench"])
        assert args.scenario == "mixed"
        assert args.window_capacity is None
        assert args.arrival == "burst"
        args = build_parser().parse_args(
            ["bench", "--scenario", "sliding-window", "--window-capacity",
             "64", "--arrival", "evolving"]
        )
        assert args.scenario == "sliding-window"
        assert args.window_capacity == 64
        assert args.arrival == "evolving"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--scenario", "tsunami"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--arrival", "tsunami"])

    def test_sliding_window_text_run(self, capsys):
        code = main(
            ["bench", "--n", "200", "--seed", "5", "--scenario",
             "sliding-window", "double-approx"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario: sliding-window (burst arrivals)" in out
        assert "capacity=50" in out  # n // 4
        assert "double-approx" in out

    def test_sliding_window_json_record(self, capsys):
        code = main(
            ["bench", "--n", "200", "--seed", "5", "--scenario",
             "sliding-window", "--window-capacity", "40", "--arrival",
             "evolving", "--format", "json", "double-approx"]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        workload = record["workload"]
        assert workload["scenario"] == "sliding-window"
        assert workload["arrival"] == "evolving"
        assert workload["window_capacity"] == 40
        assert workload["batches"] >= 1
        # Mixed-workload knobs are explicitly null for scenario runs.
        assert workload["insert_fraction"] is None
        assert workload["query_count"] is None
        (entry,) = record["algorithms"]
        assert entry["scenario"] == "sliding-window"
        assert not entry["skipped"]
        assert entry["update_count"] > 0

    def test_mixed_runs_stamp_scenario_too(self, capsys):
        code = main(
            ["bench", "--n", "150", "--seed", "6", "--format", "json",
             "double-approx"]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["workload"]["scenario"] == "mixed"
        (entry,) = record["algorithms"]
        assert entry["scenario"] == "mixed"

    def test_sliding_window_skips_insert_only_algorithms(self, capsys):
        code = main(
            ["bench", "--n", "150", "--scenario", "sliding-window",
             "semi-approx"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skipped" in out
        assert "cannot expire a sliding window" in out

    def test_semi_flag_conflicts_with_sliding_window(self, capsys):
        code = main(
            ["bench", "--n", "150", "--semi", "--scenario",
             "sliding-window", "semi-approx"]
        )
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_bad_window_capacity_clean_error(self, capsys):
        code = main(
            ["bench", "--n", "150", "--scenario", "sliding-window",
             "--window-capacity", "0", "double-approx"]
        )
        assert code == 2
        assert "capacity" in capsys.readouterr().err


class TestServeParser:
    """The `serve` command (the asyncio service needs no socket here —
    these pin the CLI surface; end-to-end serving is exercised by the
    CI smoke step and tests/test_service.py)."""

    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7171
        assert args.algorithm == "full"
        assert args.dim == 2
        assert args.shards is None
        assert args.window_capacity is None
        assert args.max_sessions == 64
        assert args.queue_depth == 32
        assert args.max_inflight == 256
        assert args.allow_shutdown_op is False

    def test_knobs_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--algorithm", "double-approx",
             "--shards", "4", "--shard-executor", "serial",
             "--window-capacity", "500", "--max-sessions", "8",
             "--queue-depth", "4", "--max-inflight", "16",
             "--allow-shutdown-op"]
        )
        assert args.port == 9000
        assert args.algorithm == "double-approx"
        assert args.shards == 4
        assert args.window_capacity == 500
        assert args.max_sessions == 8
        assert args.queue_depth == 4
        assert args.max_inflight == 16
        assert args.allow_shutdown_op is True

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--algorithm", "quantum"])

    def test_bad_limits_clean_error(self, capsys):
        code = main(["serve", "--max-sessions", "0"])
        assert code == 2
        assert "max_sessions" in capsys.readouterr().err

    def test_windowed_semi_clean_error(self, capsys):
        code = main(
            ["serve", "--algorithm", "semi", "--window-capacity", "100"]
        )
        assert code == 2
        assert "sliding window" in capsys.readouterr().err
