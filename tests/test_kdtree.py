"""Tests for the dynamic kd-tree against brute-force oracles."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.kdtree import DynamicKDTree
from repro.geometry.points import sq_dist


def brute_ball(points, q, sq_radius):
    return {pid for pid, p in points.items() if sq_dist(p, q) <= sq_radius}


class TestBasics:
    def test_empty_tree(self):
        tree = DynamicKDTree(2)
        assert len(tree) == 0
        assert tree.find_within((0.0, 0.0), 1.0, 1.0) is None
        assert tree.count_fuzzy((0.0, 0.0), 1.0, 1.0) == 0
        assert tree.ball_ids((0.0, 0.0), 1.0) == []

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            DynamicKDTree(0)

    def test_insert_and_contains(self):
        tree = DynamicKDTree(2)
        tree.insert(1, (0.5, 0.5))
        assert 1 in tree
        assert len(tree) == 1
        assert tree.point(1) == (0.5, 0.5)

    def test_duplicate_id_rejected(self):
        tree = DynamicKDTree(2)
        tree.insert(1, (0.0, 0.0))
        with pytest.raises(KeyError):
            tree.insert(1, (1.0, 1.0))

    def test_delete(self):
        tree = DynamicKDTree(2)
        tree.insert(1, (0.0, 0.0))
        tree.delete(1)
        assert 1 not in tree
        assert tree.find_within((0.0, 0.0), 1.0, 1.0) is None

    def test_delete_missing_raises(self):
        tree = DynamicKDTree(2)
        with pytest.raises(KeyError):
            tree.delete(99)

    def test_duplicate_coordinates_allowed(self):
        tree = DynamicKDTree(2)
        for i in range(30):
            tree.insert(i, (1.0, 1.0))
        assert len(tree) == 30
        assert tree.count_fuzzy((1.0, 1.0), 0.01, 0.01) == 30
        for i in range(30):
            tree.delete(i)
        assert len(tree) == 0

    def test_find_within_exact_when_equal_radii(self):
        tree = DynamicKDTree(1)
        tree.insert(0, (0.0,))
        tree.insert(1, (5.0,))
        assert tree.find_within((4.2,), 1.0, 1.0) == 1
        assert tree.find_within((2.5,), 1.0, 1.0) is None

    def test_count_saturates_with_stop_at(self):
        tree = DynamicKDTree(2)
        for i in range(100):
            tree.insert(i, (0.0, float(i) * 0.001))
        count = tree.count_fuzzy((0.0, 0.0), 1.0, 1.0, stop_at=5)
        assert count >= 5


class TestContractRandomized:
    """The emptiness / fuzzy-count contracts on random data."""

    @pytest.mark.parametrize("dim", [1, 2, 3, 5])
    @pytest.mark.parametrize("rho", [0.0, 0.5])
    def test_find_within_contract(self, dim, rho):
        rng = random.Random(dim * 100 + int(rho * 10))
        tree = DynamicKDTree(dim)
        points = {}
        for pid in range(200):
            p = tuple(rng.random() * 10 for _ in range(dim))
            points[pid] = p
            tree.insert(pid, p)
        eps = 1.0
        sq_eps = eps * eps
        relaxed = eps * (1 + rho)
        sq_relaxed = relaxed * relaxed
        for _ in range(100):
            q = tuple(rng.random() * 10 for _ in range(dim))
            got = tree.find_within(q, sq_eps, sq_relaxed)
            tight = brute_ball(points, q, sq_eps)
            if tight:
                assert got is not None, "must find a point when one is <= eps"
            if got is not None:
                assert sq_dist(points[got], q) <= sq_relaxed * (1 + 1e-12)

    @pytest.mark.parametrize("dim", [1, 2, 3])
    @pytest.mark.parametrize("rho", [0.0, 0.25])
    def test_count_fuzzy_contract(self, dim, rho):
        rng = random.Random(dim * 7 + int(rho * 100))
        tree = DynamicKDTree(dim)
        points = {}
        for pid in range(300):
            p = tuple(rng.random() * 8 for _ in range(dim))
            points[pid] = p
            tree.insert(pid, p)
        eps = 1.0
        relaxed = eps * (1 + rho)
        for _ in range(60):
            q = tuple(rng.random() * 8 for _ in range(dim))
            k = tree.count_fuzzy(q, eps * eps, relaxed * relaxed)
            lo = len(brute_ball(points, q, eps * eps))
            hi = len(brute_ball(points, q, relaxed * relaxed))
            assert lo <= k <= hi

    def test_ball_ids_exact_after_churn(self):
        rng = random.Random(99)
        tree = DynamicKDTree(2)
        points = {}
        next_id = 0
        for step in range(2000):
            if points and rng.random() < 0.4:
                pid = rng.choice(list(points))
                tree.delete(pid)
                del points[pid]
            else:
                p = (rng.random() * 5, rng.random() * 5)
                tree.insert(next_id, p)
                points[next_id] = p
                next_id += 1
            if step % 100 == 0:
                q = (rng.random() * 5, rng.random() * 5)
                assert set(tree.ball_ids(q, 1.0)) == brute_ball(points, q, 1.0)

    def test_rebuild_preserves_contents(self):
        rng = random.Random(5)
        tree = DynamicKDTree(3)
        points = {}
        for pid in range(500):
            p = tuple(rng.random() for _ in range(3))
            points[pid] = p
            tree.insert(pid, p)
        for pid in range(0, 500, 2):
            tree.delete(pid)
            del points[pid]
        tree.rebuild()
        assert set(tree.ids()) == set(points)
        q = (0.5, 0.5, 0.5)
        assert set(tree.ball_ids(q, 0.1)) == brute_ball(points, q, 0.1)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 10), st.floats(0, 10)),
        min_size=0,
        max_size=60,
    ),
    st.tuples(st.floats(0, 10), st.floats(0, 10)),
    st.floats(0.1, 5.0),
)
def test_hypothesis_ball_ids_match_brute(cloud, q, radius):
    tree = DynamicKDTree(2)
    points = {}
    for pid, p in enumerate(cloud):
        tree.insert(pid, p)
        points[pid] = p
    expected = brute_ball(points, q, radius * radius)
    assert set(tree.ball_ids(q, radius * radius)) == expected


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(st.floats(0, 4), st.floats(0, 4)), min_size=1, max_size=50),
    st.data(),
)
def test_hypothesis_deletion_sequences(cloud, data):
    """Insert everything, delete a subset, queries match brute force."""
    tree = DynamicKDTree(2)
    points = {}
    for pid, p in enumerate(cloud):
        tree.insert(pid, p)
        points[pid] = p
    victims = data.draw(
        st.lists(st.sampled_from(sorted(points)), unique=True, max_size=len(points))
    )
    for pid in victims:
        tree.delete(pid)
        del points[pid]
    q = data.draw(st.tuples(st.floats(0, 4), st.floats(0, 4)))
    assert set(tree.ball_ids(q, 1.0)) == brute_ball(points, q, 1.0)
    got = tree.find_within(q, 1.0, 1.0)
    tight = brute_ball(points, q, 1.0)
    assert (got is not None) == bool(tight)


class TestFindWithinMany:
    """The batched emptiness search against the scalar contract."""

    def _random_tree(self, rng, n, dim, extent=6.0):
        tree = DynamicKDTree(dim)
        points = {}
        for pid in range(n):
            p = tuple(rng.random() * extent for _ in range(dim))
            tree.insert(pid, p)
            points[pid] = p
        return tree, points

    def test_empty_tree_and_empty_batch(self):
        import numpy as np

        tree = DynamicKDTree(2)
        assert tree.find_within_many(np.empty((0, 2)), 1.0, 1.0) == []
        assert tree.find_within_many(np.array([[0.0, 0.0]]), 1.0, 1.0) == [None]

    @pytest.mark.parametrize("dim", (1, 2, 3, 5))
    @pytest.mark.parametrize("rho", (0.0, 0.3))
    def test_has_proof_matches_scalar(self, dim, rho):
        """Pruning and acceptance thresholds match the scalar search, so
        the is-there-a-proof answer must be identical query by query."""
        import numpy as np

        rng = random.Random(dim * 7 + int(rho * 10))
        tree, points = self._random_tree(rng, 150, dim)
        sq_eps = 1.0
        sq_relaxed = (1.0 + rho) ** 2
        qs = np.array(
            [[rng.random() * 6 for _ in range(dim)] for _ in range(120)]
        )
        batch = tree.find_within_many(qs, sq_eps, sq_relaxed)
        for q, proof in zip(qs, batch):
            scalar = tree.find_within(tuple(q), sq_eps, sq_relaxed)
            assert (proof is None) == (scalar is None)
            if proof is not None:
                assert sq_dist(points[proof], tuple(q)) <= sq_relaxed

    def test_after_deletions_and_rebuild(self):
        import numpy as np

        rng = random.Random(11)
        tree, points = self._random_tree(rng, 200, 2)
        for pid in list(points)[::2]:
            tree.delete(pid)
            del points[pid]
        qs = np.array([[rng.random() * 6, rng.random() * 6] for _ in range(80)])
        batch = tree.find_within_many(qs, 1.0, 1.0)
        for q, proof in zip(qs, batch):
            tight = brute_ball(points, tuple(q), 1.0)
            assert (proof is not None) == bool(tight)
            if proof is not None:
                assert proof in tight


class TestProofsWithin:
    def test_matrix_helper_exact_and_deterministic(self):
        import numpy as np

        from repro.kernels import find_within_many

        ids = [5, 9, 11, 40]
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [5.0, 5.0]])
        qs = np.array([[0.1, 0.0], [1.0, 0.0], [9.0, 9.0]])
        got = find_within_many(qs, ids, pts, 1.0)
        # Lowest-index match wins: the first query is within 1.0 of both
        # point 5 (d^2=0.01) and nothing else; the second of 5 and 9.
        assert got == [5, 5, None]
        assert find_within_many(np.empty((0, 2)), ids, pts, 1.0) == []
        assert find_within_many(qs, [], np.empty((0, 2)), 1.0) == [None] * 3
