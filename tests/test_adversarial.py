"""Adversarial datasets: boundary geometry, duplicates, degeneracies.

These target the places where grid/tree code usually breaks: points on
cell boundaries, distances exactly equal to eps, everything in one cell,
collinear data, huge/tiny coordinates, and mass duplication.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.baselines.static_dbscan import dbscan_brute
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer

from conftest import assert_matches_static

ALL_DYNAMIC = [
    lambda eps, minpts, dim: SemiDynamicClusterer(eps, minpts, rho=0.0, dim=dim),
    lambda eps, minpts, dim: FullyDynamicClusterer(eps, minpts, rho=0.0, dim=dim),
    lambda eps, minpts, dim: IncDBSCAN(eps, minpts, dim=dim),
]
IDS = ["semi", "full", "inc"]


def check(factory, pts, eps, minpts, dim):
    algo = factory(eps, minpts, dim)
    ids = [algo.insert(p) for p in pts]
    idmap = {pid: i for i, pid in enumerate(ids)}
    assert_matches_static(algo.clusters(), idmap, dbscan_brute(pts, eps, minpts))


@pytest.mark.parametrize("factory", ALL_DYNAMIC, ids=IDS)
class TestBoundaryGeometry:
    def test_points_on_cell_boundaries(self, factory):
        """Coordinates at exact multiples of the cell side."""
        eps = 2.0
        side = eps / (2**0.5)
        pts = [
            (i * side, j * side)
            for i in range(4)
            for j in range(4)
        ]
        check(factory, pts, eps, 3, 2)

    def test_pairs_exactly_eps_apart(self, factory):
        pts = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]
        check(factory, pts, 1.0, 2, 2)

    def test_pairs_just_over_eps(self, factory):
        pts = [(0.0, 0.0), (1.0000001, 0.0), (2.0000002, 0.0)]
        check(factory, pts, 1.0, 2, 2)

    def test_negative_coordinates(self, factory):
        pts = [(-5.0, -5.0), (-5.3, -5.2), (-5.1, -4.8), (4.0, 4.0)]
        check(factory, pts, 1.0, 3, 2)

    def test_coordinates_straddling_zero(self, factory):
        pts = [(-0.1, -0.1), (0.1, 0.1), (-0.1, 0.1), (0.1, -0.1)]
        check(factory, pts, 1.0, 3, 2)

    def test_large_coordinates(self, factory):
        base = 1e7
        pts = [(base + dx, base + dy) for dx in (0.0, 0.4) for dy in (0.0, 0.4)]
        pts.append((base + 100.0, base + 100.0))
        check(factory, pts, 1.0, 3, 2)


@pytest.mark.parametrize("factory", ALL_DYNAMIC, ids=IDS)
class TestDegenerate:
    def test_all_points_identical(self, factory):
        pts = [(3.0, 3.0)] * 12
        check(factory, pts, 1.0, 5, 2)

    def test_all_points_in_one_cell(self, factory):
        rng = random.Random(0)
        pts = [(rng.uniform(0, 0.1), rng.uniform(0, 0.1)) for _ in range(25)]
        check(factory, pts, 1.0, 10, 2)

    def test_collinear_chain(self, factory):
        pts = [(0.3 * i, 0.0) for i in range(30)]
        check(factory, pts, 1.0, 4, 2)

    def test_single_dimension(self, factory):
        pts = [(float(i) * 0.7,) for i in range(15)]
        check(factory, pts, 1.0, 3, 1)

    def test_two_points(self, factory):
        check(factory, [(0.0, 0.0), (0.5, 0.5)], 1.0, 2, 2)

    def test_minpts_larger_than_dataset(self, factory):
        pts = [(0.0, 0.0), (0.1, 0.1), (0.2, 0.2)]
        check(factory, pts, 1.0, 10, 2)


class TestFullyDynamicAdversarial:
    """Deletion-heavy edge cases for the fully-dynamic algorithm."""

    def test_delete_in_reverse_insertion_order(self):
        pts = [(0.4 * i, 0.0) for i in range(20)]
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        ids = [algo.insert(p) for p in pts]
        for k in range(19, -1, -1):
            algo.delete(ids[k])
            rest = pts[:k]
            idmap = {pid: i for i, pid in enumerate(ids[:k])}
            assert_matches_static(
                algo.clusters(), idmap, dbscan_brute(rest, 1.0, 3)
            )

    def test_repeated_insert_delete_same_location(self):
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        anchor = [algo.insert((0.0, 0.0)), algo.insert((0.5, 0.0))]
        for _ in range(40):
            pid = algo.insert((0.25, 0.25))
            assert algo.is_core(pid)
            algo.delete(pid)
            assert not any(algo.is_core(a) for a in anchor)
        assert len(algo) == 2

    def test_oscillating_core_status_at_threshold(self):
        """A point at exactly MinPts neighbors flips with each update."""
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=1)
        center = algo.insert((0.0,))
        left = algo.insert((-0.8,))
        assert not algo.is_core(center)
        right = algo.insert((0.8,))
        assert algo.is_core(center)
        algo.delete(left)
        assert not algo.is_core(center)
        left = algo.insert((-0.8,))
        assert algo.is_core(center)

    def test_duplicate_point_deletions(self):
        algo = FullyDynamicClusterer(1.0, 4, rho=0.0, dim=2)
        ids = [algo.insert((1.0, 1.0)) for _ in range(10)]
        rng = random.Random(3)
        rng.shuffle(ids)
        for i, pid in enumerate(ids):
            algo.delete(pid)
            remaining = 9 - i
            ref = dbscan_brute([(1.0, 1.0)] * remaining, 1.0, 4)
            assert len(algo.clusters().clusters) == len(ref.clusters)
