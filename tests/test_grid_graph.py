"""Tests of the grid-graph semantics (Section 4.1) via the clusterers."""

from __future__ import annotations

import random

import pytest

from repro.core.fullydynamic import FullyDynamicClusterer
from repro.baselines.naive_dynamic import RecomputeClusterer
from repro.baselines.incdbscan import IncDBSCAN
from repro.core.semidynamic import SemiDynamicClusterer

from conftest import clustered_points


class TestEdgeLifecycle:
    def test_no_edges_for_noise(self):
        algo = FullyDynamicClusterer(1.0, 3, rho=0.0, dim=2)
        algo.insert((0.0, 0.0))
        algo.insert((10.0, 10.0))
        assert algo.grid_edge_count == 0

    def test_edge_appears_with_core_promotion(self):
        algo = FullyDynamicClusterer(1.0, 2, rho=0.0, dim=1)
        algo.insert((0.9,))
        assert algo.grid_edge_count == 0
        # 1.1 lands in the adjacent cell (side = 1/sqrt(1) = 1.0); both
        # points become core and are within eps, so the edge must appear.
        algo.insert((1.1,))
        assert algo.grid_edge_count == 1

    def test_edges_torn_down_with_demotion(self):
        algo = FullyDynamicClusterer(1.0, 2, rho=0.0, dim=1)
        ids = [algo.insert((x,)) for x in (0.0, 0.9, 1.8)]
        assert algo.grid_edge_count >= 1
        for pid in ids:
            algo.delete(pid)
        assert algo.grid_edge_count == 0

    def test_edge_count_bounded_by_close_pairs(self):
        """|E| stays O(#core cells): each cell has O(1) close cells."""
        pts = clustered_points(200, 2, seed=3)
        algo = FullyDynamicClusterer(2.0, 4, rho=0.0, dim=2)
        for p in pts:
            algo.insert(p)
        core_cells = sum(
            1 for data in algo._cells.values() if data.core
        )
        max_close = len(algo._grid.offsets)
        assert algo.grid_edge_count <= core_cells * max_close / 2

    def test_clusters_equal_components_of_core_cells(self):
        """The CC requirement: same cluster iff same grid-graph CC."""
        pts = clustered_points(120, 2, seed=4)
        algo = FullyDynamicClusterer(2.0, 4, rho=0.0, dim=2)
        ids = [algo.insert(p) for p in pts]
        core_ids = [pid for pid in ids if algo.is_core(pid)]
        for a in core_ids[:30]:
            for b in core_ids[:30]:
                same_cc = algo._conn.connected(
                    algo.cell_of(a), algo.cell_of(b)
                )
                assert same_cc == algo.same_cluster(a, b)


class TestFourWayConsistency:
    """semi / full / IncDBSCAN / recompute must agree exactly at rho=0."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_insert_only_agreement(self, seed):
        pts = clustered_points(90, 2, seed=seed + 100)
        eps, minpts = 2.0, 4
        algos = [
            SemiDynamicClusterer(eps, minpts, rho=0.0, dim=2),
            FullyDynamicClusterer(eps, minpts, rho=0.0, dim=2),
            IncDBSCAN(eps, minpts, dim=2),
            RecomputeClusterer(eps, minpts, dim=2),
        ]
        maps = [dict() for _ in algos]
        for i, p in enumerate(pts):
            for algo, m in zip(algos, maps):
                m[algo.insert(p)] = i
        canons = []
        for algo, m in zip(algos, maps):
            c = algo.clusters()
            canons.append(
                (
                    frozenset(frozenset(m[pid] for pid in cl) for cl in c.clusters),
                    frozenset(m[pid] for pid in c.noise),
                )
            )
        assert all(c == canons[0] for c in canons[1:])

    def test_mixed_workload_agreement(self):
        rng = random.Random(11)
        pts = clustered_points(100, 2, seed=111)
        eps, minpts = 2.0, 4
        algos = [
            FullyDynamicClusterer(eps, minpts, rho=0.0, dim=2),
            IncDBSCAN(eps, minpts, dim=2),
            RecomputeClusterer(eps, minpts, dim=2),
        ]
        maps = [dict() for _ in algos]
        order = []
        for i, p in enumerate(pts):
            for algo, m in zip(algos, maps):
                m[algo.insert(p)] = i
            order.append(i)
            if i % 4 == 3:
                victim = order.pop(rng.randrange(len(order)))
                for algo, m in zip(algos, maps):
                    pid = next(k for k, v in m.items() if v == victim)
                    algo.delete(pid)
                    del m[pid]
            if i % 20 == 19:
                canons = []
                for algo, m in zip(algos, maps):
                    c = algo.clusters()
                    canons.append(
                        frozenset(
                            frozenset(m[pid] for pid in cl) for cl in c.clusters
                        )
                    )
                assert all(c == canons[0] for c in canons[1:]), f"step {i}"
