"""Tests for static exact DBSCAN and static rho-approximate DBSCAN."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.static_dbscan import dbscan_brute, dbscan_grid
from repro.baselines.static_rho import rho_dbscan_static
from repro.validation import check_legality, check_sandwich

from conftest import clustered_points, random_points


class TestBruteForce:
    def test_empty_dataset(self):
        ref = dbscan_brute([], 1.0, 3)
        assert ref.clusters == [] and ref.noise == set() and ref.core == set()

    def test_single_point_noise(self):
        ref = dbscan_brute([(0.0, 0.0)], 1.0, 2)
        assert ref.noise == {0}
        assert ref.clusters == []

    def test_minpts_one_singleton_clusters(self):
        ref = dbscan_brute([(0.0, 0.0), (10.0, 10.0)], 1.0, 1)
        assert len(ref.clusters) == 2
        assert ref.noise == set()

    def test_line_chain_single_cluster(self):
        pts = [(float(i), 0.0) for i in range(10)]
        ref = dbscan_brute(pts, 1.0, 2)
        assert len(ref.clusters) == 1
        assert ref.core == set(range(10))

    def test_broken_chain_two_clusters(self):
        pts = [(float(i), 0.0) for i in range(5)] + [
            (float(i) + 10.0, 0.0) for i in range(5)
        ]
        ref = dbscan_brute(pts, 1.0, 2)
        assert len(ref.clusters) == 2

    def test_border_multi_membership(self):
        pts = [(0.1,), (0.4,), (0.7,), (1.0,), (3.0,), (3.3,), (3.6,), (3.9,), (2.0,)]
        ref = dbscan_brute(pts, 1.0, 4)
        assert 8 not in ref.core
        assert len(ref.memberships(8)) == 2

    def test_cluster_of_core_raises_for_noise(self):
        ref = dbscan_brute([(0.0, 0.0)], 1.0, 2)
        with pytest.raises(KeyError):
            ref.cluster_of_core(0)

    def test_eps_boundary_inclusive(self):
        ref = dbscan_brute([(0.0,), (1.0,)], 1.0, 2)
        assert len(ref.clusters) == 1


class TestGridMatchesBrute:
    @pytest.mark.parametrize("dim", [1, 2, 3, 5])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_uniform(self, dim, seed):
        pts = random_points(150, dim, extent=10.0, seed=seed)
        assert dbscan_grid(pts, 1.5, 4).canonical() == dbscan_brute(
            pts, 1.5, 4
        ).canonical()

    @pytest.mark.parametrize("seed", [2, 3])
    def test_clustered(self, seed):
        pts = clustered_points(200, 2, seed=seed)
        a = dbscan_grid(pts, 2.0, 5)
        b = dbscan_brute(pts, 2.0, 5)
        assert a.canonical() == b.canonical()
        assert a.noise == b.noise
        assert a.core == b.core

    def test_dense_single_cell(self):
        pts = [(0.01 * i, 0.01 * i) for i in range(30)]
        a = dbscan_grid(pts, 5.0, 10)
        b = dbscan_brute(pts, 5.0, 10)
        assert a.canonical() == b.canonical()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(st.floats(0, 20), st.floats(0, 20)), max_size=70),
        st.integers(1, 6),
        st.floats(0.5, 4.0),
    )
    def test_hypothesis(self, cloud, minpts, eps):
        assert dbscan_grid(cloud, eps, minpts).canonical() == dbscan_brute(
            cloud, eps, minpts
        ).canonical()


class TestStaticRho:
    def test_rho_zero_equals_exact(self):
        pts = clustered_points(100, 2, seed=4)
        assert rho_dbscan_static(pts, 2.0, 5, 0.0).canonical() == dbscan_brute(
            pts, 2.0, 5
        ).canonical()

    @pytest.mark.parametrize("rho", [0.001, 0.2, 0.8])
    def test_satisfies_sandwich(self, rho):
        pts = clustered_points(100, 2, seed=5)
        approx = rho_dbscan_static(pts, 2.0, 5, rho)
        coords = {i: p for i, p in enumerate(pts)}
        assert check_sandwich(coords, approx.clusters, 2.0, 5, rho) == []

    @pytest.mark.parametrize("rho", [0.001, 0.3])
    def test_satisfies_legality(self, rho):
        pts = clustered_points(90, 2, seed=6)
        approx = rho_dbscan_static(pts, 2.0, 5, rho)
        coords = {i: p for i, p in enumerate(pts)}
        assert check_legality(
            coords, approx.clusters, approx.noise, approx.core,
            2.0, 5, rho, relaxed_core=False,
        ) == []

    def test_core_points_match_exact(self):
        """rho-approximation does not relax the core definition."""
        pts = clustered_points(100, 3, seed=7)
        approx = rho_dbscan_static(pts, 2.0, 5, 0.5)
        exact = dbscan_brute(pts, 2.0, 5)
        assert approx.core == exact.core

    def test_large_rho_merges_nearby_clusters(self):
        pts = [(float(i) * 0.5, 0.0) for i in range(5)] + [
            (float(i) * 0.5 + 3.4, 0.0) for i in range(5)
        ]
        exact = dbscan_brute(pts, 1.0, 2)
        merged = rho_dbscan_static(pts, 1.0, 2, 0.5)
        assert len(exact.clusters) == 2
        assert len(merged.clusters) == 1
