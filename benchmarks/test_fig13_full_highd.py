"""Figure 13 — fully-dynamic algorithms in d = 3, 5, 7.

Paper: mixed workloads (%ins = 5/6) at eps = 100d.  Plots avgcost and
maxupdcost for Double-Approx vs IncDBSCAN.  The paper terminated
IncDBSCAN's 5D and 7D runs after 3 hours; we keep N small enough that it
finishes, but its deletion BFS still dominates.

Expected shape: Double-Approx wins avgcost by a wide margin everywhere and
maxupdcost by ~an order of magnitude (deletion hardness).

Series go to benchmarks/results/fig13_full_highd.txt.
"""

from __future__ import annotations

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.workload.config import (
    DEFAULT_INSERT_FRACTION,
    MINPTS,
    RHO,
    SLOW_BENCH_N,
    bench_n,
    eps_for,
)

from figlib import cached_workload, execute, series_lines, write_results

DIMENSIONS = (3, 5, 7)
N = bench_n(SLOW_BENCH_N)
QFREQ = max(1, N // 20)

_collected = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_series():
    yield
    if _collected:
        write_results(
            "fig13_full_highd.txt",
            f"Figure 13: fully-dynamic, d in {DIMENSIONS}, N={N}, eps=100d, "
            f"MinPts={MINPTS}, rho={RHO}, %ins={DEFAULT_INSERT_FRACTION:.3f}",
            [series_lines(name, res) for name, res in _collected.items()],
        )


@pytest.mark.parametrize("dim", DIMENSIONS)
@pytest.mark.parametrize("algo", ["Double-Approx", "IncDBSCAN"])
def test_fig13_fully_dynamic_highd(benchmark, dim, algo):
    eps = eps_for(dim)
    factory = {
        "Double-Approx": lambda: FullyDynamicClusterer(eps, MINPTS, rho=RHO, dim=dim),
        "IncDBSCAN": lambda: IncDBSCAN(eps, MINPTS, dim=dim),
    }[algo]
    workload = cached_workload(
        N, dim, insert_fraction=DEFAULT_INSERT_FRACTION, query_frequency=QFREQ
    )
    result = execute(benchmark, factory, workload)
    _collected[f"{algo} d={dim}"] = result
    assert result.average_cost > 0
