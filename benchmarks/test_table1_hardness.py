"""Table 1 — the dynamic-hardness landscape, measured.

Table 1 summarizes the paper's theory: the tractable cells (2D exact,
semi-dynamic rho-approx, fully-dynamic rho-double-approx) admit O~(1)
updates and O~(|Q|) queries, while fully-dynamic rho-approximate DBSCAN is
Omega~(n^{1/3})-hard via the USEC-LS reduction.

We cannot benchmark a lower bound, but we can measure its two sides:

* **Tractable rows** — per-update and per-query cost of our algorithms at
  growing n, which should grow at most poly-logarithmically (flat-ish),
  while IncDBSCAN's deletion cost grows clearly with n.
* **The reduction** — the Lemma 2 probe loop really decides USEC-LS
  (checked against brute force inside the benchmark).

Rows go to benchmarks/results/table1_hardness.txt.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.hardness.reduction import (
    make_reduction_clusterer,
    solve_usec_ls_with_clusterer,
)
from repro.hardness.usec import random_usec_ls_instance, usec_ls_brute
from repro.workload.config import MINPTS, RHO, bench_n, eps_for

from figlib import cached_workload, write_results

DIM = 3
EPS = eps_for(DIM)
SIZES = tuple(
    max(200, int(bench_n(2400) * f)) for f in (0.25, 0.5, 1.0)
)

_rows = []


@pytest.fixture(scope="module", autouse=True)
def _dump_series():
    yield
    if _rows:
        write_results(
            "table1_hardness.txt",
            f"Table 1 (measured side): per-op costs vs n, d={DIM}, eps={EPS}, "
            f"MinPts={MINPTS}, rho={RHO}",
            [["row\tn\tper_update_us\tper_query_us"]
             + [f"{name}\t{n}\t{upd:.2f}\t{qry:.2f}" for name, n, upd, qry in _rows]],
        )


def _measure(factory, n):
    workload = cached_workload(n, DIM, insert_fraction=5 / 6,
                               query_frequency=max(1, n // 20))
    algo = factory()
    from repro.workload.runner import run_workload

    result = run_workload(algo, workload)
    updates = result.update_costs()
    queries = result.query_costs()
    return (
        statistics.mean(updates),
        statistics.mean(queries) if queries else 0.0,
    )


@pytest.mark.parametrize("n", SIZES)
def test_table1_double_approx_scaling(benchmark, n):
    """Fully-dynamic rho-double-approx: the paper's O~(1)/O~(|Q|) row."""

    def run():
        return _measure(
            lambda: FullyDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM), n
        )

    upd, qry = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["per_update_us"] = round(upd, 2)
    benchmark.extra_info["per_query_us"] = round(qry, 2)
    _rows.append(("Double-Approx", n, upd, qry))


@pytest.mark.parametrize("n", SIZES)
def test_table1_semi_approx_scaling(benchmark, n):
    """Semi-dynamic rho-approx (insertions only): the other O~(1) row."""

    def run():
        workload = cached_workload(n, DIM, insert_fraction=1.0,
                                   query_frequency=max(1, n // 20))
        from repro.workload.runner import run_workload

        result = run_workload(
            SemiDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM), workload
        )
        updates = result.update_costs()
        queries = result.query_costs()
        return (
            statistics.mean(updates),
            statistics.mean(queries) if queries else 0.0,
        )

    upd, qry = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["per_update_us"] = round(upd, 2)
    benchmark.extra_info["per_query_us"] = round(qry, 2)
    _rows.append(("Semi-Approx", n, upd, qry))


@pytest.mark.parametrize("n", SIZES)
def test_table1_incdbscan_scaling(benchmark, n):
    """IncDBSCAN: per-update cost grows with n (no O~(1) guarantee)."""

    def run():
        return _measure(lambda: IncDBSCAN(EPS, MINPTS, dim=DIM), n)

    upd, qry = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["per_update_us"] = round(upd, 2)
    benchmark.extra_info["per_query_us"] = round(qry, 2)
    _rows.append(("IncDBSCAN", n, upd, qry))


def test_table1_usec_ls_reduction_correct(benchmark):
    """The Lemma 2 probe loop decides USEC-LS (the hardness side)."""

    def run():
        start = time.perf_counter()
        checked = 0
        for seed in range(5):
            inst = random_usec_ls_instance(12, 12, DIM, extent=3.0, seed=seed)
            got = solve_usec_ls_with_clusterer(
                inst.red, inst.blue, make_reduction_clusterer
            )
            assert got == usec_ls_brute(inst.red, inst.blue)
            checked += 1
        return checked, time.perf_counter() - start

    checked, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["instances_checked"] = checked
    assert checked == 5
