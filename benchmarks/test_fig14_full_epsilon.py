"""Figure 14 — fully-dynamic average workload cost vs eps.

Paper: mixed workloads (%ins = 5/6) with eps/d in {50, 100, 200, 400, 800}.

Expected shape: IncDBSCAN is "essentially inapplicable for large eps"
(every deletion's BFS touches huge neighborhoods), while our cost is flat
or falls with eps.

Series go to benchmarks/results/fig14_full_epsilon.txt.
"""

from __future__ import annotations

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.workload.config import (
    DEFAULT_INSERT_FRACTION,
    EPS_PER_D,
    MINPTS,
    RHO,
    SLOW_BENCH_N,
    bench_n,
)

from figlib import cached_workload, execute, summarize_average, write_results

DIMENSIONS = (2, 3)
N = bench_n(SLOW_BENCH_N)

_rows = []


@pytest.fixture(scope="module", autouse=True)
def _dump_series():
    yield
    if _rows:
        write_results(
            "fig14_full_epsilon.txt",
            f"Figure 14: fully-dynamic avg workload cost vs eps/d, N={N}, "
            f"MinPts={MINPTS}, rho={RHO}, %ins={DEFAULT_INSERT_FRACTION:.3f}",
            [summarize_average(sorted(_rows))],
        )


@pytest.mark.parametrize("dim", DIMENSIONS)
@pytest.mark.parametrize("eps_per_d", EPS_PER_D)
@pytest.mark.parametrize("algo", ["Double-Approx", "IncDBSCAN"])
def test_fig14_cost_vs_epsilon(benchmark, dim, eps_per_d, algo):
    eps = float(eps_per_d * dim)
    factory = {
        "Double-Approx": lambda: FullyDynamicClusterer(eps, MINPTS, rho=RHO, dim=dim),
        "IncDBSCAN": lambda: IncDBSCAN(eps, MINPTS, dim=dim),
    }[algo]
    workload = cached_workload(N, dim, insert_fraction=DEFAULT_INSERT_FRACTION)
    result = execute(benchmark, factory, workload)
    _rows.append((f"d={dim} eps/d={eps_per_d}", algo, result.average_cost))
    assert result.average_cost > 0
