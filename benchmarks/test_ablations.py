"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **CC structure**: HDT dynamic connectivity vs naive BFS recomputation
   inside the fully-dynamic clusterer.  HDT pays more per edge update but
   never pays O(V + E) per query-after-delete; on query-heavy workloads
   the naive structure collapses.
2. **aBCP protocol**: Lemma 3's amortized de-listing vs rescanning the
   smaller cell side on every witness loss.
3. **Neighbor discovery**: precomputed offset tables vs scanning the cell
   registry, across dimensions (the (2 sqrt(d))^d blow-up).

Rows go to benchmarks/results/ablations.txt.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.grid import Grid
from repro.workload.config import MINPTS, RHO, SLOW_BENCH_N, bench_n, eps_for
from repro.workload.seed_spreader import seed_spreader

from figlib import cached_workload, execute, write_results

N = bench_n(SLOW_BENCH_N)
DIM = 2
EPS = eps_for(DIM)
QFREQ = max(1, N // 10)

_rows = []


@pytest.fixture(scope="module", autouse=True)
def _dump_series():
    yield
    if _rows:
        write_results(
            "ablations.txt",
            f"Ablations: N={N}, d={DIM}, eps={EPS}, MinPts={MINPTS}, rho={RHO}",
            [["ablation\tvariant\tavg_cost_us"]
             + [f"{a}\t{v}\t{c:.2f}" for a, v, c in _rows]],
        )


@pytest.mark.parametrize("connectivity", ["hdt", "naive"])
def test_ablation_cc_structure(benchmark, connectivity):
    workload = cached_workload(
        N, DIM, insert_fraction=5 / 6, query_frequency=QFREQ
    )
    result = execute(
        benchmark,
        lambda: FullyDynamicClusterer(
            EPS, MINPTS, rho=RHO, dim=DIM, connectivity=connectivity
        ),
        workload,
    )
    _rows.append(("cc-structure", connectivity, result.average_cost))


@pytest.mark.parametrize("bcp", ["abcp", "rescan", "suffix"])
def test_ablation_bcp_protocol(benchmark, bcp):
    workload = cached_workload(N, DIM, insert_fraction=5 / 6, query_frequency=QFREQ)
    result = execute(
        benchmark,
        lambda: FullyDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM, bcp=bcp),
        workload,
    )
    _rows.append(("bcp-protocol", bcp, result.average_cost))


@pytest.mark.parametrize("dim", [2, 3, 5])
@pytest.mark.parametrize("strategy", ["offsets", "scan"])
def test_ablation_neighbor_discovery(benchmark, dim, strategy):
    """Time neighbor discovery over the cells of a seed-spreader dataset."""
    pts = seed_spreader(2000, dim, seed=dim)
    grid = Grid(eps_for(dim), dim, rho=RHO, strategy=strategy)
    registry = {}
    for p in pts:
        registry[grid.cell_of(p)] = True
    cells = list(registry)

    def run():
        start = time.perf_counter()
        total = 0
        for cell in cells:
            total += len(grid.neighbors_of(cell, registry))
        return total, time.perf_counter() - start

    total, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["neighbor_links"] = total
    benchmark.extra_info["cells"] = len(cells)
    _rows.append(
        (f"neighbors d={dim}", strategy, elapsed * 1e6 / max(1, len(cells)))
    )
    # Both strategies must find the same adjacency.
    reference = Grid(eps_for(dim), dim, rho=RHO, strategy="scan")
    sample = random.Random(0).sample(cells, min(20, len(cells)))
    for cell in sample:
        assert set(grid.neighbors_of(cell, registry)) == set(
            reference.neighbors_of(cell, registry)
        )
