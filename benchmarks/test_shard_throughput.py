"""Ingest-throughput scaling of the sharded engine router.

Not a paper figure: this benchmark records what horizontal scale-out
buys on the paper's own data distribution.  A 2d seed-spreader stream
of ``REPRO_BENCH_N`` points (default 50000) is ingested in chunks
through sharded deployments of 1, 2 and 4 shards under both executors;
the headline comparison is 4 shards on the process-pool executor
against 1 shard on the same executor — real parallelism minus the halo
replication and transport costs, through the identical routing and
merge path.

The >= 1.5x scaling floor only arms on machines that can actually run
four shard workers in parallel (``os.cpu_count() >= 4``) at full scale
(N >= 20000); smaller or narrower runs record their numbers and assert
only that the path is not degenerate.  Clustering equivalence is
asserted separately (and exhaustively) in
``tests/test_shard_equivalence.py``.

Results are written to benchmarks/results/shard_throughput.txt.
"""

from __future__ import annotations

import os
import time

import repro.api
from repro.workload.config import MINPTS, bench_n, eps_for
from repro.workload.seed_spreader import seed_spreader

from figlib import write_results

DIM = 2
N = bench_n(50000)
EPS = eps_for(DIM)
#: Ingest chunk size: several fan-outs per run, like a buffered
#: ingest-session stream, rather than one monolithic batch.
CHUNK = 10000
#: Ownership block side (cells per axis).  Larger than the default 16:
#: at 50k points the dataset still spans dozens of blocks per axis,
#: and the halo-replication factor drops to ~1.3x.
SHARD_BLOCK = 32

ASSERT_FLOOR_N = 20000
CPUS = os.cpu_count() or 1

_collected = {}


def _ingest_run(shards: int, executor: str):
    points = seed_spreader(N, DIM, seed=42)
    engine = repro.api.open(
        algorithm="semi",
        eps=EPS,
        minpts=MINPTS,
        rho=0.0,
        dim=DIM,
        shards=shards,
        shard_block=SHARD_BLOCK,
        shard_executor=executor,
    )
    try:
        start = time.perf_counter()
        for lo in range(0, len(points), CHUNK):
            engine.ingest(points[lo : lo + CHUNK])
        elapsed = time.perf_counter() - start
        assert len(engine) == N
        stats = engine.stats()
        replication = stats.replicas / stats.points if stats.points else 0.0
    finally:
        engine.close()
    label = f"{executor} x{shards}"
    _collected[label] = (N, elapsed, N / elapsed if elapsed else 0.0, replication)
    return elapsed


def test_serial_executor_scaling_overhead():
    """Serial shards record the pure routing + replication overhead."""
    t1 = _ingest_run(1, "serial")
    t4 = _ingest_run(4, "serial")
    # Single-core by construction: 4 serial shards do ~replication-factor
    # times the work of 1, so this only guards against degeneration.
    assert t4 < t1 * 4.0, (
        f"serial 4-shard ingest degenerated: {t4:.2f}s vs {t1:.2f}s x4"
    )


def test_process_pool_ingest_scaling():
    """The headline: 4 process-pool shards vs 1, same routing and merge."""
    t1 = _ingest_run(1, "process")
    _ingest_run(2, "process")
    t4 = _ingest_run(4, "process")
    speedup = t1 / t4 if t4 > 0 else float("inf")
    _collected["process x4 vs x1"] = (N, t1, t4, speedup)
    if N >= ASSERT_FLOOR_N and CPUS >= 4:
        assert speedup >= 1.5, (
            f"4-shard process-pool ingest must be >= 1.5x a 1-shard "
            f"deployment at N={N} on {CPUS} cpus, got {speedup:.2f}x "
            f"({t1:.3f}s vs {t4:.3f}s)"
        )
    else:
        # Not enough cores (or too small a run) for the floor to be
        # meaningful; just guard against a degenerate routing path.
        assert speedup > 0.2, f"sharded ingest degenerated: {speedup:.2f}x"


def test_zz_write_results():
    """Runs last (name-ordered): dump the collected series."""
    lines = ["scenario\tn\tingest_s\tpoints_per_s\treplication"]
    for name, (n, elapsed, rate, repl) in _collected.items():
        if name.endswith("vs x1"):
            continue
        lines.append(f"{name}\t{n}\t{elapsed:.4f}\t{rate:.0f}\t{repl:.3f}")
    headline = _collected.get("process x4 vs x1")
    speed_lines = ["comparison\tn\tbaseline_s\tsharded_s\tspeedup"]
    if headline is not None:
        n, t1, t4, speedup = headline
        speed_lines.append(
            f"process x4 vs x1\t{n}\t{t1:.4f}\t{t4:.4f}\t{speedup:.2f}"
        )
    write_results(
        "shard_throughput.txt",
        f"Sharded ingest throughput: d={DIM}, eps={EPS}, MinPts={MINPTS}, "
        f"rho=0, semi family, chunk={CHUNK}, shard_block={SHARD_BLOCK}, "
        f"cpus={CPUS}, seed-spreader data "
        f"(scaling floor arms at N>={ASSERT_FLOOR_N} and cpus>=4)",
        [lines, speed_lines],
    )
    assert _collected, "no measurements collected"
