"""Ingest-throughput scaling of the sharded engine router.

Not a paper figure: this benchmark records what horizontal scale-out
buys on the paper's own data distribution.  A 2d seed-spreader stream
of ``REPRO_BENCH_N`` points (default 50000) is ingested in chunks
through sharded deployments of 1, 2 and 4 shards — the serial executor
(pure routing + replication overhead) and the process executor under
**both** transports, ``pickle`` (whole messages through the pipe) and
``shm`` (bulk arrays through pooled shared memory).  Every scenario is
timed best-of-``REPEATS``: one-shot numbers on shared-host machines mix
the code's cost with the host's steal-time epochs, and it is the code
we are benchmarking.

Two regression tripwires guard the transport, sized to what the machine
can physically show:

* **Transport tax** (no cpu gate — meaningful even on a 1-cpu
  container): 4 process shards under ``shm`` may cost at most
  ``MAX_TRANSPORT_TAX`` times 4 *serial* shards — same routing, same
  engines, same compute, so the ratio is purely what crossing the
  process boundary costs.  The pickle transport intermittently blows
  this up several-fold (160KB messages through 64KB pipes, blocking
  writes ping-ponging across time-sliced workers — the negative-scaling
  bug); the shm payload plane holds it near 1x.
* **Parallel scaling** (needs >= 2 cpus for 4 shards to overlap at
  all): ``shm`` 4-shard ingest must be >= 1.0x 1-shard from
  ``TRIPWIRE_N`` up, and >= 1.5x from ``ASSERT_FLOOR_N`` up on >= 4
  cpus.  On a single cpu the same-transport ratio is bounded by halo
  replication plus scheduler latency (~0.9x is the physical ceiling),
  so there the transport-tax tripwire is the binding one.

Clustering equivalence is asserted separately (and exhaustively) in
``tests/test_shard_equivalence.py``.

Results are written to benchmarks/results/shard_throughput.txt.
"""

from __future__ import annotations

import gc
import os
import time

import repro.api
from repro.workload.config import MINPTS, bench_n, eps_for
from repro.workload.seed_spreader import seed_spreader

from figlib import write_results

DIM = 2
N = bench_n(50000)
EPS = eps_for(DIM)
#: Ingest chunk size: several fan-outs per run, like a buffered
#: ingest-session stream, rather than one monolithic batch.
CHUNK = 10000
#: Ownership block side (cells per axis).  Large enough that halo
#: replication is ~0.5% at 50k points — so the executor comparisons
#: measure transport cost, not replicated engine work.
SHARD_BLOCK = 128
#: Timed repetitions per scenario; the best is recorded.
REPEATS = 2

#: The multi-core >= 1.5x floor arms from here up (needs cpus >= 4).
ASSERT_FLOOR_N = 10000
#: The scaling tripwires arm from here up.
TRIPWIRE_N = 20000
#: Ceiling on process-x4 (shm) wall vs serial-x4 wall — the pure cost
#: of the process boundary under the zero-copy transport.
MAX_TRANSPORT_TAX = 1.6
CPUS = os.cpu_count() or 1

_collected = {}


def _one_run(shards: int, executor: str, transport: str | None) -> float:
    points = seed_spreader(N, DIM, seed=42)
    engine = repro.api.open(
        algorithm="semi",
        eps=EPS,
        minpts=MINPTS,
        rho=0.0,
        dim=DIM,
        shards=shards,
        shard_block=SHARD_BLOCK,
        shard_executor=executor,
        shard_transport=transport,
    )
    try:
        # Pending collector debt from earlier runs must not be paid
        # inside someone else's timing window.
        gc.collect()
        start = time.perf_counter()
        for lo in range(0, len(points), CHUNK):
            engine.ingest(points[lo : lo + CHUNK])
        elapsed = time.perf_counter() - start
        assert len(engine) == N
        stats = engine.stats()
        replication = stats.replicas / stats.points if stats.points else 0.0
        # A timed run that quietly lost and rebuilt a worker measured
        # recovery, not transport — refuse to record such a number.
        assert stats.restarts == 0, (
            f"benchmark run performed {stats.restarts} supervised worker "
            f"restart(s); its timing is not a transport measurement"
        )
    finally:
        engine.close()
    return elapsed, replication


def _ingest_run(shards: int, executor: str, transport: str | None = None):
    elapsed, replication = min(
        (_one_run(shards, executor, transport) for _ in range(REPEATS)),
        key=lambda pair: pair[0],
    )
    label = f"{executor} x{shards}"
    if transport is not None:
        label += f" ({transport})"
    _collected[label] = (N, elapsed, N / elapsed if elapsed else 0.0, replication)
    return elapsed


def test_serial_executor_scaling_overhead():
    """Serial shards record the pure routing + replication overhead."""
    t1 = _ingest_run(1, "serial")
    t4 = _ingest_run(4, "serial")
    # Single-core by construction: 4 serial shards do ~replication-factor
    # times the work of 1, so this only guards against degeneration.
    assert t4 < t1 * 4.0, (
        f"serial 4-shard ingest degenerated: {t4:.2f}s vs {t1:.2f}s x4"
    )


def _process_scaling(transport: str) -> float:
    t1 = _ingest_run(1, "process", transport)
    _ingest_run(2, "process", transport)
    t4 = _ingest_run(4, "process", transport)
    speedup = t1 / t4 if t4 > 0 else float("inf")
    _collected[f"speedup: x4 over x1 ({transport})"] = (N, t1, t4, speedup)
    serial4 = _collected.get("serial x4")
    if serial4 is not None:
        tax = t4 / serial4[1] if serial4[1] else float("inf")
        _collected[f"transport tax: x4 over serial x4 ({transport})"] = (
            N, serial4[1], t4, tax,
        )
    return speedup


def test_process_pool_ingest_scaling_pickle():
    """The PR 5 baseline transport, kept measured for the comparison."""
    speedup = _process_scaling("pickle")
    # Pickling every batch both ways historically costs more than four
    # single-core shards recover; only guard against degeneration here.
    assert speedup > 0.2, f"pickle-transport ingest degenerated: {speedup:.2f}x"


def test_process_pool_ingest_scaling_shm():
    """The headline: 4 shm-transport shards vs 1, same routing and merge."""
    speedup = _process_scaling("shm")
    tax_entry = _collected.get("transport tax: x4 over serial x4 (shm)")
    if N >= TRIPWIRE_N and tax_entry is not None:
        # No cpu gate: the process boundary may cost scheduling, never
        # payload serialization.  This is the tripwire that catches the
        # negative-scaling bug class even on a 1-cpu container, where
        # parallel speedups are physically impossible to observe.
        tax = tax_entry[3]
        assert tax <= MAX_TRANSPORT_TAX, (
            f"shm transport tax regressed: process x4 ran {tax:.2f}x the "
            f"wall of serial x4 at N={N} (allowed <= {MAX_TRANSPORT_TAX}x) "
            f"— the transport is eating the scale-out again"
        )
    if N >= TRIPWIRE_N and CPUS >= 2:
        # With real parallelism available, scaling 1 -> 4 shards must
        # never lose throughput.
        assert speedup >= 1.0, (
            f"4-shard shm-transport ingest ran slower than 1-shard at "
            f"N={N} on {CPUS} cpus: {speedup:.2f}x"
        )
    if N >= ASSERT_FLOOR_N and CPUS >= 4:
        assert speedup >= 1.5, (
            f"4-shard process ingest (shm) must be >= 1.5x a 1-shard "
            f"deployment at N={N} on {CPUS} cpus, got {speedup:.2f}x"
        )
    if N < TRIPWIRE_N:
        assert speedup > 0.2, f"sharded ingest degenerated: {speedup:.2f}x"


def test_zz_write_results():
    """Runs last (name-ordered): dump the collected series."""
    lines = ["scenario\tn\tingest_s\tpoints_per_s\treplication"]
    for name, (n, elapsed, rate, repl) in _collected.items():
        if "over" in name:
            continue
        lines.append(f"{name}\t{n}\t{elapsed:.4f}\t{rate:.0f}\t{repl:.3f}")
    # speedup rows read reference/x4 (higher is better); tax rows read
    # x4/reference (lower is better) — the row names say which.
    speed_lines = ["comparison\tn\treference_s\tprocess_x4_s\tratio"]
    for transport in ("pickle", "shm"):
        for kind in (f"speedup: x4 over x1 ({transport})",
                     f"transport tax: x4 over serial x4 ({transport})"):
            entry = _collected.get(kind)
            if entry is not None:
                n, base, cont, ratio = entry
                speed_lines.append(
                    f"{kind}\t{n}\t{base:.4f}\t{cont:.4f}\t{ratio:.2f}"
                )
    write_results(
        "shard_throughput.txt",
        f"Sharded ingest throughput: d={DIM}, eps={EPS}, MinPts={MINPTS}, "
        f"rho=0, semi family, chunk={CHUNK}, shard_block={SHARD_BLOCK}, "
        f"best of {REPEATS}, cpus={CPUS}, restarts=0 asserted per run, "
        f"seed-spreader data (shm "
        f"transport-tax tripwire <= {MAX_TRANSPORT_TAX}x at N>={TRIPWIRE_N}; "
        f">=1.0x scaling at cpus>=2; >=1.5x floor at N>={ASSERT_FLOOR_N} "
        f"and cpus>=4)",
        [lines, speed_lines],
    )
    assert _collected, "no measurements collected"
