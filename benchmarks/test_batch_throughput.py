"""Batch-vs-sequential throughput of the bulk-update engine.

Not a paper figure: this benchmark records what the vectorized
``insert_many`` / ``delete_many`` paths buy over point-at-a-time updates
on the paper's own data distribution.  The headline measurement is a
2d seed-spreader batch of ``REPRO_BENCH_N`` points (default 50000)
through the semi-dynamic clusterer at the Table 2 defaults, where the
bulk path must be at least 3x faster than sequential insertion; a
second measurement covers the fully-dynamic clusterer's bulk insert +
bulk delete.  Equivalence of the outputs is asserted separately (and
exhaustively) in ``tests/test_batch_equivalence.py``.

Results are written to benchmarks/results/batch_throughput.txt.
"""

from __future__ import annotations

import time

import repro.api
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.workload.config import MINPTS, RHO, bench_n, eps_for
from repro.workload.seed_spreader import seed_spreader

from figlib import write_results

DIM = 2
N = bench_n(50000)
EPS = eps_for(DIM)

#: Below this batch size numpy setup overhead can eat the win; the
#: speedup floor is only asserted for full-scale runs.
ASSERT_FLOOR_N = 20000

_collected = {}


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_semi_insert_many_speedup():
    points = seed_spreader(N, DIM, seed=42)
    sequential = SemiDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM)

    def run_sequential():
        for p in points:
            sequential.insert(p)

    t_seq = _timed(run_sequential)
    batched = SemiDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM)
    t_bat = _timed(lambda: batched.insert_many(points))
    speedup = t_seq / t_bat if t_bat > 0 else float("inf")
    _collected["semi insert"] = (N, t_seq, t_bat, speedup)
    assert len(batched) == len(sequential) == N
    if N >= ASSERT_FLOOR_N:
        assert speedup >= 3.0, (
            f"insert_many must be >= 3x sequential at N={N}, got "
            f"{speedup:.2f}x ({t_seq:.3f}s vs {t_bat:.3f}s)"
        )
    else:
        assert speedup > 0.2, f"batch path degenerated: {speedup:.2f}x"


def test_full_bulk_update_speedup():
    n = min(N, 20000)
    points = seed_spreader(n, DIM, seed=43)
    sequential = FullyDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM)

    def run_sequential():
        pids = [sequential.insert(p) for p in points]
        for pid in pids[: n // 2]:
            sequential.delete(pid)

    t_seq = _timed(run_sequential)
    batched = FullyDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM)

    def run_batched():
        pids = batched.insert_many(points)
        batched.delete_many(pids[: n // 2])

    t_bat = _timed(run_batched)
    speedup = t_seq / t_bat if t_bat > 0 else float("inf")
    _collected["full insert+delete"] = (n, t_seq, t_bat, speedup)
    assert len(batched) == len(sequential) == n - n // 2
    if n >= ASSERT_FLOOR_N:
        assert speedup >= 1.5, (
            f"fully-dynamic bulk path must beat sequential at n={n}, got "
            f"{speedup:.2f}x ({t_seq:.3f}s vs {t_bat:.3f}s)"
        )
    else:
        assert speedup > 0.2, f"batch path degenerated: {speedup:.2f}x"


def test_engine_facade_overhead():
    """`Engine.ingest` must stay within 5% of the direct bulk path.

    The service facade (`repro.api`) is glue, not compute: one epoch
    stamp on top of `insert_many`.  This measures the same 2d
    seed-spreader batch as `test_semi_insert_many_speedup` through
    both entry points, best-of-two each to damp scheduler noise, and
    holds the Engine path to within 5% of the direct path (so the
    headline batch speedup over sequential insertion survives the
    facade intact).
    """
    points = seed_spreader(N, DIM, seed=42)

    def direct_run():
        algo = SemiDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM)
        algo.insert_many(points)
        return algo

    def engine_run():
        engine = repro.api.open(
            algorithm="semi", eps=EPS, minpts=MINPTS, rho=RHO, dim=DIM
        )
        engine.ingest(points)
        return engine

    t_direct = min(_timed(direct_run) for _ in range(2))
    t_engine = min(_timed(engine_run) for _ in range(2))
    ratio = t_engine / t_direct if t_direct > 0 else float("inf")
    # Stored as a speedup (direct/engine) so the results-file column
    # reads like the others; ~1.0 means the facade is free.
    _collected["semi engine vs direct"] = (
        N, t_direct, t_engine, 1.0 / ratio if ratio else 0.0
    )
    seq = _collected.get("semi insert")
    if seq is not None and t_engine > 0:
        _collected["semi engine vs sequential"] = (
            N, seq[1], t_engine, seq[1] / t_engine
        )
    if N >= ASSERT_FLOOR_N:
        assert ratio <= 1.05, (
            f"Engine.ingest must be within 5% of direct insert_many at "
            f"N={N}, got {ratio:.3f}x ({t_engine:.3f}s vs {t_direct:.3f}s)"
        )
    else:
        # Small runs only smoke the path; noise dominates the ratio.
        assert ratio <= 2.0, f"engine path degenerated: {ratio:.2f}x"


def test_zz_write_results():
    """Runs last (name-ordered): dump the collected series."""
    lines = ["scenario\tn\tsequential_s\tbatched_s\tspeedup"]
    for name, (n, t_seq, t_bat, speedup) in _collected.items():
        lines.append(f"{name}\t{n}\t{t_seq:.4f}\t{t_bat:.4f}\t{speedup:.2f}")
    write_results(
        "batch_throughput.txt",
        f"Bulk-update engine throughput: d={DIM}, eps={EPS}, "
        f"MinPts={MINPTS}, rho={RHO}, seed-spreader data",
        [lines],
    )
    assert _collected, "no measurements collected"
