"""Figure 15 — fully-dynamic average workload cost vs insertion percentage.

Paper: mixed workloads with %ins in {2/3, 4/5, 5/6, 8/9, 10/11}.

Expected shape: every method gets cheaper as insertions dominate (fewer
deletions = less hard work), and our algorithms win at every mix; the gap
is largest at low %ins, where IncDBSCAN's deletion BFS fires most often.

Series go to benchmarks/results/fig15_full_insfrac.txt.
"""

from __future__ import annotations

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.workload.config import (
    INSERT_FRACTIONS,
    MINPTS,
    RHO,
    SLOW_BENCH_N,
    bench_n,
    eps_for,
)

from figlib import cached_workload, execute, summarize_average, write_results

DIM = 2
N = bench_n(SLOW_BENCH_N)
EPS = eps_for(DIM)

_rows = []

_FRACTION_LABELS = {
    2 / 3: "2/3",
    4 / 5: "4/5",
    5 / 6: "5/6",
    8 / 9: "8/9",
    10 / 11: "10/11",
}


@pytest.fixture(scope="module", autouse=True)
def _dump_series():
    yield
    if _rows:
        write_results(
            "fig15_full_insfrac.txt",
            f"Figure 15: fully-dynamic avg workload cost vs %ins, d={DIM}, "
            f"N={N}, eps={EPS}, MinPts={MINPTS}, rho={RHO}",
            [summarize_average(_rows)],
        )


@pytest.mark.parametrize("fraction", INSERT_FRACTIONS)
@pytest.mark.parametrize("algo", ["Double-Approx", "IncDBSCAN"])
def test_fig15_cost_vs_insert_fraction(benchmark, fraction, algo):
    factory = {
        "Double-Approx": lambda: FullyDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM),
        "IncDBSCAN": lambda: IncDBSCAN(EPS, MINPTS, dim=DIM),
    }[algo]
    workload = cached_workload(N, DIM, insert_fraction=fraction)
    result = execute(benchmark, factory, workload)
    _rows.append((f"%ins={_FRACTION_LABELS[fraction]}", algo, result.average_cost))
    assert result.average_cost > 0
