"""Figure 12 — fully-dynamic algorithms in 2D.

Paper: mixed workload (%ins = 5/6), d = 2, eps = 100d, MinPts = 10,
rho = 0.001.  Plots avgcost(t) (Fig 12a) and maxupdcost(t) (Fig 12b) for
IncDBSCAN, 2d-Full-Exact, and Double-Approx.

Expected shape: our algorithms beat IncDBSCAN by a large factor on avgcost
*and* — new versus the semi-dynamic case — by a clear factor on
maxupdcost too, because IncDBSCAN's deletions trigger BFS with many range
queries while ours never BFS.

Series go to benchmarks/results/fig12_full_2d.txt.
"""

from __future__ import annotations

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.workload.config import (
    DEFAULT_INSERT_FRACTION,
    MINPTS,
    RHO,
    bench_n,
    eps_for,
)

from figlib import cached_workload, execute, series_lines, write_results

DIM = 2
N = bench_n(2500)
EPS = eps_for(DIM)
QFREQ = max(1, N // 20)

ALGORITHMS = {
    "2d-Full-Exact": lambda: FullyDynamicClusterer(EPS, MINPTS, rho=0.0, dim=DIM),
    "Double-Approx": lambda: FullyDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM),
    "IncDBSCAN": lambda: IncDBSCAN(EPS, MINPTS, dim=DIM),
}

_collected = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_series():
    yield
    if _collected:
        write_results(
            "fig12_full_2d.txt",
            f"Figure 12: fully-dynamic, d={DIM}, N={N}, eps={EPS}, "
            f"MinPts={MINPTS}, rho={RHO}, %ins={DEFAULT_INSERT_FRACTION:.3f}",
            [series_lines(name, res) for name, res in _collected.items()],
        )


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_fig12_fully_dynamic_2d(benchmark, name):
    workload = cached_workload(
        N, DIM, insert_fraction=DEFAULT_INSERT_FRACTION, query_frequency=QFREQ
    )
    result = execute(benchmark, ALGORITHMS[name], workload)
    _collected[name] = result
    assert result.average_cost > 0
