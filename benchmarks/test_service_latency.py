"""End-to-end latency of the streaming service under concurrent load.

Not a paper figure: this benchmark measures what :mod:`repro.service`
adds on top of the bare engine — JSON-lines framing, per-session
queues, the active-writer flush dance — under ``CLIENTS`` concurrent
sessions multiplexed onto one engine over real localhost sockets.

Each synthetic client drives its connection from the fitted
:func:`repro.workload.traffic.default_service_mix` sampler (the
fit-and-sample model, so the traffic shape is learned from a trace,
not hard-coded), ingesting seed-spreader points and deleting/querying
only ids it owns.  Per-op round-trip latencies are recorded
client-side; the run reports p50/p99 per op kind plus aggregate ops/s
to ``benchmarks/results/service_latency.txt``.

The asserted floors are deliberately generous first pins — tripwires
against collapse (service errors, sub-interactive throughput), not
performance targets; tighten them once a history exists.
"""

from __future__ import annotations

import asyncio
import time

import repro.api as api
from repro.service import ClusterService, ServiceClient, ServiceLimits
from repro.workload.config import MINPTS, RHO, bench_n, eps_for
from repro.workload.seed_spreader import seed_spreader
from repro.workload.traffic import default_service_mix

from figlib import write_results

DIM = 2
EPS = eps_for(DIM)
CLIENTS = 4
#: Ops per client, scaled with REPRO_BENCH_N (default 2000 -> 100).
OPS_PER_CLIENT = max(40, bench_n(2000) // 20)

#: Generous first-pin floors (tripwires, not targets).
MIN_OPS_PER_SEC = 20.0
MAX_P99_US = 5_000_000.0  # 5 s

_collected = {}


async def _client_run(host, port, ops, points, latencies):
    """One synthetic session: execute its sampled op mix, timing each."""
    client = await ServiceClient.connect(host, port)
    live = []
    cursor = 0
    try:
        for op in ops:
            kind, size = op.kind, op.size
            if kind == "delete" and not live:
                kind = "ingest"  # nothing to delete yet: warm up instead
            if kind == "cgroup_by" and not live:
                kind = "snapshot"
            start = time.perf_counter()
            if kind == "ingest":
                batch = [
                    list(points[(cursor + i) % len(points)])
                    for i in range(size)
                ]
                cursor += size
                acked = await client.ingest(batch)
                live.extend(acked["pids"])
            elif kind == "delete":
                victims = live[: min(size, len(live))]
                del live[: len(victims)]
                await client.delete(victims)
            elif kind == "cgroup_by":
                await client.cgroup_by(live[-min(size, len(live)):])
            else:
                await client.snapshot()
            latencies[kind].append((time.perf_counter() - start) * 1e6)
    finally:
        await client.aclose()


async def _drive_fleet(engine):
    service = ClusterService(
        engine,
        limits=ServiceLimits(max_sessions=CLIENTS + 2, queue_depth=64),
    )
    await service.start("127.0.0.1", 0)
    host, port = service.address
    sampler = default_service_mix()
    pool = seed_spreader(max(2000, OPS_PER_CLIENT * 32), DIM, seed=42)
    latencies = {k: [] for k in ("ingest", "delete", "cgroup_by", "snapshot")}
    try:
        start = time.perf_counter()
        await asyncio.gather(*[
            _client_run(
                host,
                port,
                sampler.sample(OPS_PER_CLIENT, seed=1000 + i),
                pool[i::CLIENTS],
                latencies,
            )
            for i in range(CLIENTS)
        ])
        elapsed = time.perf_counter() - start
    finally:
        await service.aclose()
    return latencies, elapsed, service.stats


def _percentile(values, pct):
    if not values:
        return 0.0
    ordered = sorted(values)
    k = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
    return ordered[k]


def test_concurrent_client_latency():
    engine = api.open(
        algorithm="full", eps=EPS, minpts=MINPTS, rho=RHO, dim=DIM
    )
    try:
        latencies, elapsed, stats = asyncio.run(_drive_fleet(engine))
    finally:
        engine.close()
    total_ops = sum(len(v) for v in latencies.values())
    assert total_ops == CLIENTS * OPS_PER_CLIENT
    assert stats.ops_failed == 0, "service returned errors under load"
    assert stats.failed_drains == 0
    ops_per_sec = total_ops / elapsed if elapsed > 0 else float("inf")
    every = [v for vs in latencies.values() for v in vs]
    _collected["aggregate"] = (
        total_ops, ops_per_sec, _percentile(every, 50), _percentile(every, 99)
    )
    for kind, values in latencies.items():
        if values:
            _collected[kind] = (
                len(values),
                len(values) / elapsed,
                _percentile(values, 50),
                _percentile(values, 99),
            )
    assert ops_per_sec >= MIN_OPS_PER_SEC, (
        f"service throughput collapsed: {ops_per_sec:.1f} ops/s under "
        f"{CLIENTS} clients"
    )
    p99 = _percentile(every, 99)
    assert p99 <= MAX_P99_US, (
        f"service p99 latency collapsed: {p99 / 1e3:.1f} ms"
    )


def test_zz_write_results():
    """Runs last (name-ordered): dump the collected series."""
    lines = ["series\tops\tops_per_sec\tp50_us\tp99_us"]
    for name, (ops, rate, p50, p99) in _collected.items():
        lines.append(f"{name}\t{ops}\t{rate:.1f}\t{p50:.0f}\t{p99:.0f}")
    write_results(
        "service_latency.txt",
        f"Streaming service latency: {CLIENTS} concurrent clients x "
        f"{OPS_PER_CLIENT} ops (default_service_mix traffic), d={DIM}, "
        f"eps={EPS}, MinPts={MINPTS}, rho={RHO}, full-exact engine, "
        f"localhost JSON-lines",
        [lines],
    )
    assert _collected, "no measurements collected"
