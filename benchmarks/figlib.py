"""Shared machinery for the figure/table benchmarks.

Every benchmark module reproduces one table or figure of the paper's
Section 8.  The common pattern:

1. build (and cache) a Section 8.1 workload for the figure's parameters;
2. run each competing algorithm over it via ``run_workload``;
3. register the run with pytest-benchmark (so ``--benchmark-only``
   produces the head-to-head table), and
4. emit the figure's series (avgcost(t), maxupdcost(t), or average
   workload cost per x-value) into ``benchmarks/results/<name>.txt``,
   mirroring the rows/curves the paper plots.

Workload sizes default to the scaled-down values in
``repro.workload.config`` and honour ``REPRO_BENCH_N``.
"""

from __future__ import annotations

import statistics
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.workload.metrics import avgcost_series, checkpoints, maxupdcost_series
from repro.workload.runner import RunResult, run_workload
from repro.workload.workload import Workload, generate_workload

RESULTS_DIR = Path(__file__).parent / "results"

_workload_cache: Dict[tuple, Workload] = {}


def cached_workload(
    n_updates: int,
    dim: int,
    insert_fraction: float = 1.0,
    query_frequency: Optional[int] = None,
    seed: int = 42,
) -> Workload:
    """One workload per parameter combination, shared across algorithms."""
    key = (n_updates, dim, round(insert_fraction, 6), query_frequency, seed)
    if key not in _workload_cache:
        _workload_cache[key] = generate_workload(
            n_updates,
            dim,
            insert_fraction=insert_fraction,
            query_frequency=query_frequency,
            seed=seed,
        )
    return _workload_cache[key]


def execute(
    benchmark, factory: Callable[[], object], workload: Workload
) -> RunResult:
    """Run the workload once under pytest-benchmark and return the result."""
    holder: List[RunResult] = []

    def once():
        holder.clear()
        holder.append(run_workload(factory(), workload))

    benchmark.pedantic(once, rounds=1, iterations=1)
    result = holder[0]
    benchmark.extra_info["avg_cost_us"] = round(result.average_cost, 2)
    benchmark.extra_info["max_update_cost_us"] = round(result.max_update_cost, 2)
    queries = result.query_costs()
    if queries:
        benchmark.extra_info["avg_query_cost_us"] = round(statistics.mean(queries), 2)
    return result


def tail_lines(rows: List[Tuple[str, RunResult]]) -> List[str]:
    """p50/p99 update- and query-tail rows for a set of runs.

    The per-update percentiles amortize batch entries over the updates
    they cover, so sequential and batched runs stay comparable; the
    query percentiles are raw per-query latencies (the paper's query
    cost).  These are the tails the CI tripwires watch.
    """
    lines = [
        "scenario\tp50_update_us\tp99_update_us\tp50_query_us\tp99_query_us"
    ]
    for name, result in rows:
        lines.append(
            f"{name}\t{result.per_update_percentile(50):.2f}\t"
            f"{result.per_update_percentile(99):.2f}\t"
            f"{result.query_percentile(50):.2f}\t"
            f"{result.query_percentile(99):.2f}"
        )
    return lines


def series_lines(name: str, result: RunResult, marks_count: int = 10) -> List[str]:
    """avgcost(t) and maxupdcost(t) rows for one algorithm run."""
    marks = checkpoints(len(result.op_costs), marks_count)
    avg = avgcost_series(result.op_costs, marks)
    mx = maxupdcost_series(result.op_kinds, result.op_costs, marks)
    lines = [f"# {name}"]
    lines.append("t\tavgcost_us\tmaxupdcost_us")
    for (t, a), (_, m) in zip(avg, mx):
        lines.append(f"{t}\t{a:.2f}\t{m:.2f}")
    return lines


def write_results(filename: str, header: str, blocks: List[List[str]]) -> Path:
    """Write one figure's series blocks to benchmarks/results/.

    The header is stamped with the active kernel backend
    (:mod:`repro.kernels`), so every results file records which compute
    substrate produced its numbers.
    """
    from repro import kernels

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    content = [f"# {header} [backend={kernels.active_backend_name()}]"]
    for block in blocks:
        content.append("")
        content.extend(block)
    path.write_text("\n".join(content) + "\n")
    return path


def summarize_average(
    rows: List[Tuple[str, float, float]]
) -> List[str]:
    """'x  algo  avg-cost' rows for the cost-vs-parameter figures."""
    lines = ["x\talgorithm\tavg_workload_cost_us"]
    for x, name, cost in rows:  # type: ignore[misc]
        lines.append(f"{x}\t{name}\t{cost:.2f}")
    return lines
