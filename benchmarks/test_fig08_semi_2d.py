"""Figure 8 — semi-dynamic algorithms in 2D.

Paper: insert-only workload, d = 2, eps = 100d, MinPts = 10, rho = 0.001,
query every 0.05N updates.  Plots avgcost(t) (Fig 8a) and maxupdcost(t)
(Fig 8b) for IncDBSCAN, 2d-Semi-Exact, and Semi-Approx.

Expected shape (paper): both of our algorithms are orders of magnitude
below IncDBSCAN on avgcost, stay flat over time while IncDBSCAN's curve
rises, and all methods have comparable maxupdcost in the semi-dynamic
setting.

Series are written to benchmarks/results/fig08_semi_2d.txt.
"""

from __future__ import annotations

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.core.semidynamic import SemiDynamicClusterer
from repro.workload.config import MINPTS, RHO, bench_n, eps_for

from figlib import cached_workload, execute, series_lines, write_results

DIM = 2
N = bench_n()
EPS = eps_for(DIM)
QFREQ = max(1, N // 20)

ALGORITHMS = {
    "2d-Semi-Exact": lambda: SemiDynamicClusterer(EPS, MINPTS, rho=0.0, dim=DIM),
    "Semi-Approx": lambda: SemiDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM),
    "IncDBSCAN": lambda: IncDBSCAN(EPS, MINPTS, dim=DIM),
}

_collected = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_series():
    yield
    if _collected:
        write_results(
            "fig08_semi_2d.txt",
            f"Figure 8: semi-dynamic, d={DIM}, N={N}, eps={EPS}, "
            f"MinPts={MINPTS}, rho={RHO}, fqry={QFREQ}",
            [series_lines(name, res) for name, res in _collected.items()],
        )


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_fig08_semi_dynamic_2d(benchmark, name):
    workload = cached_workload(N, DIM, insert_fraction=1.0, query_frequency=QFREQ)
    result = execute(benchmark, ALGORITHMS[name], workload)
    _collected[name] = result
    assert result.average_cost > 0
