"""Figure 9 — semi-dynamic algorithms in d = 3, 5, 7.

Paper: insert-only workloads at eps = 100d, MinPts = 10, rho = 0.001.
Plots avgcost and maxupdcost over time for Semi-Approx vs IncDBSCAN.

Expected shape: Semi-Approx wins by a wide margin at every d; the gap
persists (and the paper's IncDBSCAN degrades over time while Semi-Approx
stays flat).

Series go to benchmarks/results/fig09_semi_highd.txt.
"""

from __future__ import annotations

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.core.semidynamic import SemiDynamicClusterer
from repro.workload.config import MINPTS, RHO, bench_n, eps_for

from figlib import cached_workload, execute, series_lines, write_results

DIMENSIONS = (3, 5, 7)
N = bench_n(2500)
QFREQ = max(1, N // 20)

_collected = {}


@pytest.fixture(scope="module", autouse=True)
def _dump_series():
    yield
    if _collected:
        write_results(
            "fig09_semi_highd.txt",
            f"Figure 9: semi-dynamic, d in {DIMENSIONS}, N={N}, eps=100d, "
            f"MinPts={MINPTS}, rho={RHO}",
            [series_lines(name, res) for name, res in _collected.items()],
        )


@pytest.mark.parametrize("dim", DIMENSIONS)
@pytest.mark.parametrize("algo", ["Semi-Approx", "IncDBSCAN"])
def test_fig09_semi_dynamic_highd(benchmark, dim, algo):
    eps = eps_for(dim)
    factory = {
        "Semi-Approx": lambda: SemiDynamicClusterer(eps, MINPTS, rho=RHO, dim=dim),
        "IncDBSCAN": lambda: IncDBSCAN(eps, MINPTS, dim=dim),
    }[algo]
    workload = cached_workload(N, dim, insert_fraction=1.0, query_frequency=QFREQ)
    result = execute(benchmark, factory, workload)
    _collected[f"{algo} d={dim}"] = result
    assert result.average_cost > 0
