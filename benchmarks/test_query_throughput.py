"""Batch-vs-sequential throughput of the C-group-by query engine.

Not a paper figure: this benchmark records what the vectorized
``cgroup_by_many`` path buys over point-at-a-time query resolution on
the paper's own data distribution.  The headline measurement is a full
``clusters()`` snapshot (a Q = P query) over a 2d seed-spreader dataset
of ``REPRO_BENCH_N`` points (default 50000) under the semi-dynamic
clusterer at the Table 2 defaults, where the batch engine must be at
least 3x faster than the sequential per-point path; a second
measurement covers high-dimensional data under the fully-dynamic
clusterer after bulk deletions.  A third scenario drives a full batched
workload and records the p50/p99 update- and query-tail percentiles,
with generous ratio tripwires that fail CI on gross tail regressions.

Exactness of the engine is asserted separately (and exhaustively) in
``tests/test_query_equivalence.py``; results are written to
benchmarks/results/query_throughput.txt.
"""

from __future__ import annotations

import time

from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.workload.config import MINPTS, RHO, bench_n, eps_for
from repro.workload.runner import run_workload_batched
from repro.workload.seed_spreader import seed_spreader
from repro.workload.workload import generate_workload

from figlib import tail_lines, write_results

DIM = 2
N = bench_n(50000)
EPS = eps_for(DIM)

#: Below this dataset size timing noise can eat the win; the speedup
#: floors are only asserted for full-scale runs.
ASSERT_FLOOR_N = 20000

_collected = {}
_tails = []


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _warmup():
    """Trigger numpy's lazy one-time imports outside the timed regions.

    Uses more ids than the small-query cutoff so the batch engine itself
    (not the scalar fallback) gets warmed.
    """
    algo = SemiDynamicClusterer(2.0, 3, rho=RHO, dim=2)
    algo.insert_many([(float(i % 7), float(i // 7)) for i in range(200)])
    algo.cgroup_by_many(list(algo.ids()))
    algo.cgroup_by_sequential(list(algo.ids()))
    algo.clusters()


def _coverage(result) -> int:
    """Distinct ids a query result accounts for (groups plus noise)."""
    covered = set(result.noise)
    for group in result.groups:
        covered.update(group)
    return len(covered)


def test_semi_clusters_snapshot_speedup():
    """The acceptance scenario: 50k-point Q = P snapshot, semi, 2d."""
    points = seed_spreader(N, DIM, seed=42)
    algo = SemiDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM)
    algo.insert_many(points)
    ids = list(algo.ids())
    _warmup()
    # One untimed scalar pass first: it folds every cell's write-behind
    # insert buffer into its kd-tree, so neither timed run below pays
    # the one-time index builds and the comparison is query vs query.
    algo.cgroup_by_sequential(ids)

    t_seq, seq_result = _timed(lambda: algo.cgroup_by_sequential(ids))
    t_bat, bat_result = _timed(lambda: algo.clusters())
    speedup = t_seq / t_bat if t_bat > 0 else float("inf")
    _collected["semi clusters() snapshot"] = (N, t_seq, t_bat, speedup)
    assert _coverage(seq_result) == N
    assert sum(len(c) for c in bat_result.clusters) + len(bat_result.noise) >= N
    if N >= ASSERT_FLOOR_N:
        assert speedup >= 3.0, (
            f"cgroup_by_many must be >= 3x sequential at N={N}, got "
            f"{speedup:.2f}x ({t_seq:.3f}s vs {t_bat:.3f}s)"
        )
    else:
        assert speedup > 0.2, f"batch query path degenerated: {speedup:.2f}x"


def test_full_highd_query_speedup():
    """High-d, fully-dynamic, after bulk churn (non-core-heavy mix)."""
    dim = 5
    n = min(N, 15000)
    points = seed_spreader(n, dim, seed=43)
    algo = FullyDynamicClusterer(eps_for(dim), MINPTS, rho=RHO, dim=dim)
    pids = algo.insert_many(points)
    algo.delete_many(pids[: n // 3])
    ids = list(algo.ids())
    _warmup()
    # Untimed warm pass: see test_semi_clusters_snapshot_speedup.
    algo.cgroup_by_sequential(ids)

    t_seq, seq_result = _timed(lambda: algo.cgroup_by_sequential(ids))
    t_bat, bat_result = _timed(lambda: algo.cgroup_by_many(ids))
    speedup = t_seq / t_bat if t_bat > 0 else float("inf")
    _collected["full 5d churned snapshot"] = (len(ids), t_seq, t_bat, speedup)
    assert _coverage(seq_result) == _coverage(bat_result) == len(ids)
    if n >= ASSERT_FLOOR_N // 2:
        assert speedup >= 1.5, (
            f"high-d batch queries must beat sequential at n={n}, got "
            f"{speedup:.2f}x ({t_seq:.3f}s vs {t_bat:.3f}s)"
        )
    else:
        assert speedup > 0.2, f"batch query path degenerated: {speedup:.2f}x"


def test_workload_query_tails():
    """Record p50/p99 tails of a batched run; trip on gross regressions."""
    n = min(N, 10000)
    workload = generate_workload(
        n, DIM, insert_fraction=5 / 6, query_frequency=max(1, n // 20), seed=7
    )
    algo = FullyDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM)
    result = run_workload_batched(algo, workload, batch_size=512)
    _tails.append((f"full 2d batched n={n}", result))

    p50_q = result.query_percentile(50)
    p99_q = result.query_percentile(99)
    p50_u = result.per_update_percentile(50)
    p99_u = result.per_update_percentile(99)
    assert p99_q > 0 and p99_u > 0
    # Gross-regression tripwires (generous ratios, stable on noisy
    # shared runners): a p99 explosion relative to the median means a
    # pathological tail — e.g. one query accidentally going quadratic.
    assert p99_q <= 500 * max(p50_q, 1.0), (
        f"query tail blew up: p50={p50_q:.1f}us p99={p99_q:.1f}us"
    )
    assert p99_u <= 500 * max(p50_u, 1.0), (
        f"update tail blew up: p50={p50_u:.1f}us p99={p99_u:.1f}us"
    )


def test_zz_write_results():
    """Runs last (name-ordered): dump the collected series."""
    lines = ["scenario\tn\tsequential_s\tbatched_s\tspeedup"]
    for name, (n, t_seq, t_bat, speedup) in _collected.items():
        lines.append(f"{name}\t{n}\t{t_seq:.4f}\t{t_bat:.4f}\t{speedup:.2f}")
    blocks = [lines]
    if _tails:
        blocks.append(tail_lines(_tails))
    write_results(
        "query_throughput.txt",
        f"Batched C-group-by query engine throughput: d={DIM}, eps={EPS}, "
        f"MinPts={MINPTS}, rho={RHO}, seed-spreader data",
        blocks,
    )
    assert _collected, "no measurements collected"
