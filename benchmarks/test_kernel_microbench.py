"""Per-kernel throughput of every backend (the kernels-layer smoke bench).

Not a paper figure: this microbenchmark times each dispatched kernel on
synthetic cell-neighborhood-shaped data under both registered backends
and records the throughputs side by side, so a backend regression (or a
future accelerator port) shows up as a number, not a feeling.  Sizes
scale with ``REPRO_BENCH_N``.

Results are written to benchmarks/results/kernel_microbench.txt.
"""

from __future__ import annotations

import time

import numpy as np

from repro import kernels
from repro.workload.config import bench_n

from figlib import write_results

DIM = 3
N = bench_n(20000)
#: Rows on the "b" side of pair kernels (a dense cell neighborhood).
M = max(64, min(4000, N // 5))
SQ_RADIUS = 0.25

BACKENDS = ("numpy", "accel")

_collected: dict = {}


def _rng_data():
    rng = np.random.RandomState(12345)
    a = rng.rand(N, DIM) * 8.0
    b = rng.rand(M, DIM) * 8.0
    return a, b


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def _run_backend(backend: str):
    a, b = _rng_data()
    ids = list(range(M))
    rows = {}
    counts, t = _timed(lambda: kernels.ball_counts(a, b, SQ_RADIUS))
    rows["ball_counts"] = (N * M / t, int(counts.sum()))
    hit, t = _timed(lambda: kernels.any_within(a, b, 1e-9))
    rows["any_within(miss)"] = (N * M / t, int(hit))
    sub = a[: min(N, 2000)]
    dm, t = _timed(lambda: kernels.distance_matrix(sub, b))
    rows["distance_matrix"] = (len(sub) * M / t, float(dm[0, 0]))
    total, t = _timed(
        lambda: sum(kernels.count_within(a[i], b, SQ_RADIUS) for i in range(200))
    )
    rows["count_within"] = (200 * M / t, int(total))
    proofs, t = _timed(lambda: kernels.find_within_many(sub, ids, b, SQ_RADIUS))
    rows["find_within_many"] = (
        len(sub) * M / t,
        sum(p is not None for p in proofs),
    )
    buckets, t = _timed(lambda: kernels.bucket_by_cell(a, 0.5))
    rows["bucket_by_cell"] = (N / t, len(buckets))
    cells = np.floor(a / 0.5).astype(np.int64)
    keys, t = _timed(lambda: kernels.pack_cell_keys(cells))
    rows["pack_cell_keys"] = (N / t, int(keys.max()))
    return rows


def test_kernel_throughput_both_backends():
    previous = kernels.active_backend().requested
    try:
        for backend in BACKENDS:
            kernels.use_backend(backend)
            info = (
                f"{kernels.backend_summary()}; "
                f"{kernels.active_backend().description}"
            )
            _collected[backend] = (info, _run_backend(backend))
    finally:
        kernels.use_backend(previous)
    # Checksums must agree across backends: same data, same decisions.
    numpy_rows, accel_rows = _collected["numpy"][1], _collected["accel"][1]
    for name in numpy_rows:
        # distance_matrix included: bit-identity across backends is the
        # interface contract, so the float checksums compare equal too.
        assert numpy_rows[name][1] == accel_rows[name][1], name
        assert numpy_rows[name][0] > 0


def test_zz_write_results():
    """Runs last (name-ordered): dump the collected throughput table."""
    assert _collected, "no measurements collected"
    info_lines = ["backend\tresolution"]
    table_lines = ["kernel\tbackend\tthroughput_per_s\tchecksum"]
    for backend in BACKENDS:
        summary, rows = _collected[backend]
        info_lines.append(f"{backend}\t{summary}")
        for name, (throughput, checksum) in rows.items():
            table_lines.append(f"{name}\t{backend}\t{throughput:,.0f}\t{checksum}")
    write_results(
        "kernel_microbench.txt",
        f"Kernel-layer throughput: n={N}, m={M}, d={DIM} "
        f"(pair kernels: pairs/s; grouping kernels: rows/s)",
        [info_lines, table_lines],
    )
