"""Warm-vs-cold snapshot throughput of the incremental fragment cache.

Not a paper figure: this benchmark records what the cell-level fragment
cache buys for the *repeated snapshot* serving pattern — a monitoring
loop that ingests a small, spatially localized batch between barriers
and re-takes a full ``clusters()`` snapshot after each one.  With the
cache on, a batch touching a handful of cells only invalidates those
cells' closeness-reach neighborhood; every other cell's membership
fragment is spliced back from cache, so a warm snapshot recomputes a
few percent of the grid instead of all of it.

The headline measurement is the acceptance scenario: a 2d seed-spreader
dataset of ``REPRO_BENCH_N`` points (default 50000) under the
semi-dynamic clusterer at the Table 2 defaults, localized batches
touching well under 5% of the populated cells, where warm cached
snapshots must be at least 3x faster than the cache-off path taking the
same snapshots after the same batches.  A second regime covers 5d
fully-dynamic data with interleaved localized deletions.

A third regime covers the *sharded* serving path: the router's
persistent boundary-witness cache keeps cross-shard ``any_within``
verdicts across query barriers, invalidating only pairs near mutated
cells, so repeated sharded snapshots between localized batches stop
re-probing the entire boundary.

Bit-identity of cached snapshots is asserted exhaustively in
``tests/test_fragment_cache.py``; this file re-checks it per round as a
cheap sanity gate.  Results go to
benchmarks/results/snapshot_throughput.txt.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.fullydynamic import FullyDynamicClusterer
from repro.core.semidynamic import SemiDynamicClusterer
from repro.workload.config import MINPTS, RHO, bench_n, eps_for
from repro.workload.seed_spreader import seed_spreader

from figlib import write_results

DIM = 2
N = bench_n(50000)
EPS = eps_for(DIM)
ROUNDS = 5

#: Below this dataset size timing noise can eat the win; the speedup
#: floor is only asserted for full-scale runs.
ASSERT_FLOOR_N = 20000

_collected = {}


def _canon(clustering):
    return (
        sorted(sorted(c) for c in clustering.clusters),
        sorted(clustering.noise),
    )


def _localized_batches(points, dim, rounds, batch, seed, side=None):
    """Small per-round batches jittered around one existing point.

    Everything lands within a couple of eps-side cells of the anchor, so
    each round's invalidation cone covers a tiny fraction of the grid.
    """
    rng = np.random.default_rng(seed)
    anchor = np.asarray(points[0], dtype=float)
    if side is None:
        side = eps_for(dim)
    return [
        (anchor + rng.uniform(-side, side, size=(batch, dim))).tolist()
        for _ in range(rounds)
    ]


def _drive(algo, batches, deletes_per_round=0):
    """Ingest each batch, snapshot after it; return (total_s, snaps)."""
    total = 0.0
    snaps = []
    for batch in batches:
        pids = algo.insert_many(batch)
        if deletes_per_round:
            algo.delete_many(pids[:deletes_per_round])
        start = time.perf_counter()
        snap = algo.clusters()
        total += time.perf_counter() - start
        snaps.append(_canon(snap))
    return total, snaps


def _measure(make_algo, points, batches, deletes_per_round=0):
    """Run the cached and uncached engines through the same rounds."""
    warm = make_algo(True)
    cold = make_algo(False)
    for algo in (warm, cold):
        algo.insert_many(points)
        algo.clusters()  # untimed: builds kd-trees, primes the cache
    t_warm, warm_snaps = _drive(warm, batches, deletes_per_round)
    t_cold, cold_snaps = _drive(cold, batches, deletes_per_round)
    assert warm_snaps == cold_snaps, (
        "cached snapshots diverged from the cache-off path"
    )
    stats = warm.fragment_cache_stats()
    assert stats is not None and stats.hits > 0, (
        "warm engine served no fragments from cache"
    )
    assert stats.invalidations > 0, "localized batches invalidated nothing"
    return t_warm, t_cold


def test_semi_2d_warm_snapshot_speedup():
    """The acceptance scenario: 50k 2d semi, localized batches."""
    points = seed_spreader(N, DIM, seed=42)
    batches = _localized_batches(
        points, DIM, ROUNDS, batch=max(10, N // 1000), seed=7
    )
    t_warm, t_cold = _measure(
        lambda cache: SemiDynamicClusterer(
            EPS, MINPTS, rho=RHO, dim=DIM, fragment_cache=cache
        ),
        points,
        batches,
    )
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    _collected["semi 2d localized batches"] = (N, t_cold, t_warm, speedup)
    if N >= ASSERT_FLOOR_N:
        assert speedup >= 3.0, (
            f"warm cached snapshots must be >= 3x cache-off at N={N}, got "
            f"{speedup:.2f}x ({t_cold:.3f}s cold vs {t_warm:.3f}s warm)"
        )
    else:
        assert speedup > 0.2, f"fragment cache degenerated: {speedup:.2f}x"


def test_full_5d_warm_snapshot_speedup():
    """High-d fully-dynamic regime with localized deletions.

    At the Table 2 eps a 5d seed-spreader grid has under a hundred
    populated cells, so a single touched cell's 2-ring invalidation
    cone covers a third of the grid — the geometry, not the cache, caps
    the win.  Halving eps yields a finer grid (a few hundred cells)
    where locality is meaningful; even so the high-d regime is far less
    cache-friendly than 2d, so the tripwire only guards against the
    cache degenerating (the 3x acceptance floor lives on the 2d
    headline above).
    """
    dim = 5
    n = min(N, 15000)
    eps = eps_for(dim) * 0.5
    points = seed_spreader(n, dim, seed=43)
    batches = _localized_batches(
        points, dim, ROUNDS, batch=max(10, n // 1000), seed=8, side=eps
    )
    t_warm, t_cold = _measure(
        lambda cache: FullyDynamicClusterer(
            eps, MINPTS, rho=RHO, dim=dim, fragment_cache=cache
        ),
        points,
        batches,
        deletes_per_round=5,
    )
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    _collected["full 5d localized churn"] = (n, t_cold, t_warm, speedup)
    if n >= ASSERT_FLOOR_N // 2:
        assert speedup >= 1.05, (
            f"warm cached snapshots must beat cache-off at n={n}, got "
            f"{speedup:.2f}x ({t_cold:.3f}s cold vs {t_warm:.3f}s warm)"
        )
    else:
        assert speedup > 0.2, f"fragment cache degenerated: {speedup:.2f}x"


def test_sharded_2d_warm_boundary_merge_speedup():
    """Warm-vs-cold across the sharded path's boundary-witness cache.

    ``shard_block=1`` shreds ownership so the boundary cuts through
    every cluster — the worst case for the merge, and therefore the
    best case for caching its witnesses.  Snapshots must stay
    bit-identical with the cache on, and the warm run must serve
    witnesses from cache.
    """
    import repro.api as api

    n = min(N, 20000)
    points = seed_spreader(n, DIM, seed=44)
    batches = _localized_batches(
        points, DIM, ROUNDS, batch=max(10, n // 1000), seed=9
    )

    def open_sharded(cache):
        return api.open(
            algorithm="full",
            eps=EPS,
            minpts=MINPTS,
            rho=RHO,
            dim=DIM,
            shards=2,
            shard_block=1,
            shard_executor="serial",
            fragment_cache=cache,
        )

    def drive(engine):
        total = 0.0
        snaps = []
        for batch in batches:
            engine.insert_many(batch)
            start = time.perf_counter()
            snap = engine.snapshot().clustering
            total += time.perf_counter() - start
            snaps.append(_canon(snap))
        return total, snaps

    warm = open_sharded(True)
    cold = open_sharded(False)
    try:
        for engine in (warm, cold):
            engine.ingest(points)
            engine.snapshot()  # untimed: primes trees and caches
        t_warm, warm_snaps = drive(warm)
        t_cold, cold_snaps = drive(cold)
        assert warm_snaps == cold_snaps, (
            "cached sharded snapshots diverged from the cache-off path"
        )
        assert warm.raw.merge_cache_hits > 0, (
            "warm router served no boundary witnesses from cache"
        )
        assert cold.raw.merge_cache_hits == 0
    finally:
        warm.close()
        cold.close()
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    _collected["sharded 2d boundary merge"] = (n, t_cold, t_warm, speedup)
    if n >= ASSERT_FLOOR_N:
        assert speedup >= 1.05, (
            f"warm sharded snapshots must beat cache-off at n={n}, got "
            f"{speedup:.2f}x ({t_cold:.3f}s cold vs {t_warm:.3f}s warm)"
        )
    else:
        assert speedup > 0.2, f"witness cache degenerated: {speedup:.2f}x"


def test_zz_write_results():
    """Runs last (name-ordered): dump the collected series."""
    lines = ["scenario\tn\tcache_off_s\tcache_on_s\tspeedup"]
    for name, (n, t_cold, t_warm, speedup) in _collected.items():
        lines.append(f"{name}\t{n}\t{t_cold:.4f}\t{t_warm:.4f}\t{speedup:.2f}")
    write_results(
        "snapshot_throughput.txt",
        f"Incremental fragment cache snapshot throughput: d={DIM}, "
        f"eps={EPS}, MinPts={MINPTS}, rho={RHO}, {ROUNDS} localized "
        f"batches between barriers, seed-spreader data",
        [lines],
    )
    assert _collected, "no measurements collected"
