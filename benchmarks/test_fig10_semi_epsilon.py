"""Figure 10 — semi-dynamic average workload cost vs eps.

Paper: insert-only workloads with eps/d in {50, 100, 200, 400, 800},
d = 2 (Fig 10a) and d = 3 (part of Fig 10b).  Plots the average workload
cost of each algorithm as eps grows.

Expected shape: IncDBSCAN becomes prohibitively expensive as eps rises
(its range queries return ever more seeds), while our algorithms get
*cheaper* (a larger eps means fewer grid-graph edges).

Series go to benchmarks/results/fig10_semi_epsilon.txt.
"""

from __future__ import annotations

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.core.semidynamic import SemiDynamicClusterer
from repro.workload.config import EPS_PER_D, MINPTS, RHO, bench_n

from figlib import cached_workload, execute, summarize_average, write_results

DIMENSIONS = (2, 3)
N = bench_n(1000)

_rows = []


@pytest.fixture(scope="module", autouse=True)
def _dump_series():
    yield
    if _rows:
        write_results(
            "fig10_semi_epsilon.txt",
            f"Figure 10: semi-dynamic avg workload cost vs eps/d, N={N}, "
            f"MinPts={MINPTS}, rho={RHO}",
            [summarize_average(sorted(_rows))],
        )


@pytest.mark.parametrize("dim", DIMENSIONS)
@pytest.mark.parametrize("eps_per_d", EPS_PER_D)
@pytest.mark.parametrize("algo", ["Semi-Approx", "IncDBSCAN"])
def test_fig10_cost_vs_epsilon(benchmark, dim, eps_per_d, algo):
    eps = float(eps_per_d * dim)
    factory = {
        "Semi-Approx": lambda: SemiDynamicClusterer(eps, MINPTS, rho=RHO, dim=dim),
        "IncDBSCAN": lambda: IncDBSCAN(eps, MINPTS, dim=dim),
    }[algo]
    workload = cached_workload(N, dim, insert_fraction=1.0)
    result = execute(benchmark, factory, workload)
    _rows.append((f"d={dim} eps/d={eps_per_d}", algo, result.average_cost))
    assert result.average_cost > 0
