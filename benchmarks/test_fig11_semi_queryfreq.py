"""Figure 11 — semi-dynamic average workload cost vs query frequency.

Paper: insert-only workloads with a C-group-by query every fqry updates,
fqry in {0.01N, 0.02N, 0.05N, 0.1N}.  Plots average workload cost per
algorithm.

Expected shape: queries are so cheap relative to updates that the curves
are nearly flat — "query cost is negligible compared to update overhead".

Series go to benchmarks/results/fig11_semi_queryfreq.txt.
"""

from __future__ import annotations

import statistics

import pytest

from repro.baselines.incdbscan import IncDBSCAN
from repro.core.semidynamic import SemiDynamicClusterer
from repro.workload.config import (
    MINPTS,
    QUERY_FREQ_FRACTIONS,
    RHO,
    bench_n,
    eps_for,
)

from figlib import (
    cached_workload,
    execute,
    summarize_average,
    tail_lines,
    write_results,
)

DIM = 2
N = bench_n(1000)
EPS = eps_for(DIM)

_rows = []
_tails = []


@pytest.fixture(scope="module", autouse=True)
def _dump_series():
    yield
    if _rows:
        write_results(
            "fig11_semi_queryfreq.txt",
            f"Figure 11: semi-dynamic avg workload cost vs query frequency, "
            f"d={DIM}, N={N}, eps={EPS}, MinPts={MINPTS}, rho={RHO}",
            [summarize_average(sorted(_rows)), tail_lines(sorted(_tails))],
        )


@pytest.mark.parametrize("freq_fraction", QUERY_FREQ_FRACTIONS)
@pytest.mark.parametrize("algo", ["Semi-Approx", "IncDBSCAN"])
def test_fig11_cost_vs_query_frequency(benchmark, freq_fraction, algo):
    qfreq = max(1, int(N * freq_fraction))
    factory = {
        "Semi-Approx": lambda: SemiDynamicClusterer(EPS, MINPTS, rho=RHO, dim=DIM),
        "IncDBSCAN": lambda: IncDBSCAN(EPS, MINPTS, dim=DIM),
    }[algo]
    workload = cached_workload(N, DIM, insert_fraction=1.0, query_frequency=qfreq)
    result = execute(benchmark, factory, workload)
    _rows.append((f"fqry={freq_fraction}N", algo, result.average_cost))
    _tails.append((f"fqry={freq_fraction}N {algo}", result))
    queries = result.query_costs()
    if queries:
        benchmark.extra_info["mean_query_us"] = round(statistics.mean(queries), 2)
    assert result.average_cost > 0
