"""Repo-root pytest configuration.

Registers the ``--shards`` option driving the shard differential
harness (``tests/test_shard_equivalence.py``): a comma-separated list
of shard counts every ``shard_count``-parametrized test runs under.
The default sweeps ``1,2,4,8``; the CI shard matrix pins single values
(``--shards 1`` / ``--shards 4``) so the jobs split the work.
"""

from __future__ import annotations

DEFAULT_SHARD_COUNTS = "1,2,4,8"


def pytest_addoption(parser):
    parser.addoption(
        "--shards",
        default=DEFAULT_SHARD_COUNTS,
        help="comma-separated shard counts for the shard differential "
        f"harness (default: {DEFAULT_SHARD_COUNTS})",
    )


def pytest_generate_tests(metafunc):
    if "shard_count" in metafunc.fixturenames:
        raw = metafunc.config.getoption("--shards")
        counts = [int(part) for part in str(raw).split(",") if part.strip()]
        metafunc.parametrize("shard_count", counts)
