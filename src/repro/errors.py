"""The unified error model of the public API.

Every user-facing failure raised by the library derives from
:class:`ReproError`, so ``except ReproError`` catches anything the
system itself diagnoses while programming errors (and numpy internals)
still propagate as-is.  Each concrete class additionally subclasses the
builtin exception the same failure used to raise — ``ConfigError`` is a
``ValueError``, ``UnknownPointError`` a ``KeyError``,
``UnsupportedOperationError`` a ``RuntimeError`` — so existing callers
(and tests) that catch the old types keep working unchanged.

The hierarchy:

* :class:`ReproError` — root of everything the library diagnoses.

  * :class:`ConfigError` — invalid construction-time parameters:
    non-positive ``eps``, ``minpts < 1``, negative ``rho``, a point of
    the wrong dimension, an unknown algorithm / backend / strategy.
    All constructor and :class:`repro.api.EngineConfig` validation
    raises this, so "is this configuration valid?" is one ``except``.
  * :class:`UnknownPointError` — an operation referenced a point id
    that is not live (never existed, or was deleted).  Queries raise it
    *before* resolving any group, deletions before mutating anything.
  * :class:`InvalidQueryError` — a query batch that is malformed as
    data (ragged rows, wrong trailing dimension, non-finite
    coordinates), as opposed to referencing dead ids.
  * :class:`UnsupportedOperationError` — an operation the selected
    algorithm cannot execute, e.g. a deletion reaching the insert-only
    semi-dynamic clusterer.  Historically lived in
    :mod:`repro.workload.runner`; importing it from there still works
    but emits a :class:`DeprecationWarning`.
  * :class:`ShardTimeoutError` — a shard worker failed to reply within
    the deadline (``EngineConfig.shard_call_timeout``).  A hung or
    stopped worker surfaces as this instead of blocking the parent
    forever; the shard supervisor treats it as a recoverable failure
    (kill, respawn, replay).  Subclasses the builtin ``TimeoutError``.
  * :class:`StaleOwnershipError` — a routed shard call carried an
    ownership-table version that does not match the worker's table.
    Raised by the worker (and relayed verbatim) so a router that
    missed a ``rebalance`` fails loudly instead of silently reading
    or writing blocks the shard no longer owns.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error the library itself diagnoses."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration or construction-time parameter."""


class UnknownPointError(ReproError, KeyError):
    """An operation referenced a point id that is not live.

    Subclasses ``KeyError`` because that is what the point-store lookups
    historically raised; ``str()`` therefore renders like a ``KeyError``
    (the message in quotes).
    """


class InvalidQueryError(ReproError, ValueError):
    """A query batch that is malformed as data (not a dead-id failure)."""


class UnsupportedOperationError(ReproError, RuntimeError):
    """An operation the selected algorithm cannot execute.

    Raised with a clear diagnosis instead of letting the clusterer's
    ``NotImplementedError`` escape mid-run — e.g. when a ``delete`` op
    reaches the insert-only ``SemiDynamicClusterer``.
    """


class ShardTimeoutError(ReproError, TimeoutError):
    """A shard worker did not reply within ``shard_call_timeout``.

    Every reply wait in the process shard executor goes through a
    ``poll``-based deadline, so a hung worker (deadlocked, SIGSTOP'd,
    or with a fault-injected hang) raises this instead of hanging the
    parent.  After a timeout the worker's channel is desynchronized
    and poisoned: the shard supervisor recovers by killing and
    respawning the worker and replaying its journal; without a
    supervisor the shard is unusable until restarted.
    """


class StaleOwnershipError(ReproError):
    """A routed shard call carried a stale ownership-table version.

    Every data-plane call the shard router fans out (``ingest``,
    ``delete_many``, ``merge_state``) is stamped with the router's
    block→shard ownership-table version.  A worker whose table is at a
    different version rejects the call with this error instead of
    acting on blocks it may no longer own — the distributed analogue
    of the per-shard epoch token the boundary merge already checks.
    Not a recoverable failure: replaying the same stale call cannot
    succeed, so the supervisor relays it to the caller.
    """


__all__ = [
    "ReproError",
    "ConfigError",
    "UnknownPointError",
    "InvalidQueryError",
    "UnsupportedOperationError",
    "ShardTimeoutError",
    "StaleOwnershipError",
]
