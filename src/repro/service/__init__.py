"""The streaming cluster-analytics service (ROADMAP: serving layer).

A thin asyncio layer that turns one engine — single or sharded — into
a network service for many concurrent clients:

* :mod:`repro.service.protocol` — the JSON-lines wire protocol
  (epoch-stamped responses, HTTP-style error codes);
* :mod:`repro.service.server` — :class:`ClusterService`: buffered
  per-session ingest with active-writer coordination, query barriers,
  admission control, bounded queues with 429 backpressure, graceful
  drain-on-shutdown, optional sliding-window mode;
* :mod:`repro.service.client` — :class:`ServiceClient`, the matching
  asyncio client with explicit pipelining.

Start one from the CLI with ``python -m repro serve``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import ProtocolError
from repro.service.server import ClusterService, ServiceLimits, ServiceStats

__all__ = [
    "ClusterService",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceLimits",
    "ServiceStats",
]
