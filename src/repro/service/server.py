"""The asyncio cluster-analytics server.

:class:`ClusterService` multiplexes many concurrent client sessions
onto **one** engine (:class:`repro.api.Engine` or
:class:`repro.shard.ShardedEngine`).  Each connection gets its own
bounded op queue plus a worker task; engine calls are synchronous, so
the event loop serializes them for free — the service's job is the
*coordination* around them:

* **Buffered ingest** — write ops go through a per-session
  :class:`repro.api.IngestSession`.  Sessions predict point ids
  eagerly, which only stays sound if a single session holds buffered
  updates at a time; the service enforces exactly that with an
  *active-writer* token: before a session buffers, the previous
  writer's buffer is flushed (:meth:`_ensure_writer`).
* **Query barriers** — every query op first flushes the active
  writer (:meth:`_barrier`), so a query observes all updates whose
  acks were issued before it, session boundaries notwithstanding.
  Responses carry the engine ``epoch`` as the consistency token.
* **Admission control & backpressure** — at most ``max_sessions``
  connections, at most ``max_inflight`` queued ops service-wide and
  ``queue_depth`` per session; excess requests are rejected *now*
  with a 429 instead of buffering without bound.  A client that stops
  reading its responses is aborted once the connection's write buffer
  exceeds ``max_write_buffer`` — service memory stays bounded in
  every direction.
* **Graceful drain** — :meth:`aclose` stops admitting work (503),
  lets every queued op finish and flushes each session's buffered
  updates.  A session whose final flush fails is failed atomically
  (its remaining buffer is discarded and counted in
  ``failed_drains``); acked-and-applied work is never silently
  dropped.

A ``window_capacity`` turns the deployment into **sliding-window
mode**: raw ``ingest`` / ``delete`` are rejected (405) and clients
drive ``window_append``, which inserts a batch and expires the oldest
points through the engine's fully-dynamic ``delete_many`` path via
:class:`repro.analysis.WindowedEngine`.

Only the standard library is used — ``asyncio.start_server`` plus the
JSON-lines protocol of :mod:`repro.service.protocol`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from repro.analysis.window import WindowedEngine
from repro.errors import ConfigError, ReproError
from repro.service import protocol
from repro.service.protocol import ProtocolError


@dataclass(frozen=True)
class ServiceLimits:
    """Admission-control and backpressure knobs of one service.

    ``max_sessions``      — concurrent client connections admitted.
    ``queue_depth``       — ops one session may have queued (not yet
                            executed); excess gets a 429.
    ``max_inflight``      — ops queued service-wide across sessions;
                            the global 429 ceiling.
    ``max_write_buffer``  — bytes of un-sent response data one
                            connection may accumulate before the
                            service aborts it (a stalled client must
                            not grow service memory without bound).
    ``drain_timeout``     — seconds :meth:`ClusterService.aclose`
                            waits for one session's queue to empty
                            before failing the session.
    """

    max_sessions: int = 64
    queue_depth: int = 32
    max_inflight: int = 256
    max_write_buffer: int = 1 << 20
    drain_timeout: float = 30.0

    def __post_init__(self) -> None:
        for name in ("max_sessions", "queue_depth", "max_inflight",
                     "max_write_buffer"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise ConfigError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if not self.drain_timeout > 0:
            raise ConfigError(
                f"drain_timeout must be positive, got {self.drain_timeout!r}"
            )


@dataclass
class ServiceStats:
    """Running counters of one :class:`ClusterService`."""

    sessions_opened: int = 0
    sessions_rejected: int = 0
    sessions_aborted: int = 0
    ops_accepted: int = 0
    ops_rejected: int = 0
    ops_failed: int = 0
    drained_sessions: int = 0
    failed_drains: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "sessions_opened": self.sessions_opened,
            "sessions_rejected": self.sessions_rejected,
            "sessions_aborted": self.sessions_aborted,
            "ops_accepted": self.ops_accepted,
            "ops_rejected": self.ops_rejected,
            "ops_failed": self.ops_failed,
            "drained_sessions": self.drained_sessions,
            "failed_drains": self.failed_drains,
        }


class _Session:
    """One connected client: its streams, op queue and worker task."""

    def __init__(self, service: "ClusterService", session_id: int,
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.service = service
        self.session_id = session_id
        self.reader = reader
        self.writer = writer
        self.queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue(
            maxsize=service.limits.queue_depth
        )
        self.ingest = None if service.windowed else service.engine.session()
        self.worker: Optional[asyncio.Task] = None
        self.aborted = False
        self.finished = False  # reader loop exited; no new ops arrive

    @property
    def pending_updates(self) -> int:
        return self.ingest.pending_updates if self.ingest is not None else 0


class ClusterService:
    """A cluster-analytics server over one engine.

    Typical embedding (the CLI's ``serve`` command does exactly this)::

        service = ClusterService(engine)
        await service.start("127.0.0.1", 7171)
        await service.wait_shutdown()   # a signal or a 'shutdown' op
        await service.aclose()          # graceful drain

    The service borrows the engine — closing the service does **not**
    close the engine.
    """

    def __init__(
        self,
        engine,
        limits: Optional[ServiceLimits] = None,
        window_capacity: Optional[int] = None,
        allow_shutdown: bool = False,
    ) -> None:
        self.engine = engine
        self.limits = limits if limits is not None else ServiceLimits()
        self.allow_shutdown = bool(allow_shutdown)
        self.window = (
            WindowedEngine(engine, window_capacity)
            if window_capacity is not None
            else None
        )
        self.stats = ServiceStats()
        self._sessions: Set[_Session] = set()
        self._active_writer: Optional[_Session] = None
        self._inflight = 0
        self._next_session_id = 0
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown_event = asyncio.Event()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def windowed(self) -> bool:
        """Whether this deployment serves sliding-window mode."""
        return self.window is not None

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    @property
    def inflight(self) -> int:
        """Ops queued service-wide and not yet answered."""
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def address(self):
        """The bound ``(host, port)``, once :meth:`start` returned."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting connections.

        ``port=0`` binds an ephemeral port; read it back from
        :attr:`address`.
        """
        if self._server is not None:
            raise ReproError("service is already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=host,
            port=port,
            limit=protocol.MAX_LINE_BYTES,
        )

    async def wait_shutdown(self) -> None:
        """Block until :meth:`request_shutdown` (or a ``shutdown`` op)."""
        await self._shutdown_event.wait()

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit; safe to call from signal handlers."""
        self._shutdown_event.set()

    async def aclose(self) -> None:
        """Graceful drain: stop admitting, finish queues, flush sessions.

        Idempotent.  Every admitted op that was queued is executed and
        answered; every session's buffered ingest is flushed.  A
        session whose drain fails (queue stuck past ``drain_timeout``
        or final flush raising) is failed atomically — its remaining
        buffer is discarded, the failure counted in ``failed_drains``
        — rather than leaving half-applied state behind.
        """
        self._draining = True
        self._shutdown_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        sessions = list(self._sessions)
        if sessions:
            await asyncio.gather(
                *(self._drain_session(s) for s in sessions)
            )

    async def _drain_session(self, session: _Session) -> None:
        try:
            await asyncio.wait_for(
                session.queue.join(), timeout=self.limits.drain_timeout
            )
            self._flush_session(session)
        except Exception:
            self.stats.failed_drains += 1
            if session.ingest is not None:
                session.ingest.discard()
        else:
            self.stats.drained_sessions += 1
        finally:
            await self._teardown(session)

    async def _teardown(self, session: _Session) -> None:
        """Release one session's tasks and transport; idempotent."""
        self._sessions.discard(session)
        if self._active_writer is session:
            self._active_writer = None
        if session.worker is not None:
            session.worker.cancel()
            try:
                await session.worker
            except (asyncio.CancelledError, Exception):
                pass
            session.worker = None
        if session.ingest is not None and not session.ingest.closed:
            # Every path into teardown has already flushed (or
            # discarded and counted) the buffer; this close only
            # retires the session object.
            try:
                session.ingest.close()
            except Exception:
                session.ingest.discard()
        try:
            if not session.writer.is_closing():
                session.writer.close()
            await session.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Writer coordination (the consistency core)
    # ------------------------------------------------------------------

    def _flush_session(self, session: _Session) -> None:
        if session.ingest is not None:
            session.ingest.flush()

    def _ensure_writer(self, session: _Session) -> None:
        """Make ``session`` the sole buffering writer.

        Eager id prediction in :class:`repro.api.IngestSession` is only
        sound while a single session holds buffered updates; handing
        the writer token over therefore flushes the previous holder
        first.
        """
        if self._active_writer is not session:
            if self._active_writer is not None:
                self._flush_session(self._active_writer)
            self._active_writer = session

    def _barrier(self) -> None:
        """Flush the active writer so a query observes every acked op."""
        if self._active_writer is not None:
            self._flush_session(self._active_writer)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            self.stats.sessions_rejected += 1
            await self._reject_connection(
                writer, protocol.UNAVAILABLE, "service is shutting down"
            )
            return
        if len(self._sessions) >= self.limits.max_sessions:
            self.stats.sessions_rejected += 1
            await self._reject_connection(
                writer,
                protocol.BACKPRESSURE,
                f"session limit reached ({self.limits.max_sessions})",
            )
            return
        self._next_session_id += 1
        session = _Session(self, self._next_session_id, reader, writer)
        self._sessions.add(session)
        self.stats.sessions_opened += 1
        session.worker = asyncio.create_task(self._worker(session))
        try:
            await self._read_loop(session)
        finally:
            session.finished = True
            if not self._draining:
                # Normal end-of-connection: answer what was queued,
                # then flush — acked ingest must land in the engine
                # even when the client has already gone away.
                try:
                    await session.queue.join()
                    self._flush_session(session)
                except Exception:
                    self.stats.failed_drains += 1
                    if session.ingest is not None:
                        session.ingest.discard()
                await self._teardown(session)
            # While draining, aclose() owns teardown.

    async def _reject_connection(
        self, writer: asyncio.StreamWriter, code: int, message: str
    ) -> None:
        try:
            writer.write(
                protocol.encode(protocol.error_response(None, code, message))
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_loop(self, session: _Session) -> None:
        while True:
            try:
                line = await session.reader.readline()
            except (ConnectionError, OSError):
                return
            except ValueError:
                # Line longer than the reader limit.
                self._send(
                    session,
                    protocol.error_response(
                        None,
                        protocol.BAD_REQUEST,
                        f"request line exceeds {protocol.MAX_LINE_BYTES} "
                        f"bytes",
                    ),
                )
                return
            if not line:
                return
            if not line.strip():
                continue
            try:
                request = protocol.decode_request(line)
            except ProtocolError as exc:
                self.stats.ops_rejected += 1
                self._send(
                    session,
                    protocol.error_response(None, exc.code, exc.message),
                )
                continue
            req_id = request.get("id")
            op = request["op"]
            if op == "bye":
                # Connection-scoped control op: never queued, never
                # rejected — answer and end the session; the normal
                # end-of-connection path flushes buffered ingest.
                self._send(
                    session,
                    protocol.ok_response(
                        req_id, bye=True, epoch=self.engine.epoch
                    ),
                )
                return
            if self._draining:
                self.stats.ops_rejected += 1
                self._send(
                    session,
                    protocol.error_response(
                        req_id,
                        protocol.UNAVAILABLE,
                        "service is draining; no new operations",
                    ),
                )
                continue
            if self._inflight >= self.limits.max_inflight:
                self.stats.ops_rejected += 1
                self._send(
                    session,
                    protocol.error_response(
                        req_id,
                        protocol.BACKPRESSURE,
                        f"service is at max in-flight operations "
                        f"({self.limits.max_inflight})",
                    ),
                )
                continue
            try:
                session.queue.put_nowait(request)
            except asyncio.QueueFull:
                self.stats.ops_rejected += 1
                self._send(
                    session,
                    protocol.error_response(
                        req_id,
                        protocol.BACKPRESSURE,
                        f"session queue full "
                        f"({self.limits.queue_depth} operations)",
                    ),
                )
                continue
            self._inflight += 1
            self.stats.ops_accepted += 1
            if session.aborted:
                return

    async def _worker(self, session: _Session) -> None:
        while True:
            request = await session.queue.get()
            try:
                response = self._execute(session, request)
            except ProtocolError as exc:
                self.stats.ops_failed += 1
                response = protocol.error_response(
                    request.get("id"), exc.code, exc.message
                )
            except ReproError as exc:
                self.stats.ops_failed += 1
                response = protocol.error_response(
                    request.get("id"),
                    protocol.code_for_exception(exc),
                    protocol.exception_message(exc),
                )
            except Exception as exc:  # noqa: BLE001 - wire boundary
                self.stats.ops_failed += 1
                response = protocol.error_response(
                    request.get("id"),
                    protocol.INTERNAL,
                    protocol.exception_message(exc),
                )
            self._send(session, response)
            session.queue.task_done()
            self._inflight -= 1

    # ------------------------------------------------------------------
    # Op execution (synchronous: one op is atomic on the event loop)
    # ------------------------------------------------------------------

    def _execute(
        self, session: _Session, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        op = request["op"]
        req_id = request.get("id")
        if op == "ping":
            payload = {"pong": True, "epoch": self.engine.epoch}
            if "payload" in request:
                payload["payload"] = request["payload"]
            return protocol.ok_response(req_id, **payload)
        if op == "ingest":
            self._require_mixed(op)
            points = protocol.parse_points(request, self.engine.config.dim)
            self._ensure_writer(session)
            pids = session.ingest.ingest_many(points)
            return protocol.ok_response(
                req_id,
                pids=pids,
                pending=session.pending_updates,
                epoch=self.engine.epoch,
            )
        if op == "delete":
            self._require_mixed(op)
            pids = protocol.parse_pids(request)
            self._ensure_writer(session)
            session.ingest.delete_many(pids)
            return protocol.ok_response(
                req_id,
                deleted=len(pids),
                pending=session.pending_updates,
                epoch=self.engine.epoch,
            )
        if op == "flush":
            if session.ingest is not None:
                session.ingest.flush()
            return protocol.ok_response(
                req_id, pending=0, epoch=self.engine.epoch
            )
        if op == "cgroup_by":
            pids = protocol.parse_pids(request)
            self._barrier()
            outcome = self.engine.cgroup_by_many(pids)
            return protocol.ok_response(
                req_id, **protocol.outcome_payload(outcome)
            )
        if op == "snapshot":
            self._barrier()
            snapshot = self.engine.snapshot()
            return protocol.ok_response(
                req_id, **protocol.snapshot_payload(snapshot)
            )
        if op == "stats":
            self._barrier()
            stats = self.engine.stats()
            payload = {
                "points": stats.points,
                "epoch": stats.epoch,
                "backend": stats.backend,
                "algorithm": stats.algorithm,
                "shards": getattr(stats, "shards", 1),
                "sessions": self.session_count,
                "inflight": self._inflight,
                "service": self.stats.as_dict(),
            }
            if self.window is not None:
                payload["window_size"] = len(self.window)
                payload["window_capacity"] = self.window.capacity
            return protocol.ok_response(req_id, **payload)
        if op == "window_append":
            if self.window is None:
                raise ProtocolError(
                    protocol.UNSUPPORTED,
                    "window_append needs a windowed deployment; start the "
                    "service with a window capacity "
                    "(serve --window-capacity)",
                )
            points = protocol.parse_points(request, self.engine.config.dim)
            self._barrier()
            pids, expired = self.window.append_many(points)
            return protocol.ok_response(
                req_id,
                pids=pids,
                expired=expired,
                window_size=len(self.window),
                epoch=self.engine.epoch,
            )
        if op == "shutdown":
            if not self.allow_shutdown:
                raise ProtocolError(
                    protocol.UNSUPPORTED,
                    "shutdown op is disabled; start the service with "
                    "allow_shutdown (serve --allow-shutdown-op)",
                )
            self.request_shutdown()
            return protocol.ok_response(
                req_id, shutting_down=True, epoch=self.engine.epoch
            )
        raise ProtocolError(  # pragma: no cover - decode_request gates ops
            protocol.BAD_REQUEST, f"unhandled op {op!r}"
        )

    def _require_mixed(self, op: str) -> None:
        if self.window is not None:
            raise ProtocolError(
                protocol.UNSUPPORTED,
                f"{op} is not available in a windowed deployment; drive "
                f"arrivals through window_append",
            )

    # ------------------------------------------------------------------
    # Response transport
    # ------------------------------------------------------------------

    def _send(self, session: _Session, response: Dict[str, Any]) -> None:
        """Queue one response line; abort the session if it stalls.

        Responses are written without awaiting ``drain()`` so one slow
        client never stalls its worker mid-queue; the bound comes from
        the hard ``max_write_buffer`` ceiling instead — a connection
        whose client stops reading is aborted, which is the documented
        bounded-memory contract.
        """
        if session.aborted or session.writer.is_closing():
            return
        try:
            session.writer.write(protocol.encode(response))
        except (ConnectionError, OSError):
            session.aborted = True
            return
        transport = session.writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > self.limits.max_write_buffer
        ):
            session.aborted = True
            self.stats.sessions_aborted += 1
            transport.abort()
