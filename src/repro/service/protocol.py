"""The wire protocol of the streaming cluster-analytics service.

One JSON object per line (UTF-8, ``\\n``-terminated) in each direction
— trivially scriptable from any language, inspectable with ``nc``, and
free of heavyweight dependencies.

**Requests** carry an ``op`` name, an optional client-chosen ``id``
(echoed verbatim in the response so out-of-order replies — e.g. an
immediate backpressure reject overtaking queued work — can be matched),
and op-specific parameters::

    {"id": 7, "op": "ingest", "points": [[1.0, 2.0], [1.5, 2.5]]}

**Responses** echo ``id``, carry ``ok`` plus either the op's payload or
an ``error`` object, and — for every op that touched or observed the
engine — the engine ``epoch``, the service's monotonic consistency
token::

    {"id": 7, "ok": true, "pids": [0, 1], "pending": 2, "epoch": 0}
    {"id": 8, "ok": false, "error": {"code": 429, "type":
        "backpressure", "message": "session queue full"}}

Error codes follow the HTTP convention the issue names: ``400`` bad
request, ``404`` unknown point id, ``405`` unsupported op for this
deployment, ``429`` backpressure / admission reject, ``500`` internal,
``503`` shutting down.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List

from repro.errors import (
    ConfigError,
    InvalidQueryError,
    ReproError,
    ShardTimeoutError,
    UnknownPointError,
    UnsupportedOperationError,
)

#: Longest accepted request line (bytes).  Bounds per-request memory;
#: also passed as the ``limit`` of the server's stream reader.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Ops the service understands.  ``window_append`` only in windowed
#: deployments; ``shutdown`` only when the server enables it.
KNOWN_OPS = (
    "ping",
    "ingest",
    "delete",
    "flush",
    "cgroup_by",
    "snapshot",
    "stats",
    "window_append",
    "bye",
    "shutdown",
)

BAD_REQUEST = 400
UNKNOWN_POINT = 404
UNSUPPORTED = 405
BACKPRESSURE = 429
INTERNAL = 500
UNAVAILABLE = 503

_CODE_TYPES = {
    BAD_REQUEST: "bad_request",
    UNKNOWN_POINT: "unknown_point",
    UNSUPPORTED: "unsupported",
    BACKPRESSURE: "backpressure",
    INTERNAL: "internal",
    UNAVAILABLE: "unavailable",
}


class ProtocolError(ReproError):
    """A malformed or rejected request, carrying its wire error code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def encode(payload: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON plus the line terminator."""
    return (
        json.dumps(payload, separators=(",", ":"), allow_nan=False).encode(
            "utf-8"
        )
        + b"\n"
    )


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse and shape-check one request line.

    Raises :class:`ProtocolError` (code 400) on anything that is not a
    JSON object with a known string ``op``.
    """
    try:
        request = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(BAD_REQUEST, f"request is not JSON: {exc}") from None
    if not isinstance(request, dict):
        raise ProtocolError(
            BAD_REQUEST,
            f"request must be a JSON object, got {type(request).__name__}",
        )
    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError(BAD_REQUEST, "request is missing a string 'op'")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            BAD_REQUEST,
            f"unknown op {op!r}; known ops: {', '.join(KNOWN_OPS)}",
        )
    req_id = request.get("id")
    if req_id is not None and not isinstance(req_id, (str, int)):
        raise ProtocolError(
            BAD_REQUEST, f"request id must be a string or integer, got "
            f"{type(req_id).__name__}"
        )
    return request


def decode_response(line: bytes) -> Dict[str, Any]:
    """Parse one response line (client side)."""
    try:
        response = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            BAD_REQUEST, f"response is not JSON: {exc}"
        ) from None
    if not isinstance(response, dict):
        raise ProtocolError(
            BAD_REQUEST,
            f"response must be a JSON object, got {type(response).__name__}",
        )
    return response


def ok_response(req_id, **payload) -> Dict[str, Any]:
    response = {"id": req_id, "ok": True}
    response.update(payload)
    return response


def error_response(req_id, code: int, message: str) -> Dict[str, Any]:
    return {
        "id": req_id,
        "ok": False,
        "error": {
            "code": code,
            "type": _CODE_TYPES.get(code, "error"),
            "message": message,
        },
    }


def code_for_exception(exc: BaseException) -> int:
    """The wire error code a service-side exception maps to."""
    if isinstance(exc, ProtocolError):
        return exc.code
    if isinstance(exc, UnknownPointError):
        return UNKNOWN_POINT
    if isinstance(exc, UnsupportedOperationError):
        return UNSUPPORTED
    if isinstance(exc, (InvalidQueryError, ConfigError)):
        return BAD_REQUEST
    if isinstance(exc, ShardTimeoutError):
        return INTERNAL
    if isinstance(exc, ReproError):
        return INTERNAL
    return INTERNAL


def exception_message(exc: BaseException) -> str:
    """A wire-safe message for a service-side exception."""
    if isinstance(exc, UnknownPointError):
        # KeyError subclasses repr-quote their str(); unwrap one level.
        args = exc.args
        return str(args[0]) if args else str(exc)
    return str(exc) or type(exc).__name__


# ----------------------------------------------------------------------
# Parameter validation (server side)
# ----------------------------------------------------------------------


def parse_points(request: Dict[str, Any], dim: int) -> List[List[float]]:
    """Validate and convert a request's ``points`` parameter."""
    points = request.get("points")
    if not isinstance(points, list):
        raise ProtocolError(
            BAD_REQUEST, "'points' must be a list of coordinate rows"
        )
    parsed: List[List[float]] = []
    for row in points:
        if not isinstance(row, (list, tuple)) or len(row) != dim:
            raise ProtocolError(
                BAD_REQUEST,
                f"every point must be a list of {dim} coordinates, got "
                f"{row!r}",
            )
        try:
            coords = [float(x) for x in row]
        except (TypeError, ValueError):
            raise ProtocolError(
                BAD_REQUEST, f"non-numeric coordinate in point {row!r}"
            ) from None
        if not all(math.isfinite(x) for x in coords):
            raise ProtocolError(
                BAD_REQUEST, f"non-finite coordinate in point {row!r}"
            )
        parsed.append(coords)
    return parsed


def parse_pids(request: Dict[str, Any], key: str = "pids") -> List[int]:
    """Validate and convert a request's point-id list parameter."""
    pids = request.get(key)
    if not isinstance(pids, list):
        raise ProtocolError(BAD_REQUEST, f"{key!r} must be a list of ids")
    parsed: List[int] = []
    for pid in pids:
        if isinstance(pid, bool) or not isinstance(pid, int):
            raise ProtocolError(
                BAD_REQUEST, f"point ids must be integers, got {pid!r}"
            )
        parsed.append(pid)
    return parsed


# ----------------------------------------------------------------------
# Payload builders (shared by the server and the differential harness,
# so "bit-identical to a direct Engine" is checked through the same
# serialization)
# ----------------------------------------------------------------------


def outcome_payload(outcome) -> Dict[str, Any]:
    """The wire payload of an epoch-stamped C-group-by outcome.

    Group and noise order are the engine's canonical deterministic
    order — serialized as-is, NOT re-sorted, so the wire bytes are
    bit-identical to what a direct engine call yields.
    """
    return {
        "groups": [list(group) for group in outcome.groups],
        "noise": list(outcome.noise),
        "epoch": outcome.epoch,
        "backend": outcome.backend,
    }


def snapshot_payload(snapshot) -> Dict[str, Any]:
    """The wire payload of an epoch-stamped full clustering.

    ``Clustering`` holds clusters as sets; the wire form is canonical:
    each cluster sorted ascending, clusters ordered by first member,
    noise sorted ascending.
    """
    clusters = sorted(sorted(cluster) for cluster in snapshot.clusters)
    return {
        "clusters": clusters,
        "noise": sorted(snapshot.noise),
        "epoch": snapshot.epoch,
        "size": snapshot.size,
    }
