"""An asyncio client for the cluster-analytics service.

:class:`ServiceClient` speaks the JSON-lines protocol of
:mod:`repro.service.protocol`: it assigns a fresh request id to every
op, keeps a future per outstanding id and matches responses as they
arrive — which is what makes out-of-order replies (a 429 reject
overtaking queued work) transparent to callers.  Typed helpers cover
every service op; a server-side error response resolves into a raised
:class:`ServiceError` carrying the wire code.

Pipelining is explicit: ``await client.ingest(...)`` is one
round-trip, while ``client.submit("ingest", points=...)`` returns the
future immediately so a caller can keep many ops in flight (the load
harness drives the service exactly that way).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.service import protocol


class ServiceError(ReproError):
    """A service-side error response, surfaced client-side.

    ``code`` is the wire error code (400/404/405/429/500/503) and
    ``error_type`` its symbolic name from the response.
    """

    def __init__(self, code: int, error_type: str, message: str) -> None:
        super().__init__(f"[{code} {error_type}] {message}")
        self.code = code
        self.error_type = error_type
        self.message = message


class ServiceClient:
    """One connection to a :class:`repro.service.ClusterService`.

    Use as an async context manager, or pair :meth:`connect` with
    :meth:`aclose`::

        client = await ServiceClient.connect("127.0.0.1", 7171)
        try:
            pids = (await client.ingest([[0.0, 0.0]]))["pids"]
            groups = (await client.cgroup_by(pids))["groups"]
        finally:
            await client.aclose()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[Any, "asyncio.Future[Dict[str, Any]]"] = {}
        self._next_id = 0
        self._closed = False
        self._conn_lost: Optional[Exception] = None
        self._reader_task = asyncio.ensure_future(self._read_responses())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        return cls(reader, writer)

    # ------------------------------------------------------------------
    # Response pump
    # ------------------------------------------------------------------

    async def _read_responses(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    self._fail_pending(
                        None, "service closed the connection"
                    )
                    return
                if not line.strip():
                    continue
                response = protocol.decode_response(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
                # Responses with unknown / absent ids (e.g. a reject
                # issued before the request was parsed) are dropped;
                # their requester already failed or never existed.
        except asyncio.CancelledError:
            self._fail_pending(None, "client is closing")
            raise
        except Exception as exc:  # noqa: BLE001
            # Any way the pump can die — a connection reset, a socket
            # error, an over-long or garbled line from a crashing
            # server — must fail every outstanding request: a pending
            # future nothing will ever resolve is a caller hung
            # forever.
            self._fail_pending(
                exc, f"connection to the service was lost: {exc}"
            )

    def _fail_pending(
        self, cause: Optional[BaseException], message: str
    ) -> None:
        """Fail every outstanding request with a :class:`ServiceError`.

        Callers always see the client's documented failure surface
        (``ServiceError`` with code 503) whatever the underlying cause
        — raw ``OSError`` / decode errors ride along as ``__cause__``.
        """
        error = ServiceError(protocol.UNAVAILABLE, "connection_lost", message)
        error.__cause__ = cause
        self._conn_lost = error
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    # ------------------------------------------------------------------
    # Request submission
    # ------------------------------------------------------------------

    def submit(self, op: str, **params) -> "asyncio.Future[Dict[str, Any]]":
        """Send one op now; returns the future of its response payload.

        The returned future resolves to the ``ok`` response dict or
        raises :class:`ServiceError` for an error response — enabling
        explicit pipelining without awaiting each round-trip.
        """
        if self._closed:
            raise ReproError("client is closed")
        if self._conn_lost is not None:
            raise ReproError(
                f"connection lost: {self._conn_lost}"
            ) from self._conn_lost
        self._next_id += 1
        req_id = self._next_id
        request = {"id": req_id, "op": op}
        request.update(params)
        raw: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[req_id] = raw
        self._writer.write(protocol.encode(request))
        return asyncio.ensure_future(self._unwrap(raw))

    async def _unwrap(self, raw: "asyncio.Future[Dict[str, Any]]"):
        response = await raw
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        raise ServiceError(
            int(error.get("code", protocol.INTERNAL)),
            str(error.get("type", "error")),
            str(error.get("message", "unknown service error")),
        )

    async def call(self, op: str, **params) -> Dict[str, Any]:
        """One full round-trip: submit the op, await its response."""
        return await self.submit(op, **params)

    # ------------------------------------------------------------------
    # Typed helpers (one per service op)
    # ------------------------------------------------------------------

    async def ping(self, payload=None) -> Dict[str, Any]:
        if payload is None:
            return await self.call("ping")
        return await self.call("ping", payload=payload)

    async def ingest(
        self, points: Sequence[Sequence[float]]
    ) -> Dict[str, Any]:
        return await self.call("ingest", points=[list(p) for p in points])

    async def delete(self, pids: Sequence[int]) -> Dict[str, Any]:
        return await self.call("delete", pids=list(pids))

    async def flush(self) -> Dict[str, Any]:
        return await self.call("flush")

    async def cgroup_by(self, pids: Sequence[int]) -> Dict[str, Any]:
        return await self.call("cgroup_by", pids=list(pids))

    async def snapshot(self) -> Dict[str, Any]:
        return await self.call("snapshot")

    async def stats(self) -> Dict[str, Any]:
        return await self.call("stats")

    async def window_append(
        self, points: Sequence[Sequence[float]]
    ) -> Dict[str, Any]:
        return await self.call(
            "window_append", points=[list(p) for p in points]
        )

    async def shutdown(self) -> Dict[str, Any]:
        return await self.call("shutdown")

    async def bye(self) -> Dict[str, Any]:
        """Polite goodbye: the server flushes this session and hangs up."""
        return await self.call("bye")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def aclose(self) -> None:
        """Close the connection; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            if not self._writer.is_closing():
                self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()
        return None
