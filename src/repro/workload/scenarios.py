"""Streaming scenario families beyond the paper's Section 8.1 workload.

The paper's workload is a fixed mixed insert/delete/query sequence; a
*scenario* here is a higher-level serving pattern.  The first family is
**sliding-window / time-decay clustering**: arrivals stream in per-tick
batches (bursty or density-evolving, from the seed-spreader regime
generators), a :class:`repro.analysis.WindowedEngine` keeps only the
most recent ``capacity`` points by expiring the oldest through bulk
``delete_many`` on the fully-dynamic path, and periodic C-group-by
queries over the live window act as barriers.

:func:`run_sliding_window` mirrors the contract of
:func:`repro.workload.runner.run_workload_engine`: wall-clock
microseconds per timed entry in a :class:`RunResult`, with
``op_sizes`` amortizing each windowed batch over the updates it covered
(inserts plus expiries) and the scenario name stamped into
``RunResult.scenario``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import kernels
from repro.analysis.window import WindowedEngine
from repro.errors import ConfigError
from repro.workload.runner import RunResult
from repro.workload.seed_spreader import (
    burst_arrival_stream,
    evolving_density_stream,
)

Point = Tuple[float, ...]

#: Arrival-regime choices of the sliding-window scenario builder.
ARRIVAL_REGIMES = ("burst", "evolving")

#: Scenario names the CLI exposes (``bench --scenario``); ``mixed`` is
#: the classic Section 8.1 workload handled by the plain runners.
SCENARIO_CHOICES = ("mixed", "sliding-window")

QUERY_SIZE_DEFAULT = 64


@dataclass(frozen=True)
class SlidingWindowScenario:
    """One generated sliding-window run: batches plus window knobs."""

    dim: int
    capacity: int
    arrival: str
    batches: List[List[Point]] = field(repr=False)
    query_frequency: int = 5
    query_size: int = QUERY_SIZE_DEFAULT
    seed: Optional[int] = None

    @property
    def total_points(self) -> int:
        return sum(len(b) for b in self.batches)


def sliding_window_scenario(
    n: int,
    dim: int,
    capacity: Optional[int] = None,
    arrival: str = "burst",
    query_frequency: int = 5,
    query_size: int = QUERY_SIZE_DEFAULT,
    seed: Optional[int] = None,
) -> SlidingWindowScenario:
    """Build a sliding-window scenario from one of the arrival regimes.

    ``capacity`` defaults to ``max(1, n // 4)`` — the window turns over
    roughly four times per run, so the expiry path is exercised
    throughout instead of only at the tail.  A query barrier lands
    after every ``query_frequency`` batches, over up to ``query_size``
    ids sampled uniformly from the live window.
    """
    if arrival not in ARRIVAL_REGIMES:
        raise ConfigError(
            f"unknown arrival regime {arrival!r}; choices: "
            f"{', '.join(ARRIVAL_REGIMES)}"
        )
    if query_frequency < 1:
        raise ConfigError(
            f"query_frequency must be >= 1, got {query_frequency}"
        )
    if query_size < 1:
        raise ConfigError(f"query_size must be >= 1, got {query_size}")
    if capacity is None:
        capacity = max(1, n // 4)
    elif (
        not isinstance(capacity, int)
        or isinstance(capacity, bool)
        or capacity < 1
    ):
        raise ConfigError(
            f"window capacity must be a positive integer, got {capacity!r}"
        )
    if arrival == "burst":
        batches = burst_arrival_stream(n, dim, seed=seed)
    else:
        batches = evolving_density_stream(n, dim, seed=seed)
    return SlidingWindowScenario(
        dim=dim,
        capacity=capacity,
        arrival=arrival,
        batches=batches,
        query_frequency=query_frequency,
        query_size=query_size,
        seed=seed,
    )


def run_sliding_window(
    engine,
    scenario: SlidingWindowScenario,
    max_batches: Optional[int] = None,
) -> RunResult:
    """Drive (a prefix of) a sliding-window scenario through an engine.

    Each timed ``window_append`` entry covers the batch's insertions
    plus the expiries it triggered (that is the latency one windowed
    arrival tick costs the caller); queries are timed as usual.  The
    query-id sampling is seeded from the scenario, so two runs of the
    same scenario execute identical op sequences.
    """
    window = WindowedEngine(engine, scenario.capacity)
    result = RunResult(
        backend=kernels.active_backend_name(), scenario="sliding-window"
    )
    rng = random.Random(scenario.seed)
    perf = time.perf_counter
    batches = scenario.batches
    if max_batches is not None:
        batches = batches[:max_batches]
    for tick, batch in enumerate(batches, start=1):
        if batch:
            start = perf()
            pids, expired = window.append_many(batch)
            elapsed = perf() - start
            result.op_kinds.append("window_append")
            result.op_costs.append(elapsed * 1e6)
            result.op_sizes.append(len(pids) + len(expired))
        if tick % scenario.query_frequency == 0 and len(window) >= 2:
            live = window.ids()
            k = min(scenario.query_size, len(live))
            pids = rng.sample(live, k)
            start = perf()
            window.cgroup_by_many(pids)
            elapsed = perf() - start
            result.op_kinds.append("query")
            result.op_costs.append(elapsed * 1e6)
            result.op_sizes.append(1)
    result.shards = engine.config.shards or 1
    if engine.config.shards:
        result.transport = engine.config.resolved_shard_transport
        result.restarts = getattr(engine, "restarts", 0)
    fragment_stats = getattr(engine.stats(), "fragment_cache", None)
    if fragment_stats is not None:
        result.fragment_hits = fragment_stats.hits
        result.fragment_misses = fragment_stats.misses
        result.fragment_invalidations = fragment_stats.invalidations
    return result
