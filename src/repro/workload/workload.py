"""Workload construction — Steps 1-3 of Section 8.1.

A workload is a sequence of *operations* over a point universe:

* ``("insert", idx)`` — insert point ``points[idx]``;
* ``("delete", idx)`` — delete that point (always after its insertion);
* ``("query", indices)`` — a C-group-by query over currently-alive points.

Step 1 shuffles a seed-spreader dataset into the insertion order.  Step 2
appends deletion tokens, re-permutes until every prefix has at least as
many insertions as tokens, then fills each token with a uniformly random
currently-alive point.  Step 3 interleaves a query after every ``fqry``
updates, with ``|Q|`` uniform in ``[2, 100]`` sampled from the alive set.

The *batched* encoding (:func:`batch_ops` / :meth:`Workload.batched`)
coalesces maximal runs of same-kind updates into bulk operations for the
``insert_many`` / ``delete_many`` engine:

* ``("insert_many", [idx, ...])`` — one bulk insertion;
* ``("delete_many", [idx, ...])`` — one bulk deletion;
* queries pass through unchanged and act as batch barriers, so every
  query observes exactly the same alive set as in the sequential
  encoding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.workload.seed_spreader import seed_spreader

Point = Tuple[float, ...]
Operation = Tuple[str, Union[int, List[int]]]

QUERY_MIN = 2
QUERY_MAX = 100


@dataclass
class Workload:
    """A generated operation sequence plus its parameters."""

    dim: int
    points: List[Point]
    ops: List[Operation] = field(default_factory=list)

    @property
    def update_count(self) -> int:
        return sum(1 for kind, _ in self.ops if kind != "query")

    @property
    def insert_count(self) -> int:
        return sum(1 for kind, _ in self.ops if kind == "insert")

    @property
    def delete_count(self) -> int:
        return sum(1 for kind, _ in self.ops if kind == "delete")

    @property
    def query_count(self) -> int:
        return sum(1 for kind, _ in self.ops if kind == "query")

    def batched(self, batch_size: int) -> List[Operation]:
        """This workload's operations in the batched encoding."""
        return batch_ops(self.ops, batch_size)


def batch_ops(ops: Sequence[Operation], batch_size: int) -> List[Operation]:
    """Coalesce runs of same-kind updates into bulk operations.

    Maximal runs of consecutive ``insert`` (resp. ``delete``) ops become
    ``("insert_many", [idx, ...])`` (resp. ``("delete_many", ...)``)
    chunks of at most ``batch_size`` indices; ``query`` ops pass through
    unchanged and terminate the current run.  Applying the batched
    encoding performs the same updates between any two queries as the
    sequential encoding.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    batched: List[Operation] = []
    run_kind: Optional[str] = None
    run: List[int] = []

    def flush() -> None:
        nonlocal run
        for start in range(0, len(run), batch_size):
            batched.append((f"{run_kind}_many", run[start : start + batch_size]))
        run = []

    for kind, arg in ops:
        if kind == "query":
            if run:
                flush()
            run_kind = None
            batched.append((kind, arg))
        elif kind in ("insert", "delete"):
            if kind != run_kind and run:
                flush()
            run_kind = kind
            run.append(arg)  # type: ignore[arg-type]
        else:
            raise ValueError(f"unknown operation kind {kind!r}")
    if run:
        flush()
    return batched


def _good_token_permutation(
    rng: random.Random, insert_count: int, delete_count: int
) -> List[bool]:
    """A shuffled sequence of inserts (True) / tokens (False) where every
    prefix has at least as many inserts as tokens."""
    sequence = [True] * insert_count + [False] * delete_count
    while True:
        rng.shuffle(sequence)
        balance = 0
        good = True
        for is_insert in sequence:
            balance += 1 if is_insert else -1
            if balance < 0:
                good = False
                break
        if good:
            return sequence


def generate_workload(
    n_updates: int,
    dim: int,
    insert_fraction: float = 1.0,
    query_frequency: Optional[int] = None,
    seed: Optional[int] = None,
    points: Optional[Sequence[Point]] = None,
) -> Workload:
    """Build a workload of ``n_updates`` updates (Section 8.1).

    ``insert_fraction`` is the paper's %ins (1.0 = semi-dynamic).
    ``query_frequency`` inserts one C-group-by query after that many
    updates (None = no queries).  ``points`` overrides the seed-spreader
    dataset (must contain at least the number of insertions).
    """
    if n_updates < 1:
        raise ValueError(f"n_updates must be >= 1, got {n_updates}")
    if not 0.0 < insert_fraction <= 1.0:
        raise ValueError(f"insert_fraction must be in (0, 1], got {insert_fraction}")
    rng = random.Random(seed)
    insert_count = int(round(n_updates * insert_fraction))
    delete_count = n_updates - insert_count

    if points is None:
        data = seed_spreader(insert_count, dim, seed=rng.randrange(2**31))
    else:
        if len(points) < insert_count:
            raise ValueError(
                f"need {insert_count} points, got {len(points)}"
            )
        data = [tuple(p) for p in points[:insert_count]]
    order = list(range(insert_count))
    rng.shuffle(order)

    shape = _good_token_permutation(rng, insert_count, delete_count)

    ops: List[Operation] = []
    alive: List[int] = []
    alive_pos: dict = {}
    insert_cursor = 0
    updates_done = 0
    for is_insert in shape:
        if is_insert:
            idx = order[insert_cursor]
            insert_cursor += 1
            ops.append(("insert", idx))
            alive_pos[idx] = len(alive)
            alive.append(idx)
        else:
            # Remove a uniform alive point (swap-pop keeps this O(1)).
            pos = rng.randrange(len(alive))
            idx = alive[pos]
            last = alive.pop()
            if last != idx:
                alive[pos] = last
                alive_pos[last] = pos
            del alive_pos[idx]
            ops.append(("delete", idx))
        updates_done += 1
        if (
            query_frequency
            and updates_done % query_frequency == 0
            and len(alive) >= QUERY_MIN
        ):
            size = rng.randint(QUERY_MIN, min(QUERY_MAX, len(alive)))
            ops.append(("query", rng.sample(alive, size)))
    return Workload(dim=dim, points=data, ops=ops)
