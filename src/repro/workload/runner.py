"""Execute a workload against any clusterer and record per-op costs.

The clusterer must expose ``insert(point) -> pid``, ``delete(pid)`` and
``cgroup_by(pids)``.  Costs are wall-clock microseconds per operation,
mirroring the paper's measurement units.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

from repro.workload.workload import Workload


class DynamicClusterer(Protocol):
    def insert(self, point: Sequence[float]) -> int: ...

    def delete(self, pid: int) -> None: ...

    def cgroup_by(self, pids): ...


@dataclass
class RunResult:
    """Per-operation costs of one workload execution (microseconds)."""

    op_kinds: List[str] = field(default_factory=list)
    op_costs: List[float] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return sum(self.op_costs)

    @property
    def average_cost(self) -> float:
        """The paper's *average workload cost*: avgcost(W)."""
        return self.total_cost / len(self.op_costs) if self.op_costs else 0.0

    def update_costs(self) -> List[float]:
        return [
            c for k, c in zip(self.op_kinds, self.op_costs) if k != "query"
        ]

    def query_costs(self) -> List[float]:
        return [
            c for k, c in zip(self.op_kinds, self.op_costs) if k == "query"
        ]

    @property
    def max_update_cost(self) -> float:
        costs = self.update_costs()
        return max(costs) if costs else 0.0


def run_workload(
    clusterer: DynamicClusterer,
    workload: Workload,
    max_ops: Optional[int] = None,
) -> RunResult:
    """Run (a prefix of) a workload, timing each operation."""
    result = RunResult()
    pid_of = {}
    perf = time.perf_counter
    ops = workload.ops if max_ops is None else workload.ops[:max_ops]
    points = workload.points
    for kind, arg in ops:
        if kind == "insert":
            start = perf()
            pid = clusterer.insert(points[arg])
            elapsed = perf() - start
            pid_of[arg] = pid
        elif kind == "delete":
            pid = pid_of.pop(arg)
            start = perf()
            clusterer.delete(pid)
            elapsed = perf() - start
        elif kind == "query":
            pids = [pid_of[idx] for idx in arg]
            start = perf()
            clusterer.cgroup_by(pids)
            elapsed = perf() - start
        else:
            raise ValueError(f"unknown operation kind {kind!r}")
        result.op_kinds.append(kind)
        result.op_costs.append(elapsed * 1e6)
    return result
