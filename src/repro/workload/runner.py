"""Execute a workload against any clusterer and record per-op costs.

The clusterer must expose ``insert(point) -> pid``, ``delete(pid)`` and
``cgroup_by(pids)``.  Costs are wall-clock microseconds per operation,
mirroring the paper's measurement units.

:func:`run_workload_batched` drives the bulk engine instead: consecutive
same-kind updates are coalesced into ``insert_many`` / ``delete_many``
calls of at most ``batch_size`` points, queries are barriers resolved
through the batched ``cgroup_by_many`` query engine, and each bulk call
is one timed entry.  ``RunResult.op_sizes`` records how many updates
each entry covers, so per-update costs stay comparable across the two
encodings.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

from repro import kernels
# Imported under an alias so the module-level __getattr__ shim below
# still intercepts (and deprecation-warns on) the historical
# ``from repro.workload.runner import UnsupportedOperationError``.
from repro.errors import UnsupportedOperationError as _UnsupportedOperationError
from repro.workload.workload import Workload, batch_ops


class DynamicClusterer(Protocol):
    def insert(self, point: Sequence[float]) -> int: ...

    def delete(self, pid: int) -> None: ...

    def cgroup_by(self, pids): ...


class BulkDynamicClusterer(DynamicClusterer, Protocol):
    """The bulk surface driven by :func:`run_workload_batched`.

    Every clusterer in the repo provides it — the dynamic clusterers via
    their vectorized update paths and the shared batched query engine,
    the baselines via the sequential fallbacks of
    :class:`repro.core.bulk.SequentialBulkMixin` and
    :class:`repro.core.bulk.SequentialQueryMixin`.
    """

    def insert_many(self, points) -> List[int]: ...

    def delete_many(self, pids) -> None: ...

    def cgroup_by_many(self, pids): ...


def __getattr__(name: str):
    # Deprecated re-export: UnsupportedOperationError moved to
    # repro.errors (PEP 562 module __getattr__, so importing it from
    # here still works but warns).
    if name == "UnsupportedOperationError":
        warnings.warn(
            "importing UnsupportedOperationError from repro.workload.runner "
            "is deprecated; import it from repro.errors (or repro) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _UnsupportedOperationError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _interpolated_percentile(costs: List[float], p: float) -> float:
    """Linear-interpolation percentile of a cost list (0-100)."""
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    costs = sorted(costs)
    if not costs:
        return 0.0
    rank = (len(costs) - 1) * (p / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return costs[lo]
    frac = rank - lo
    return costs[lo] * (1.0 - frac) + costs[hi] * frac


@dataclass
class RunResult:
    """Per-operation costs of one workload execution (microseconds).

    ``op_sizes[i]`` is the number of workload operations entry ``i``
    covered — 1 for sequential updates and for queries, the batch
    length for ``insert_many`` / ``delete_many`` entries.  The
    ``per-update`` / ``per-operation`` accessors amortize batch entries
    over their sizes, which is what makes batched and sequential runs
    comparable number-for-number.

    ``backend`` records which kernel backend (:mod:`repro.kernels`)
    produced the run, ``shards`` how many engine shards served it
    (1 for a single engine) and ``transport`` how routed batches
    reached those shards (``"inline"`` for the serial executor,
    ``"pickle"``/``"shm"`` for the process executor, ``""`` for an
    unsharded run), so benchmark files and reports can attribute
    numbers to the compute substrate and deployment shape that
    generated them.  ``restarts`` counts supervised shard-worker
    recoveries during the run (always 0 for unsharded and serial
    deployments) — a run that survived worker deaths says so in its
    record.  ``fragment_hits`` / ``fragment_misses`` /
    ``fragment_invalidations`` record the incremental fragment cache's
    counters over the run (all 0 when the cache is disabled or the
    engine has none), so a benchmark row shows how incremental its
    barriers actually were.  ``scenario`` names the workload family the
    run executed (``""`` for the classic Section 8.1 mixed workload,
    ``"sliding-window"`` for :mod:`repro.workload.scenarios` runs), so
    result files distinguish the families without guessing from op
    kinds.
    """

    op_kinds: List[str] = field(default_factory=list)
    op_costs: List[float] = field(default_factory=list)
    op_sizes: List[int] = field(default_factory=list)
    backend: str = ""
    shards: int = 1
    transport: str = ""
    restarts: int = 0
    fragment_hits: int = 0
    fragment_misses: int = 0
    fragment_invalidations: int = 0
    scenario: str = ""

    def _sizes(self) -> List[int]:
        # Hand-built results may omit sizes; treat every entry as 1 op.
        return self.op_sizes if self.op_sizes else [1] * len(self.op_costs)

    @property
    def total_cost(self) -> float:
        return sum(self.op_costs)

    @property
    def average_cost(self) -> float:
        """The paper's *average workload cost*: avgcost(W)."""
        return self.total_cost / len(self.op_costs) if self.op_costs else 0.0

    @property
    def operation_count(self) -> int:
        """Underlying workload operations covered (batches amortized)."""
        return sum(self._sizes())

    @property
    def average_cost_per_operation(self) -> float:
        """avgcost over the underlying operations.

        Equals ``average_cost`` for sequential runs; for batched runs
        each batch entry is spread over the updates it covered.
        """
        count = self.operation_count
        return self.total_cost / count if count else 0.0

    def update_costs(self) -> List[float]:
        return [
            c for k, c in zip(self.op_kinds, self.op_costs) if k != "query"
        ]

    def per_update_costs(self) -> List[float]:
        """Update entry costs amortized per covered update."""
        return [
            c / s
            for k, c, s in zip(self.op_kinds, self.op_costs, self._sizes())
            if k != "query" and s > 0
        ]

    def query_costs(self) -> List[float]:
        return [
            c for k, c in zip(self.op_kinds, self.op_costs) if k == "query"
        ]

    @property
    def max_update_cost(self) -> float:
        costs = self.update_costs()
        return max(costs) if costs else 0.0

    def percentile(self, p: float) -> float:
        """The p-th percentile (0-100) of the update entry costs.

        Linear interpolation between closest ranks, so ``percentile(50)``
        is the median update cost and ``percentile(99)`` the tail cost
        production monitoring watches (the paper itself reports only the
        maximum).  Batch entries count as one update each (the latency a
        caller experiences); use :meth:`per_update_percentile` for the
        amortized view.  Returns 0.0 when the run had no updates.
        """
        return _interpolated_percentile(self.update_costs(), p)

    def per_update_percentile(self, p: float) -> float:
        """The p-th percentile of the amortized per-update costs."""
        return _interpolated_percentile(self.per_update_costs(), p)

    def query_percentile(self, p: float) -> float:
        """The p-th percentile (0-100) of the query entry costs.

        The query-side tail twin of :meth:`percentile` — ``p50``/``p99``
        of these are what the benchmark result files record and what the
        CI tail tripwires watch.  Returns 0.0 when the run had no
        queries.
        """
        return _interpolated_percentile(self.query_costs(), p)


def _unsupported(description: str, clusterer: object) -> _UnsupportedOperationError:
    return _UnsupportedOperationError(
        f"{description} but {type(clusterer).__name__} does not support "
        f"deletions (insert-only algorithm); use FullyDynamicClusterer or "
        f"an insert-only workload"
    )


def run_workload(
    clusterer: DynamicClusterer,
    workload: Workload,
    max_ops: Optional[int] = None,
) -> RunResult:
    """Run (a prefix of) a workload, timing each operation."""
    result = RunResult(backend=kernels.active_backend_name())
    pid_of = {}
    perf = time.perf_counter
    ops = workload.ops if max_ops is None else workload.ops[:max_ops]
    points = workload.points
    for position, (kind, arg) in enumerate(ops):
        if kind == "insert":
            start = perf()
            pid = clusterer.insert(points[arg])
            elapsed = perf() - start
            pid_of[arg] = pid
            size = 1
        elif kind == "delete":
            pid = pid_of.pop(arg)
            start = perf()
            try:
                clusterer.delete(pid)
            except NotImplementedError as exc:
                raise _unsupported(
                    f"workload op #{position} is a 'delete'", clusterer
                ) from exc
            elapsed = perf() - start
            size = 1
        elif kind == "query":
            pids = [pid_of[idx] for idx in arg]
            start = perf()
            clusterer.cgroup_by(pids)
            elapsed = perf() - start
            size = 1
        else:
            raise ValueError(f"unknown operation kind {kind!r}")
        result.op_kinds.append(kind)
        result.op_costs.append(elapsed * 1e6)
        result.op_sizes.append(size)
    return result


def run_workload_batched(
    clusterer: BulkDynamicClusterer,
    workload: Workload,
    batch_size: int,
    max_ops: Optional[int] = None,
) -> RunResult:
    """Run (a prefix of) a workload through the bulk-update engine.

    The (prefix of the) operation sequence is re-encoded with
    :func:`repro.workload.workload.batch_ops` and each ``insert_many`` /
    ``delete_many`` call is timed as one operation covering
    ``op_sizes[i]`` updates.  Queries observe the same alive sets as in
    the sequential encoding, so results are comparable run-for-run.
    """
    result = RunResult(backend=kernels.active_backend_name())
    pid_of = {}
    perf = time.perf_counter
    ops = workload.ops if max_ops is None else workload.ops[:max_ops]
    points = workload.points
    ops_done = 0  # underlying workload ops executed, for error reporting
    for kind, arg in batch_ops(ops, batch_size):
        if kind == "insert_many":
            batch = [points[idx] for idx in arg]
            start = perf()
            pids = clusterer.insert_many(batch)
            elapsed = perf() - start
            for idx, pid in zip(arg, pids):
                pid_of[idx] = pid
            size = len(arg)
        elif kind == "delete_many":
            pids = [pid_of.pop(idx) for idx in arg]
            start = perf()
            try:
                clusterer.delete_many(pids)
            except NotImplementedError as exc:
                raise _unsupported(
                    f"a bulk delete covers workload ops "
                    f"#{ops_done}..#{ops_done + len(arg) - 1}",
                    clusterer,
                ) from exc
            elapsed = perf() - start
            size = len(arg)
        elif kind == "query":
            pids = [pid_of[idx] for idx in arg]
            start = perf()
            clusterer.cgroup_by_many(pids)
            elapsed = perf() - start
            size = 1
        else:
            raise ValueError(f"unknown operation kind {kind!r}")
        ops_done += size
        result.op_kinds.append(kind)
        result.op_costs.append(elapsed * 1e6)
        result.op_sizes.append(size)
    return result


def run_workload_engine(
    engine,
    workload: Workload,
    max_ops: Optional[int] = None,
) -> RunResult:
    """Drive (a prefix of) a workload through a :class:`repro.api.Engine`.

    The engine facade satisfies both runner protocols (its ``insert`` /
    ``delete`` / ``cgroup_by`` and ``insert_many`` / ``delete_many`` /
    ``cgroup_by_many`` delegate to the underlying clusterer), so this
    picks the encoding from the engine's own configuration: the batched
    encoding when ``engine.config.batch_size`` is set, the sequential
    one otherwise.  Costs are therefore directly comparable with
    :func:`run_workload` / :func:`run_workload_batched` runs of the same
    workload against a bare clusterer.
    """
    batch_size = engine.config.batch_size
    if batch_size:
        result = run_workload_batched(engine, workload, batch_size, max_ops)
    else:
        result = run_workload(engine, workload, max_ops)
    result.shards = engine.config.shards or 1
    if engine.config.shards:
        result.transport = engine.config.resolved_shard_transport
        result.restarts = getattr(engine, "restarts", 0)
    fragment_stats = getattr(engine.stats(), "fragment_cache", None)
    if fragment_stats is not None:
        result.fragment_hits = fragment_stats.hits
        result.fragment_misses = fragment_stats.misses
        result.fragment_invalidations = fragment_stats.invalidations
    return result
