"""Workload machinery reproducing Section 8.1.

* :mod:`repro.workload.seed_spreader` — the "random walk with restart"
  static-data generator of Gan & Tao 2015 (~10 clusters + 0.01% noise).
* :mod:`repro.workload.workload` — Steps 1-3: shuffled insertions,
  deletion tokens filled with random alive points, periodic C-group-by
  queries with |Q| uniform in [2, 100].
* :mod:`repro.workload.runner` — executes a workload against any clusterer
  and records per-operation costs.
* :mod:`repro.workload.metrics` — avgcost(t), maxupdcost(t), average
  workload cost, exactly as defined in Section 8.2.
* :mod:`repro.workload.config` — the Table 2 parameter grid, scaled for
  pure Python (override sizes with ``REPRO_BENCH_N``).
* :mod:`repro.workload.scenarios` — streaming scenario families beyond
  the paper (sliding-window over burst-arrival / evolving-density
  regimes).
* :mod:`repro.workload.traffic` — fit-and-sample traffic-mix synthesis
  for the service load harness.
"""

from repro.workload.seed_spreader import (
    burst_arrival_stream,
    evolving_density_stream,
    seed_spreader,
)
from repro.workload.scenarios import (
    SlidingWindowScenario,
    run_sliding_window,
    sliding_window_scenario,
)
from repro.workload.traffic import TrafficMixSampler, TrafficOp, default_service_mix
from repro.workload.workload import (
    Operation,
    Workload,
    batch_ops,
    generate_workload,
)
from repro.errors import UnsupportedOperationError
from repro.workload.runner import (
    RunResult,
    run_workload,
    run_workload_batched,
    run_workload_engine,
)
from repro.workload.metrics import avgcost_series, maxupdcost_series

__all__ = [
    "Operation",
    "RunResult",
    "SlidingWindowScenario",
    "TrafficMixSampler",
    "TrafficOp",
    "UnsupportedOperationError",
    "Workload",
    "avgcost_series",
    "batch_ops",
    "burst_arrival_stream",
    "default_service_mix",
    "evolving_density_stream",
    "generate_workload",
    "maxupdcost_series",
    "run_sliding_window",
    "run_workload",
    "run_workload_batched",
    "run_workload_engine",
    "seed_spreader",
    "sliding_window_scenario",
]
