"""The seed-spreader dataset generator (Section 8.1, after Gan & Tao 2015).

A spreader sits at a location ``p`` in the data space ``[0, extent]^d`` and
emits points uniformly distributed in ``B(p, radius)``.  After emitting
``points_per_station`` points from the same spot it shifts by ``step`` in a
random direction.  At the end of every time tick it restarts (jumps to a
fresh uniform location) with probability ``10 / (0.9999 * n)`` — about ten
restarts per dataset, hence "around 10 clusters".  Finally ``0.01%`` of the
points are replaced by uniform noise.

Paper constants: extent 1e5, radius 25, 100 points per station, step 50.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

Point = Tuple[float, ...]

EXTENT = 1e5
RADIUS = 25.0
STEP = 50.0
POINTS_PER_STATION = 100
RESTART_NUMERATOR = 10.0
NOISE_FRACTION = 0.0001


def _uniform_in_ball(
    rng: random.Random, center: Point, radius: float, dim: int
) -> Point:
    """Uniform sample from the ball of the given radius around ``center``."""
    while True:
        direction = [rng.gauss(0.0, 1.0) for _ in range(dim)]
        norm = math.sqrt(sum(x * x for x in direction))
        if norm > 0:
            break
    scale = radius * (rng.random() ** (1.0 / dim)) / norm
    return tuple(c + x * scale for c, x in zip(center, direction))


def _random_location(rng: random.Random, dim: int, extent: float) -> Point:
    return tuple(rng.random() * extent for _ in range(dim))


def _clamp(point: Point, extent: float) -> Point:
    return tuple(min(max(x, 0.0), extent) for x in point)


def seed_spreader(
    n: int,
    dim: int,
    seed: Optional[int] = None,
    extent: float = EXTENT,
    radius: float = RADIUS,
    step: float = STEP,
    points_per_station: int = POINTS_PER_STATION,
    noise_fraction: float = NOISE_FRACTION,
) -> List[Point]:
    """Generate ``n`` points in ``[0, extent]^dim`` (clusters + noise)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    rng = random.Random(seed)
    noise_count = int(round(n * noise_fraction))
    cluster_count = n - noise_count
    restart_prob = min(1.0, RESTART_NUMERATOR / max(1, cluster_count))

    points: List[Point] = []
    location = _random_location(rng, dim, extent)
    emitted_here = 0
    for _ in range(cluster_count):
        points.append(_clamp(_uniform_in_ball(rng, location, radius, dim), extent))
        emitted_here += 1
        if emitted_here >= points_per_station:
            direction = [rng.gauss(0.0, 1.0) for _ in range(dim)]
            norm = math.sqrt(sum(x * x for x in direction)) or 1.0
            location = _clamp(
                tuple(c + step * x / norm for c, x in zip(location, direction)),
                extent,
            )
            emitted_here = 0
        if rng.random() < restart_prob:
            location = _random_location(rng, dim, extent)
            emitted_here = 0
    for _ in range(noise_count):
        points.append(_random_location(rng, dim, extent))
    return points
