"""The seed-spreader dataset generator (Section 8.1, after Gan & Tao 2015).

A spreader sits at a location ``p`` in the data space ``[0, extent]^d`` and
emits points uniformly distributed in ``B(p, radius)``.  After emitting
``points_per_station`` points from the same spot it shifts by ``step`` in a
random direction.  At the end of every time tick it restarts (jumps to a
fresh uniform location) with probability ``10 / (0.9999 * n)`` — about ten
restarts per dataset, hence "around 10 clusters".  Finally ``0.01%`` of the
points are replaced by uniform noise.

Paper constants: extent 1e5, radius 25, 100 points per station, step 50.

Beyond the paper's static generator, two *arrival-regime* variants feed
the streaming scenarios (the sliding-window bench and the
:mod:`repro.service` load harness).  Both return the stream already
chopped into per-tick batches, are fully determined by their seed, and
use the same spreader walk:

* :func:`burst_arrival_stream` — arrivals come in bursts whose sizes
  are drawn from a two-mode (quiet / hot) geometric mixture, the
  classic heavy-tailed live-traffic shape: long runs of small ticks
  punctuated by large spikes.
* :func:`evolving_density_stream` — the emission radius interpolates
  geometrically from ``start_radius`` to ``end_radius`` over the
  stream, so cluster density *evolves*: what starts as diffuse haze
  sharpens into dense clusters (or dissolves, if the radii are
  reversed) as the window slides.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Tuple

Point = Tuple[float, ...]

EXTENT = 1e5
RADIUS = 25.0
STEP = 50.0
POINTS_PER_STATION = 100
RESTART_NUMERATOR = 10.0
NOISE_FRACTION = 0.0001


def _uniform_in_ball(
    rng: random.Random, center: Point, radius: float, dim: int
) -> Point:
    """Uniform sample from the ball of the given radius around ``center``."""
    while True:
        direction = [rng.gauss(0.0, 1.0) for _ in range(dim)]
        norm = math.sqrt(sum(x * x for x in direction))
        if norm > 0:
            break
    scale = radius * (rng.random() ** (1.0 / dim)) / norm
    return tuple(c + x * scale for c, x in zip(center, direction))


def _random_location(rng: random.Random, dim: int, extent: float) -> Point:
    return tuple(rng.random() * extent for _ in range(dim))


def _clamp(point: Point, extent: float) -> Point:
    return tuple(min(max(x, 0.0), extent) for x in point)


def seed_spreader(
    n: int,
    dim: int,
    seed: Optional[int] = None,
    extent: float = EXTENT,
    radius: float = RADIUS,
    step: float = STEP,
    points_per_station: int = POINTS_PER_STATION,
    noise_fraction: float = NOISE_FRACTION,
) -> List[Point]:
    """Generate ``n`` points in ``[0, extent]^dim`` (clusters + noise)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    rng = random.Random(seed)
    noise_count = int(round(n * noise_fraction))
    cluster_count = n - noise_count
    restart_prob = min(1.0, RESTART_NUMERATOR / max(1, cluster_count))

    points: List[Point] = []
    location = _random_location(rng, dim, extent)
    emitted_here = 0
    for _ in range(cluster_count):
        points.append(_clamp(_uniform_in_ball(rng, location, radius, dim), extent))
        emitted_here += 1
        if emitted_here >= points_per_station:
            direction = [rng.gauss(0.0, 1.0) for _ in range(dim)]
            norm = math.sqrt(sum(x * x for x in direction)) or 1.0
            location = _clamp(
                tuple(c + step * x / norm for c, x in zip(location, direction)),
                extent,
            )
            emitted_here = 0
        if rng.random() < restart_prob:
            location = _random_location(rng, dim, extent)
            emitted_here = 0
    for _ in range(noise_count):
        points.append(_random_location(rng, dim, extent))
    return points


def _spreader_walk(
    rng: random.Random,
    count: int,
    dim: int,
    extent: float,
    radius_of: Callable[[int], float],
    step: float,
    points_per_station: int,
    noise_fraction: float,
) -> List[Point]:
    """The seed-spreader walk with a per-point emission radius.

    Identical structure to :func:`seed_spreader` (station shifts,
    restarts, trailing uniform noise) except the ball radius of point
    ``i`` is ``radius_of(i)`` — the hook the evolving-density regime
    uses.  Noise is interleaved uniformly (one toss per point) instead
    of appended at the end, because a *stream* has no end to append to.
    """
    noise_prob = min(1.0, max(0.0, noise_fraction))
    restart_prob = min(1.0, RESTART_NUMERATOR / max(1, count))
    points: List[Point] = []
    location = _random_location(rng, dim, extent)
    emitted_here = 0
    for i in range(count):
        if noise_prob and rng.random() < noise_prob:
            points.append(_random_location(rng, dim, extent))
            continue
        points.append(
            _clamp(_uniform_in_ball(rng, location, radius_of(i), dim), extent)
        )
        emitted_here += 1
        if emitted_here >= points_per_station:
            direction = [rng.gauss(0.0, 1.0) for _ in range(dim)]
            norm = math.sqrt(sum(x * x for x in direction)) or 1.0
            location = _clamp(
                tuple(c + step * x / norm for c, x in zip(location, direction)),
                extent,
            )
            emitted_here = 0
        if rng.random() < restart_prob:
            location = _random_location(rng, dim, extent)
            emitted_here = 0
    return points


def _chop(points: List[Point], sizes: List[int]) -> List[List[Point]]:
    """Chop a point stream into consecutive batches of the given sizes."""
    batches: List[List[Point]] = []
    cursor = 0
    for size in sizes:
        if cursor >= len(points):
            break
        batches.append(points[cursor : cursor + size])
        cursor += size
    if cursor < len(points):
        batches.append(points[cursor:])
    return batches


def burst_arrival_stream(
    n: int,
    dim: int,
    seed: Optional[int] = None,
    quiet_mean: int = 8,
    hot_mean: int = 96,
    hot_probability: float = 0.15,
    extent: float = EXTENT,
    radius: float = RADIUS,
    step: float = STEP,
    points_per_station: int = POINTS_PER_STATION,
    noise_fraction: float = NOISE_FRACTION,
) -> List[List[Point]]:
    """``n`` spreader points chopped into bursty per-tick batches.

    Each tick is *quiet* (geometric burst size with mean ``quiet_mean``)
    or, with probability ``hot_probability``, *hot* (mean ``hot_mean``)
    — long runs of trickle ticks punctuated by spikes an order of
    magnitude larger, which is exactly the arrival shape that stresses
    a service's admission control and a window's bulk-expiry path.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if quiet_mean < 1 or hot_mean < 1:
        raise ValueError(
            f"burst means must be >= 1, got quiet={quiet_mean} hot={hot_mean}"
        )
    if not 0.0 <= hot_probability <= 1.0:
        raise ValueError(
            f"hot_probability must be in [0, 1], got {hot_probability}"
        )
    rng = random.Random(seed)
    sizes: List[int] = []
    remaining = n
    while remaining > 0:
        mean = hot_mean if rng.random() < hot_probability else quiet_mean
        # Geometric burst size with the chosen mean (>= 1).
        size = 1 + int(rng.expovariate(1.0 / max(1, mean - 1))) if mean > 1 else 1
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    points = _spreader_walk(
        rng, n, dim, extent, lambda i: radius, step,
        points_per_station, noise_fraction,
    )
    return _chop(points, sizes)


def evolving_density_stream(
    n: int,
    dim: int,
    seed: Optional[int] = None,
    tick_size: int = 50,
    start_radius: float = RADIUS * 6.0,
    end_radius: float = RADIUS,
    extent: float = EXTENT,
    step: float = STEP,
    points_per_station: int = POINTS_PER_STATION,
    noise_fraction: float = NOISE_FRACTION,
) -> List[List[Point]]:
    """``n`` spreader points whose cluster density evolves over time.

    The emission radius interpolates geometrically from
    ``start_radius`` (point 0) to ``end_radius`` (point n-1): with the
    defaults, early arrivals are a diffuse haze and late arrivals form
    clusters six times denser, so a sliding window watches loose groups
    condense — the regime the paper's static generator cannot express.
    Batches are fixed-size ticks of ``tick_size`` points.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if tick_size < 1:
        raise ValueError(f"tick_size must be >= 1, got {tick_size}")
    if start_radius <= 0 or end_radius <= 0:
        raise ValueError(
            f"radii must be positive, got start={start_radius} "
            f"end={end_radius}"
        )
    rng = random.Random(seed)
    ratio = end_radius / start_radius
    span = max(1, n - 1)

    def radius_of(i: int) -> float:
        return start_radius * (ratio ** (i / span))

    points = _spreader_walk(
        rng, n, dim, extent, radius_of, step,
        points_per_station, noise_fraction,
    )
    return _chop(points, [tick_size] * (n // tick_size))
