"""The evaluation metrics of Section 8.2.

* ``avgcost(t) = (1/t) * sum_{i<=t} cost[i]`` over all operations;
* ``maxupdcost(t) = max_{i<=t} updcost[i]`` over updates only (query time
  is *not* registered in maxupdcost);
* *average workload cost* = ``avgcost(W)`` for the whole workload.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def checkpoints(total: int, count: int = 10) -> List[int]:
    """Evenly spaced 1-based operation indices ending at ``total``."""
    if total < 1:
        return []
    count = min(count, total)
    return [max(1, round(total * (i + 1) / count)) for i in range(count)]


def avgcost_series(
    op_costs: Sequence[float], marks: Sequence[int]
) -> List[Tuple[int, float]]:
    """``(t, avgcost(t))`` at each checkpoint ``t`` (1-based)."""
    series: List[Tuple[int, float]] = []
    running = 0.0
    mark_iter = iter(sorted(marks))
    mark = next(mark_iter, None)
    for i, cost in enumerate(op_costs, start=1):
        running += cost
        while mark is not None and i == mark:
            series.append((i, running / i))
            mark = next(mark_iter, None)
    return series


def maxupdcost_series(
    op_kinds: Sequence[str],
    op_costs: Sequence[float],
    marks: Sequence[int],
) -> List[Tuple[int, float]]:
    """``(t, maxupdcost(t))`` at each checkpoint ``t`` over all operations,
    where only update (non-query) costs enter the maximum."""
    series: List[Tuple[int, float]] = []
    best = 0.0
    mark_iter = iter(sorted(marks))
    mark = next(mark_iter, None)
    for i, (kind, cost) in enumerate(zip(op_kinds, op_costs), start=1):
        if kind != "query" and cost > best:
            best = cost
        while mark is not None and i == mark:
            series.append((i, best))
            mark = next(mark_iter, None)
    return series
