"""Fit-and-sample traffic-mix synthesis for the streaming service.

The related-work direction (GAN-based query-load generation, Sun et
al., arXiv:2303.14777) is to *learn* a workload's shape and sample new
traffic from it instead of hand-writing op sequences.  This module is
the simplest sound instance of that idea: :class:`TrafficMixSampler`
fits an empirical model of an observed service op stream — the
categorical distribution over op kinds joint with each kind's observed
batch-size histogram — and samples fresh, seeded, deterministic op
mixes from it.  The service load harness
(``benchmarks/test_service_latency.py``) drives its synthetic clients
from exactly this sampler, so the benchmark's traffic shape is fitted,
not hard-coded.

An *op* here is the service-level unit ``(kind, size)``: ``kind`` is a
protocol op name (``ingest`` / ``delete`` / ``cgroup_by`` / ...) and
``size`` the batch size it carried (points ingested, pids deleted or
queried; 1 for sizeless ops like ``ping``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: The canonical observed mix the default sampler is fitted on: a
#: mixed-serving session shape — ingest-dominated with periodic
#: deletions and C-group-by barriers, plus occasional snapshots —
#: mirroring the Table 2 default update/query ratios (%ins = 5/6,
#: f_qry = 0.05) at service batch sizes.
DEFAULT_SERVICE_TRACE: Tuple[Tuple[str, int], ...] = (
    (("ingest", 32),) * 10
    + (("ingest", 8),) * 5
    + (("ingest", 128),) * 2
    + (("delete", 8),) * 3
    + (("delete", 16),) * 1
    + (("cgroup_by", 16),) * 3
    + (("cgroup_by", 64),) * 1
    + (("snapshot", 1),) * 1
)


@dataclass(frozen=True)
class TrafficOp:
    """One sampled service operation: an op kind and its batch size."""

    kind: str
    size: int


class TrafficMixSampler:
    """Empirical fit-and-sample model of a service op mix.

    ``fit`` counts the observed ``(kind, size)`` pairs; ``sample`` draws
    kinds from the fitted categorical distribution and sizes from the
    drawn kind's observed size histogram — both from one seeded
    :class:`random.Random`, so a ``(trace, count, seed)`` triple always
    produces the same synthetic mix.
    """

    def __init__(self, size_histograms: Dict[str, List[int]]) -> None:
        if not size_histograms:
            raise ConfigError(
                "cannot build a traffic sampler from an empty trace"
            )
        for kind, sizes in size_histograms.items():
            if not sizes:
                raise ConfigError(
                    f"traffic kind {kind!r} has an empty size histogram"
                )
            bad = [s for s in sizes if not isinstance(s, int) or s < 1]
            if bad:
                raise ConfigError(
                    f"traffic kind {kind!r} has non-positive sizes: {bad!r}"
                )
        self._histograms = {k: list(v) for k, v in size_histograms.items()}
        self._kinds = sorted(self._histograms)
        self._weights = [len(self._histograms[k]) for k in self._kinds]

    @classmethod
    def fit(cls, trace: Iterable[Tuple[str, int]]) -> "TrafficMixSampler":
        """Fit the empirical model on an observed op trace."""
        histograms: Dict[str, List[int]] = {}
        for kind, size in trace:
            histograms.setdefault(str(kind), []).append(int(size))
        return cls(histograms)

    @property
    def kinds(self) -> List[str]:
        """The op kinds the fitted trace contained (sorted)."""
        return list(self._kinds)

    def weight(self, kind: str) -> float:
        """The fitted relative frequency of one op kind."""
        if kind not in self._histograms:
            return 0.0
        return len(self._histograms[kind]) / sum(self._weights)

    def sample(
        self, count: int, seed: Optional[int] = None
    ) -> List[TrafficOp]:
        """Draw ``count`` ops from the fitted mix, deterministically."""
        if count < 0:
            raise ConfigError(f"sample count must be >= 0, got {count}")
        rng = random.Random(seed)
        ops: List[TrafficOp] = []
        for _ in range(count):
            kind = rng.choices(self._kinds, weights=self._weights, k=1)[0]
            size = rng.choice(self._histograms[kind])
            ops.append(TrafficOp(kind=kind, size=size))
        return ops

    def describe(self) -> Dict[str, Dict[str, float]]:
        """Fitted summary per kind: weight, mean / max batch size."""
        total = sum(self._weights)
        return {
            kind: {
                "weight": len(sizes) / total,
                "mean_size": sum(sizes) / len(sizes),
                "max_size": float(max(sizes)),
            }
            for kind, sizes in self._histograms.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrafficMixSampler(kinds={self._kinds}, "
            f"ops={sum(self._weights)})"
        )


def default_service_mix() -> TrafficMixSampler:
    """The sampler fitted on :data:`DEFAULT_SERVICE_TRACE`."""
    return TrafficMixSampler.fit(DEFAULT_SERVICE_TRACE)
