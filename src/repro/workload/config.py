"""The Table 2 parameter grid, scaled for pure Python.

The paper fixes ``N = 10M`` updates, ``MinPts = 10`` and ``rho = 0.001``
and varies the rest (defaults in bold in Table 2):

=============  ================================  =========
parameter      values                            default
=============  ================================  =========
d              2, 3, 5, 7                        3
eps            50d, 100d, 200d, 400d, 800d       100d
%ins           2/3, 4/5, 5/6, 8/9, 10/11         5/6
f_qry          0.01N ... 0.1N                    0.05N
=============  ================================  =========

We keep every ratio and constant except ``N``: pure Python cannot run 10M
updates per configuration, so benchmarks default to the sizes below and
honour the ``REPRO_BENCH_N`` environment variable for larger runs.  All
comparisons in EXPERIMENTS.md are *relative* (same N for every algorithm),
which preserves the figures' shapes.
"""

from __future__ import annotations

import os

MINPTS = 10
RHO = 0.001

DIMENSIONS = (2, 3, 5, 7)
DEFAULT_DIM = 3

EPS_PER_D = (50, 100, 200, 400, 800)
DEFAULT_EPS_PER_D = 100

INSERT_FRACTIONS = (2 / 3, 4 / 5, 5 / 6, 8 / 9, 10 / 11)
DEFAULT_INSERT_FRACTION = 5 / 6

QUERY_FREQ_FRACTIONS = (0.01, 0.02, 0.05, 0.1)
DEFAULT_QUERY_FREQ_FRACTION = 0.05

#: Default kernel-backend selection (see :mod:`repro.kernels`).  The
#: valid names come from ``repro.kernels.available_backends()`` — the
#: registry is the single source of truth, so the CLI automatically
#: picks up any newly registered backend.
DEFAULT_BACKEND = "auto"

#: Default number of updates per benchmark workload (paper: 10M).
DEFAULT_BENCH_N = 5000

#: Smaller N used for the slowest baseline configurations (the paper
#: likewise terminated IncDBSCAN runs that exceeded its time budget).
SLOW_BENCH_N = 2500


def bench_n(default: int = DEFAULT_BENCH_N) -> int:
    """Benchmark workload size, overridable via ``REPRO_BENCH_N``."""
    value = os.environ.get("REPRO_BENCH_N")
    return int(value) if value else default


def backend_name(default: str = DEFAULT_BACKEND) -> str:
    """Kernel backend selection, overridable via ``REPRO_BACKEND``.

    This is the same variable :mod:`repro.kernels` honours at import;
    reading it here keeps CLI defaults and the kernel layer in sync.
    """
    value = os.environ.get("REPRO_BACKEND")
    return value if value else default


def eps_for(dim: int, eps_per_d: int = DEFAULT_EPS_PER_D) -> float:
    """The paper's eps parameterization: eps = (eps/d) * d."""
    return float(eps_per_d * dim)
