"""Render benchmark series files into a markdown experiment report.

The figure benchmarks write tab-separated series under
``benchmarks/results/``.  This module parses those files and produces the
paper-vs-measured summary used in EXPERIMENTS.md:

* for time-series figures (Figs 8, 9, 12, 13): first/last avgcost per
  algorithm, max update cost, and the win factor of our best algorithm
  over IncDBSCAN;
* for parameter-sweep figures (Figs 10, 11, 14, 15): a cost matrix and
  per-x win factors.

Run ``python -m repro.workload.report [results_dir]`` to print the
report.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple


@dataclass
class SeriesBlock:
    """One algorithm's time series within a figure file."""

    name: str
    rows: List[Tuple[int, float, float]] = field(default_factory=list)

    @property
    def first_avg(self) -> float:
        return self.rows[0][1]

    @property
    def last_avg(self) -> float:
        return self.rows[-1][1]

    @property
    def max_update(self) -> float:
        return max(r[2] for r in self.rows)


@dataclass
class SweepRow:
    x: str
    algorithm: str
    cost: float


@dataclass
class FigureData:
    header: str
    series: List[SeriesBlock] = field(default_factory=list)
    sweep: List[SweepRow] = field(default_factory=list)
    table: List[List[str]] = field(default_factory=list)


def parse_results_file(path: Path) -> FigureData:
    """Parse one ``benchmarks/results/*.txt`` file."""
    header = ""
    series: List[SeriesBlock] = []
    sweep: List[SweepRow] = []
    table: List[List[str]] = []
    current: Optional[SeriesBlock] = None
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# ") and not header:
            header = line[2:]
            continue
        if line.startswith("# "):
            current = SeriesBlock(name=line[2:])
            series.append(current)
            continue
        cells = line.split("\t")
        if cells[0] in ("t", "x", "row", "ablation"):
            continue  # column headers
        if current is not None and len(cells) == 3:
            try:
                current.rows.append(
                    (int(cells[0]), float(cells[1]), float(cells[2]))
                )
                continue
            except ValueError:
                current = None  # fall through: not a series row
        if len(cells) == 3:
            try:
                sweep.append(SweepRow(cells[0], cells[1], float(cells[2])))
                continue
            except ValueError:
                pass
        table.append(cells)
    return FigureData(header=header, series=series, sweep=sweep, table=table)


def _win_factor(ours: float, baseline: float) -> str:
    if ours <= 0:
        return "n/a"
    return f"{baseline / ours:.1f}x"


def render_figure(data: FigureData) -> List[str]:
    """Markdown lines summarizing one figure's results."""
    lines = [f"**{data.header}**", ""]
    if data.series:
        lines.append("| algorithm | avgcost start (us) | avgcost end (us) | max update (us) |")
        lines.append("|---|---|---|---|")
        for block in data.series:
            lines.append(
                f"| {block.name} | {block.first_avg:.1f} | {block.last_avg:.1f} "
                f"| {block.max_update:.1f} |"
            )
        inc = [b for b in data.series if "IncDBSCAN" in b.name]
        ours = [b for b in data.series if "IncDBSCAN" not in b.name]
        if inc and ours:
            best = min(ours, key=lambda b: b.last_avg)
            worst_inc = max(inc, key=lambda b: b.last_avg)
            lines.append("")
            lines.append(
                f"Win factor at workload end ({best.name} vs "
                f"{worst_inc.name}): **{_win_factor(best.last_avg, worst_inc.last_avg)}**"
            )
    if data.sweep:
        by_x: Dict[str, Dict[str, float]] = {}
        algorithms: List[str] = []
        for row in data.sweep:
            by_x.setdefault(row.x, {})[row.algorithm] = row.cost
            if row.algorithm not in algorithms:
                algorithms.append(row.algorithm)
        lines.append("| x | " + " | ".join(algorithms) + " | win |")
        lines.append("|---" * (len(algorithms) + 2) + "|")
        for x in sorted(by_x):
            costs = by_x[x]
            cells = [f"{costs.get(a, float('nan')):.1f}" for a in algorithms]
            inc_cost = next(
                (c for a, c in costs.items() if "IncDBSCAN" in a), None
            )
            our_cost = min(
                (c for a, c in costs.items() if "IncDBSCAN" not in a),
                default=None,
            )
            win = (
                _win_factor(our_cost, inc_cost)
                if inc_cost is not None and our_cost is not None
                else "-"
            )
            lines.append(f"| {x} | " + " | ".join(cells) + f" | {win} |")
    if data.table:
        width = max(len(r) for r in data.table)
        for row in data.table:
            lines.append("| " + " | ".join(row + [""] * (width - len(row))) + " |")
    lines.append("")
    return lines


def render_report(results_dir: Path) -> str:
    """Full markdown report over every results file in the directory."""
    files = sorted(results_dir.glob("*.txt"))
    if not files:
        return f"(no results files in {results_dir})"
    lines = ["# Measured benchmark series", ""]
    for path in files:
        lines.extend(render_figure(parse_results_file(path)))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    results = Path(args[0]) if args else Path("benchmarks/results")
    print(render_report(results))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
