"""repro — Dynamic Density Based Clustering (Gan & Tao, SIGMOD 2017).

A full reproduction of the paper's systems:

* **Semi-dynamic rho-approximate DBSCAN** (Theorem 1) —
  :class:`SemiDynamicClusterer` / :func:`semi_approx` /
  :func:`semi_exact_2d`;
* **Fully-dynamic rho-double-approximate DBSCAN** (Theorem 4) —
  :class:`FullyDynamicClusterer` / :func:`double_approx` /
  :func:`full_exact_2d`;
* **C-group-by queries** on both (``cgroup_by``), the paper's novel query;
* **IncDBSCAN** (Ester et al. 1998), the dynamic competitor;
* static exact / rho-approximate DBSCAN references, the sandwich and
  legality validators, the seed-spreader workload generator, and the
  USEC / USEC-LS hardness machinery.

Quickstart::

    from repro import double_approx

    algo = double_approx(eps=3.0, minpts=5, rho=0.001, dim=2)
    ids = [algo.insert(p) for p in points]
    result = algo.cgroup_by(ids[:10])   # group 10 points by cluster
    algo.delete(ids[0])                 # fully dynamic

Exact DBSCAN is always the ``rho=0`` special case.
"""

from repro.core.framework import CGroupByResult, Clustering
from repro.core.grid import Grid
from repro.core.semidynamic import SemiDynamicClusterer, semi_approx, semi_exact_2d
from repro.core.fullydynamic import (
    FullyDynamicClusterer,
    double_approx,
    full_exact_2d,
)
from repro.analysis import ClusterEvent, ClusterTracker, cluster_stats
from repro.baselines.incdbscan import IncDBSCAN
from repro.baselines.naive_dynamic import RecomputeClusterer
from repro.baselines.static_dbscan import StaticClustering, dbscan_brute, dbscan_grid
from repro.baselines.static_rho import rho_dbscan_static
from repro.validation import check_legality, check_sandwich
from repro.workload.seed_spreader import seed_spreader
from repro.workload.workload import Workload, generate_workload
from repro.workload.runner import RunResult, run_workload

__version__ = "1.0.0"

__all__ = [
    "CGroupByResult",
    "ClusterEvent",
    "ClusterTracker",
    "Clustering",
    "FullyDynamicClusterer",
    "Grid",
    "IncDBSCAN",
    "RecomputeClusterer",
    "RunResult",
    "SemiDynamicClusterer",
    "StaticClustering",
    "Workload",
    "check_legality",
    "cluster_stats",
    "check_sandwich",
    "dbscan_brute",
    "dbscan_grid",
    "double_approx",
    "full_exact_2d",
    "generate_workload",
    "rho_dbscan_static",
    "run_workload",
    "seed_spreader",
    "semi_approx",
    "semi_exact_2d",
]
