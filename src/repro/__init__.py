"""repro — Dynamic Density Based Clustering (Gan & Tao, SIGMOD 2017).

A full reproduction of the paper's systems:

* **Semi-dynamic rho-approximate DBSCAN** (Theorem 1) —
  ``algorithm="semi"`` / :class:`SemiDynamicClusterer`;
* **Fully-dynamic rho-double-approximate DBSCAN** (Theorem 4) —
  ``algorithm="full"`` / :class:`FullyDynamicClusterer`;
* **C-group-by queries** on both (``cgroup_by``), the paper's novel query;
* **IncDBSCAN** (Ester et al. 1998), the dynamic competitor;
* static exact / rho-approximate DBSCAN references, the sandwich and
  legality validators, the seed-spreader workload generator, and the
  USEC / USEC-LS hardness machinery.

Quickstart — the service facade (:mod:`repro.api`) is the preferred
entry point::

    import repro.api

    engine = repro.api.open(
        algorithm="full", eps=3.0, minpts=5, rho=0.001, dim=2
    )
    pids = engine.ingest(points)            # vectorized bulk insert
    result = engine.cgroup_by(pids[:10])    # epoch-stamped C-group-by
    engine.delete(pids[0])                  # fully dynamic
    snapshot = engine.snapshot()            # full clustering @ epoch

Configuration is one frozen, validated :class:`EngineConfig`; every
user-facing failure derives from :class:`ReproError`
(:mod:`repro.errors`).  Exact DBSCAN is always the ``rho=0`` special
case.

The pre-engine entry points — :func:`semi_approx` /
:func:`double_approx` / direct clusterer construction — remain
supported thin shims over the same structures (the engine adds only
epoch stamping on top of them); see the README migration table for the
old-call → new-call mapping and each shim's status.
"""

from repro.core.framework import CGroupByResult, Clustering
from repro.core.grid import Grid
from repro.core.semidynamic import SemiDynamicClusterer, semi_approx, semi_exact_2d
from repro.core.fullydynamic import (
    FullyDynamicClusterer,
    double_approx,
    full_exact_2d,
)
from repro.analysis import ClusterEvent, ClusterTracker, cluster_stats
from repro.baselines.incdbscan import IncDBSCAN
from repro.baselines.naive_dynamic import RecomputeClusterer
from repro.baselines.static_dbscan import StaticClustering, dbscan_brute, dbscan_grid
from repro.baselines.static_rho import rho_dbscan_static
from repro.errors import (
    ConfigError,
    InvalidQueryError,
    ReproError,
    ShardTimeoutError,
    UnknownPointError,
    UnsupportedOperationError,
)
from repro.validation import check_legality, check_sandwich
from repro.workload.seed_spreader import seed_spreader
from repro.workload.workload import Workload, generate_workload
from repro.workload.runner import RunResult, run_workload
from repro.api import (
    Engine,
    EngineConfig,
    EngineStats,
    IngestSession,
    QueryOutcome,
    ShardedEngine,
    ShardedStats,
    Snapshot,
)

__version__ = "1.1.0"

__all__ = [
    "CGroupByResult",
    "ClusterEvent",
    "ClusterTracker",
    "Clustering",
    "ConfigError",
    "Engine",
    "EngineConfig",
    "EngineStats",
    "FullyDynamicClusterer",
    "Grid",
    "IncDBSCAN",
    "IngestSession",
    "InvalidQueryError",
    "QueryOutcome",
    "RecomputeClusterer",
    "ReproError",
    "RunResult",
    "SemiDynamicClusterer",
    "ShardTimeoutError",
    "ShardedEngine",
    "ShardedStats",
    "Snapshot",
    "StaticClustering",
    "UnknownPointError",
    "UnsupportedOperationError",
    "Workload",
    "check_legality",
    "cluster_stats",
    "check_sandwich",
    "dbscan_brute",
    "dbscan_grid",
    "double_approx",
    "full_exact_2d",
    "generate_workload",
    "rho_dbscan_static",
    "run_workload",
    "seed_spreader",
    "semi_approx",
    "semi_exact_2d",
]
