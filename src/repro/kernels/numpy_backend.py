"""The numpy reference backend — the semantics every backend must match.

These are the battle-tested implementations extracted verbatim from the
bulk-update engine (``repro.core.bulk``) and the kd-tree batched query
helpers (``repro.geometry.kdtree``), now owned by the kernels layer.
Every other backend is validated against this one bit-for-bit
(``tests/test_kernels.py``).

Exactness: ``ball_counts`` / ``any_within`` use the BLAS identity
``|x - y|^2 = |x|^2 + |y|^2 - 2 x.y`` for speed and re-verify pairs in
the cancellation band with the exact difference formula, so membership
decisions equal scalar ``sq_dist`` comparisons bit-for-bit.
``distance_matrix`` / ``count_within`` / ``find_within_many`` use the
exact formula throughout.  All kernels chunk their intermediates to at
most :func:`repro.kernels.interface.max_block_entries` float64 entries
(~64MB), so huge neighborhoods never allocation-spike.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import interface
from repro.kernels.interface import Backend, Cell

#: Relative slack of the fast BLAS distance identity.  The identity
#: ``|x - y|^2 = |x|^2 + |y|^2 - 2 x.y`` suffers cancellation of order
#: ``u * (|x|^2 + |y|^2)`` (u = 2^-52); pairs whose fast distance lands
#: within this slack of the threshold are re-verified with the exact
#: difference formula, so the decisions below are bit-identical to
#: ``sq_dist`` comparisons.
BAND = 1e-9


def fast_sq_dists(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Approximate squared distances via BLAS plus the per-pair slack."""
    a2 = np.einsum("ij,ij->i", a, a)
    b2 = np.einsum("ij,ij->i", b, b)
    scale = a2[:, None] + b2[None, :]
    d2 = scale - 2.0 * (a @ b.T)
    return d2, BAND * (scale + 1.0)


def exact_within(point: np.ndarray, others: np.ndarray, sq_radius: float) -> np.ndarray:
    """Exact membership recheck of one point against candidate rows."""
    diff = point[None, :] - others
    return np.einsum("ij,ij->i", diff, diff) <= sq_radius


def distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact squared distances between every row pair (see interface).

    The returned ``(n, m)`` matrix is the caller's memory to budget; the
    chunking below caps the *intermediate* difference tensor, which is
    ``dim`` times larger than its slice of the output.
    """
    n, m = len(a), len(b)
    out = np.empty((n, m), dtype=float)
    if n == 0 or m == 0:
        return out
    per_row = m * a.shape[1]
    chunk = max(1, interface.max_block_entries() // per_row)
    for start in range(0, n, chunk):
        diff = a[start : start + chunk, None, :] - b[None, :, :]
        out[start : start + chunk] = np.einsum("ijk,ijk->ij", diff, diff)
    return out


def ball_counts(a: np.ndarray, b: np.ndarray, sq_radius: float) -> np.ndarray:
    """For each row of ``a``, how many rows of ``b`` lie within the ball."""
    n = len(a)
    counts = np.zeros(n, dtype=np.int64)
    if n == 0 or len(b) == 0:
        return counts
    chunk = max(1, interface.max_block_entries() // len(b))
    for start in range(0, n, chunk):
        block = a[start : start + chunk]
        d2, tol = fast_sq_dists(block, b)
        counts[start : start + chunk] = (d2 < sq_radius - tol).sum(axis=1)
        border = np.abs(d2 - sq_radius) <= tol
        for row in np.nonzero(border.any(axis=1))[0].tolist():
            candidates = b[border[row]]
            counts[start + row] += int(
                exact_within(block[row], candidates, sq_radius).sum()
            )
    return counts


def any_within_block(block: np.ndarray, b: np.ndarray, sq_radius: float) -> bool:
    """One chunk of :func:`any_within` (shared with the accel backend)."""
    d2, tol = fast_sq_dists(block, b)
    if (d2 < sq_radius - tol).any():
        return True
    border = np.abs(d2 - sq_radius) <= tol
    for row in np.nonzero(border.any(axis=1))[0].tolist():
        if exact_within(block[row], b[border[row]], sq_radius).any():
            return True
    return False


def any_within(a: np.ndarray, b: np.ndarray, sq_radius: float) -> bool:
    """Whether any pair ``(a[i], b[j])`` lies within the ball.

    Same exactness guarantee (and chunking) as :func:`ball_counts`.  A
    small probe block runs first: in dense regimes adjacent cells almost
    always hold a witness among the first few rows, so the common case
    never materializes the full matrix.
    """
    if len(a) == 0 or len(b) == 0:
        return False
    probe = min(32, len(a))
    if any_within_block(a[:probe], b, sq_radius):
        return True
    chunk = max(1, interface.max_block_entries() // len(b))
    for start in range(probe, len(a), chunk):
        if any_within_block(a[start : start + chunk], b, sq_radius):
            return True
    return False


def count_within(q: Sequence[float], pts: np.ndarray, sq_radius: float) -> int:
    """How many rows of ``pts`` lie within the ball around ``q`` (exact)."""
    if len(pts) == 0:
        return 0
    q_arr = np.asarray(q, dtype=float)
    chunk = max(1, interface.max_block_entries() // max(1, pts.shape[1]))
    total = 0
    for start in range(0, len(pts), chunk):
        diff = pts[start : start + chunk] - q_arr[None, :]
        total += int((np.einsum("ij,ij->i", diff, diff) <= sq_radius).sum())
    return total


def find_within_many(
    qs: np.ndarray,
    ids: Sequence[int],
    pts: np.ndarray,
    sq_radius: float,
) -> List[Optional[int]]:
    """For each query row, some id of ``pts`` within the ball, else ``None``.

    Distances use the exact difference formula (the vectorized twin of
    ``sq_dist``, summing coordinates in the same order), so membership
    decisions are bit-identical to scalar comparisons.  Proofs are the
    lowest-index match, which makes the output deterministic.
    """
    out: List[Optional[int]] = [None] * len(qs)
    if len(qs) == 0 or len(ids) == 0:
        return out
    per_row = len(ids) * qs.shape[1]
    chunk = max(1, interface.max_block_entries() // per_row)
    for start in range(0, len(qs), chunk):
        block = qs[start : start + chunk]
        diff = block[:, None, :] - pts[None, :, :]
        hit = np.einsum("ijk,ijk->ij", diff, diff) <= sq_radius
        for row in np.nonzero(hit.any(axis=1))[0].tolist():
            out[start + row] = ids[int(np.argmax(hit[row]))]
    return out


def pack_cell_keys(cells: np.ndarray) -> Optional[np.ndarray]:
    """Row-major monotone packing of int64 cell rows into scalar keys.

    Returns ``None`` when the bounding-box span product would not fit in
    an int64 (astronomically spread coordinates) — callers must then
    fall back to row-wise grouping.  The packing is monotone in the
    lexicographic cell order, which is what lets grouping sorts run on a
    flat int64 array.
    """
    lo = cells.min(axis=0)
    # Span and its product are computed in Python ints: an int64
    # subtraction could wrap on astronomically spread coordinates and
    # defeat the very overflow guard below.
    span_py = [
        int(hi_c) - int(lo_c) + 1
        for lo_c, hi_c in zip(lo.tolist(), cells.max(axis=0).tolist())
    ]
    prod = 1
    for s in span_py:
        prod *= s
    if prod >= 2**62:
        return None
    span = np.asarray(span_py, dtype=np.int64)
    strides = np.ones(len(span), dtype=np.int64)
    for i in range(len(span) - 2, -1, -1):
        strides[i] = strides[i + 1] * span[i + 1]
    return ((cells - lo) * strides).sum(axis=1)


def bucket_by_cell(arr: np.ndarray, side: float) -> List[Tuple[Cell, np.ndarray]]:
    """Group batch indices by grid cell via vectorized flooring.

    Returns ``(cell, indices)`` pairs with cells in lexicographic order
    (the deterministic replay order) and indices ascending within each
    cell.  The flooring matches :meth:`repro.core.grid.Grid.cell_of`
    exactly, including on negative coordinates.  Key packing routes
    through the dispatched ``pack_cell_keys`` kernel so an accelerated
    packing benefits this kernel too.
    """
    if len(arr) == 0:
        return []
    from repro.kernels import registry  # late: avoid import cycle

    cells = np.floor(arr / side).astype(np.int64)
    keys = registry.get_kernel("pack_cell_keys")(cells)
    if keys is None:  # astronomically spread coordinates: row-wise fallback
        _, inverse = np.unique(cells, axis=0, return_inverse=True)
        keys = inverse.ravel()
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
    splits = np.split(order, boundaries)
    return [
        (tuple(int(c) for c in cells[s[0]]), s)
        for s in splits
    ]


def box_sq_dists(pts: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Squared distance from each row to an axis-parallel box.

    Vectorized :func:`repro.geometry.points.box_min_sq_dist` — a lower
    bound on the distance to any point inside the box, used to prune
    rows that can never witness a ball predicate against that box.
    """
    d = np.maximum(np.maximum(lo - pts, pts - hi), 0.0)
    return np.einsum("ij,ij->i", d, d)


def cell_gap_sq_dists(deltas: np.ndarray, side: float) -> np.ndarray:
    """Squared boundary gap of cells offset by integer rows ``deltas``.

    Matches :meth:`repro.core.grid.Grid.cell_min_sq_dist` on every row:
    per dimension the boundary gap is ``max(|delta| - 1, 0) * side``.
    """
    gaps = np.maximum(np.abs(deltas) - 1, 0) * side
    return (gaps * gaps).sum(axis=1)


BACKEND = Backend(
    name="numpy",
    kernels={
        "distance_matrix": distance_matrix,
        "ball_counts": ball_counts,
        "any_within": any_within,
        "count_within": count_within,
        "find_within_many": find_within_many,
        "bucket_by_cell": bucket_by_cell,
        "pack_cell_keys": pack_cell_keys,
        "box_sq_dists": box_sq_dists,
        "cell_gap_sq_dists": cell_gap_sq_dists,
    },
    description="numpy reference (BLAS identity + exact band recheck)",
)
