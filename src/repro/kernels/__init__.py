"""``repro.kernels`` — the pluggable compute-kernel backend layer.

Every hot numeric primitive in the repo (distance matrices, ball
counts, witness searches, cell bucketing/key packing) lives behind this
package's small typed interface; nothing outside ``repro.kernels``
performs distance-matrix or cell-packing math.  The module-level
functions below are thin dispatchers into the active backend's kernel
table, so swapping backends never touches the algorithms:

* ``numpy`` — the reference backend, a pure code-motion of the
  original implementations (BLAS identity + exact band recheck);
* ``accel`` — numba-jit exact loops when numba is importable, else
  cache-blocked numpy tiles; provides only the kernels it accelerates
  and falls back per kernel to the reference for the rest;
* ``auto`` (default) — ``accel``.

Selection, in increasing precedence: the ``REPRO_BACKEND`` environment
variable (read once at import), :func:`use_backend` from code, and the
``--backend`` CLI flag of ``python -m repro`` (which simply calls
:func:`use_backend`).  All backends are bit-identical on every kernel:
counts, booleans and proof ids are discrete decisions made from exact
distances, and ``distance_matrix`` uses the same axis-ordered exact
formula everywhere (``tests/test_kernels.py`` sweeps the grid).

See :mod:`repro.kernels.interface` for the kernel contracts and the
~64MB :data:`~repro.kernels.interface.MAX_BLOCK_BYTES` intermediate cap.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kernels import accel, numpy_backend, registry
from repro.kernels.interface import KERNEL_NAMES, MAX_BLOCK_BYTES, Backend, Cell
from repro.kernels.registry import (
    ActiveBackend,
    active_backend,
    available_backends,
    backend_summary,
    register_backend,
    use_backend,
)

__all__ = [
    "KERNEL_NAMES",
    "MAX_BLOCK_BYTES",
    "Backend",
    "Cell",
    "ActiveBackend",
    "active_backend",
    "active_backend_name",
    "available_backends",
    "backend_summary",
    "register_backend",
    "use_backend",
    "as_point_array",
    "distance_matrix",
    "ball_counts",
    "any_within",
    "count_within",
    "find_within_many",
    "bucket_by_cell",
    "pack_cell_keys",
    "box_sq_dists",
    "cell_gap_sq_dists",
]

register_backend(numpy_backend.BACKEND, reference=True)
register_backend(accel.BACKEND, preferred=True)

_env = os.environ.get("REPRO_BACKEND", registry.AUTO) or registry.AUTO
try:
    use_backend(_env)
except ValueError as exc:
    raise ConfigError(
        f"REPRO_BACKEND={_env!r} is not a valid kernel backend: {exc}"
    ) from None


def active_backend_name() -> str:
    """The resolved name of the live backend (``numpy`` or ``accel``)."""
    return active_backend().resolved


# ----------------------------------------------------------------------
# Dispatchers — one per kernel, contracts in repro.kernels.interface
# ----------------------------------------------------------------------


def distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact ``(n, m)`` squared Euclidean distances between row pairs."""
    return registry.get_kernel("distance_matrix")(a, b)


def ball_counts(a: np.ndarray, b: np.ndarray, sq_radius: float) -> np.ndarray:
    """For each row of ``a``, how many rows of ``b`` lie within the ball."""
    return registry.get_kernel("ball_counts")(a, b, sq_radius)


def any_within(a: np.ndarray, b: np.ndarray, sq_radius: float) -> bool:
    """Whether any pair ``(a[i], b[j])`` lies within the ball."""
    return registry.get_kernel("any_within")(a, b, sq_radius)


def count_within(q: Sequence[float], pts: np.ndarray, sq_radius: float) -> int:
    """How many rows of ``pts`` lie within the ball around point ``q``."""
    return registry.get_kernel("count_within")(q, pts, sq_radius)


def find_within_many(
    qs: np.ndarray,
    ids: Sequence[int],
    pts: np.ndarray,
    sq_radius: float,
) -> List[Optional[int]]:
    """Per query row: the lowest-index id within the ball, else ``None``."""
    return registry.get_kernel("find_within_many")(qs, ids, pts, sq_radius)


def bucket_by_cell(arr: np.ndarray, side: float) -> List[Tuple[Cell, np.ndarray]]:
    """Group rows by grid cell: lexicographic cells, ascending indices."""
    return registry.get_kernel("bucket_by_cell")(arr, side)


def pack_cell_keys(cells: np.ndarray) -> Optional[np.ndarray]:
    """Monotone row-major int64 keys for cell rows (None on overflow)."""
    return registry.get_kernel("pack_cell_keys")(cells)


def box_sq_dists(pts: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Squared distance from each row to an axis-parallel box."""
    return registry.get_kernel("box_sq_dists")(pts, lo, hi)


def cell_gap_sq_dists(deltas: np.ndarray, side: float) -> np.ndarray:
    """Squared boundary gap of cells offset by integer rows ``deltas``."""
    return registry.get_kernel("cell_gap_sq_dists")(deltas, side)


# ----------------------------------------------------------------------
# Shared validation (not a dispatched kernel — no math to accelerate)
# ----------------------------------------------------------------------


def as_point_array(points: Sequence[Sequence[float]], dim: int) -> np.ndarray:
    """Validate a batch of points and return it as an ``(n, dim)`` array.

    Rejects ragged/object inputs, wrong trailing dimensions and
    non-finite coordinates with a clear ``ValueError`` *before* any
    kernel runs, so malformed batches never surface as numpy broadcast
    errors deep in a backend.
    """
    try:
        arr = np.asarray(points, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"batch is not a rectangular array of floats: {exc}") from exc
    if arr.size == 0:
        return np.empty((0, dim), dtype=float)
    if arr.ndim != 2 or arr.shape[1] != dim:
        raise ValueError(
            f"batch has shape {arr.shape}, expected (n, {dim})"
        )
    if not np.isfinite(arr).all():
        raise ValueError("batch contains non-finite coordinates (nan/inf)")
    return arr
