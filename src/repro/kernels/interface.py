"""The kernel interface: names, contracts, and shared tuning knobs.

A *kernel* is one of the hot numeric primitives every clusterer, index
and query engine in the repo bottoms out in.  Each kernel has a fixed
array-level signature and an exactness contract (below); a *backend* is
a named set of implementations of some or all kernels
(:class:`Backend`).  The registry (:mod:`repro.kernels.registry`)
resolves the active backend into a per-kernel dispatch table, falling
back kernel-by-kernel to the numpy reference backend for anything a
backend does not provide.

Kernel contracts
----------------

``distance_matrix(a, b) -> (n, m) float64``
    Exact squared Euclidean distances via the difference formula —
    bit-identical across backends (every backend evaluates the same
    axis-ordered vectorized sum per element).

``ball_counts(a, b, sq_radius) -> (n,) int64``
    For each row of ``a``, how many rows of ``b`` lie within the ball.
    Backends may use fast approximate identities internally (e.g. the
    BLAS expansion) but every membership *decision* must equal the exact
    difference formula bit-for-bit.

``any_within(a, b, sq_radius) -> bool``
    Whether any pair ``(a[i], b[j])`` lies within the ball.  Same
    exactness guarantee as ``ball_counts``.

``count_within(q, pts, sq_radius) -> int``
    Scalar-query form: how many rows of ``pts`` lie within the ball
    around the single point ``q``.  Exact.

``find_within_many(qs, ids, pts, sq_radius) -> list[Optional[int]]``
    For each query row, ``ids[j]`` of some row ``pts[j]`` within the
    ball, else ``None``.  Proofs are the lowest-index match
    (deterministic across backends); membership decisions are exact.

``bucket_by_cell(arr, side) -> list[(cell, indices)]``
    Group point rows by grid cell via vectorized flooring, cells in
    lexicographic order, indices ascending within each cell.

``pack_cell_keys(cells) -> Optional[(n,) int64]``
    Row-major monotone packing of integer cell rows into flat scalar
    keys (``None`` when the bounding-box span would overflow int64).

``box_sq_dists(pts, lo, hi) -> (n,) float64``
    Squared distance from each row to an axis-parallel box (zero
    inside).

``cell_gap_sq_dists(deltas, side) -> (n,) float64``
    Squared boundary-to-boundary distance of grid cells offset by the
    integer rows ``deltas`` from a reference cell, for cells of the
    given side.

Memory cap
----------

``MAX_BLOCK_BYTES`` caps the largest intermediate array any kernel may
materialize (distance-matrix chunks, difference tensors): ~64MB by
default, so a 50k x 50k neighborhood never allocation-spikes.  Backends
must consult :func:`max_block_entries` *at call time* so tests (and
operators) can shrink it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

Cell = Tuple[int, ...]

#: Every kernel the dispatch layer exposes, in a stable order.
KERNEL_NAMES = (
    "distance_matrix",
    "ball_counts",
    "any_within",
    "count_within",
    "find_within_many",
    "bucket_by_cell",
    "pack_cell_keys",
    "box_sq_dists",
    "cell_gap_sq_dists",
)

#: Cap on the bytes of any single intermediate array a kernel
#: materializes (float64 entries).  Patchable; read at call time.
MAX_BLOCK_BYTES = 64 * 1024 * 1024


def max_block_entries() -> int:
    """Largest float64 entry count a kernel block may materialize."""
    return max(1, MAX_BLOCK_BYTES // 8)


@dataclass
class Backend:
    """A named set of kernel implementations.

    ``kernels`` maps kernel names (a subset of :data:`KERNEL_NAMES`) to
    callables with the documented signatures; anything missing falls
    back to the reference backend per kernel.  ``description`` is a
    short human-readable note on how the backend accelerates (shown in
    CLI/benchmark reports).
    """

    name: str
    kernels: Dict[str, Callable] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        unknown = set(self.kernels) - set(KERNEL_NAMES)
        if unknown:
            raise ValueError(
                f"backend {self.name!r} implements unknown kernel(s) "
                f"{sorted(unknown)}; valid names: {KERNEL_NAMES}"
            )

    def provides(self, kernel: str) -> bool:
        return kernel in self.kernels
