"""Backend registry, selection, and the per-kernel dispatch table.

Backends register under a name; selecting one (:func:`use_backend`)
resolves a complete dispatch table by taking the backend's
implementation of each kernel and falling back, kernel by kernel, to
the reference backend for anything it does not provide — so a backend
may accelerate only some kernels and still be fully usable.

Selection names are the registered backends plus ``"auto"``, which
picks the preferred accelerated backend when one is registered and the
reference otherwise.  The selection applied at import of
:mod:`repro.kernels` comes from the ``REPRO_BACKEND`` environment
variable (default ``auto``); ``python -m repro bench --backend ...``
re-applies it per run.
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple, Optional, Tuple

from repro.errors import ConfigError
from repro.kernels.interface import KERNEL_NAMES, Backend

AUTO = "auto"

_backends: Dict[str, Backend] = {}
_reference: Optional[Backend] = None
_preferred: Optional[str] = None  # what "auto" resolves to, if registered

_requested: str = AUTO
_resolved: Optional[Backend] = None
_table: Dict[str, Callable] = {}


class ActiveBackend(NamedTuple):
    """The current selection: what was asked for and what answers."""

    requested: str
    resolved: str
    description: str


def register_backend(
    backend: Backend, reference: bool = False, preferred: bool = False
) -> None:
    """Add a backend to the registry.

    Exactly one backend must be registered with ``reference=True``; it
    completes every other backend's dispatch table.  A backend
    registered with ``preferred=True`` is what ``"auto"`` selects.
    """
    global _reference, _preferred
    if backend.name == AUTO:
        raise ValueError(f"backend name {AUTO!r} is reserved")
    _backends[backend.name] = backend
    if reference:
        missing = [k for k in KERNEL_NAMES if not backend.provides(k)]
        if missing:
            raise ValueError(
                f"reference backend {backend.name!r} must provide every "
                f"kernel; missing {missing}"
            )
        _reference = backend
    if preferred:
        _preferred = backend.name


def available_backends() -> Tuple[str, ...]:
    """Valid selection names: every registered backend plus ``auto``."""
    return tuple(sorted(_backends)) + (AUTO,)


def _resolve_name(name: str) -> Backend:
    if name == AUTO:
        name = _preferred if _preferred in _backends else _reference.name
    backend = _backends.get(name)
    if backend is None:
        raise ConfigError(
            f"unknown kernel backend {name!r}; choices: "
            f"{', '.join(available_backends())}"
        )
    return backend


def use_backend(name: str) -> str:
    """Select the active backend by name; returns the previous selection.

    The return value is the previously *requested* name (possibly
    ``"auto"``), so callers can restore it:
    ``prev = use_backend("numpy"); ...; use_backend(prev)``.
    """
    global _requested, _resolved, _table
    if _reference is None:
        raise RuntimeError("no reference backend registered")
    backend = _resolve_name(name)
    previous = _requested
    _requested = name
    _resolved = backend
    _table = {
        kernel: backend.kernels.get(kernel, _reference.kernels[kernel])
        for kernel in KERNEL_NAMES
    }
    return previous


def get_kernel(name: str) -> Callable:
    """The active implementation of one kernel (after fallback)."""
    return _table[name]


def active_backend() -> ActiveBackend:
    """Requested/resolved names and description of the live selection."""
    if _resolved is None:
        raise RuntimeError("no backend selected")
    return ActiveBackend(
        requested=_requested,
        resolved=_resolved.name,
        description=_resolved.description,
    )


def backend_summary() -> str:
    """One line for reports: resolved name plus any per-kernel fallbacks.

    E.g. ``accel (fallback to numpy: bucket_by_cell, pack_cell_keys)``.
    """
    info = active_backend()
    backend = _backends[info.resolved]
    fallbacks = [k for k in KERNEL_NAMES if not backend.provides(k)]
    if not fallbacks or _reference is backend:
        return info.resolved
    return f"{info.resolved} (fallback to {_reference.name}: {', '.join(fallbacks)})"
