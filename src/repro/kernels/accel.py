"""The accelerated backend: numba-jit kernels, else cache-blocked numpy.

Capability probing happens at import time.  When numba is importable the
pair kernels (``ball_counts`` / ``any_within`` / ``count_within``) are
jit-compiled tight loops over the exact difference formula — no BLAS
round-trip, no cancellation band, and early-exit where the contract
allows it.  Without numba the backend still accelerates the matrix
kernels by tiling both operands into ~L2-sized blocks
(``CACHE_BLOCK_BYTES``): the reference implementation streams chunks of
``a`` against *all* of ``b``, which for wide neighborhoods evicts every
``b`` row from cache between chunks; the tiled variant keeps one ``b``
tile hot across a whole stripe of ``a``.

Either way the backend deliberately implements only *some* kernels —
grouping and packing (``bucket_by_cell`` / ``pack_cell_keys``), box
pruning and the proof-search (``find_within_many``) stay on the numpy
reference via the registry's per-kernel fallback.  Results are
bit-identical to the reference backend: counts, booleans and proof ids
are discrete decisions made from exact distances on every path.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.kernels import interface, numpy_backend
from repro.kernels.interface import Backend

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore[import-not-found]

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False

#: Tile cap (bytes of one float64 distance block) for the cache-blocked
#: numpy variants — sized to stay L2-resident.  Patchable; read at call
#: time.  The global :data:`repro.kernels.interface.MAX_BLOCK_BYTES` cap
#: still bounds every intermediate.
CACHE_BLOCK_BYTES = 4 * 1024 * 1024


def _tile_entries() -> int:
    return max(1, min(CACHE_BLOCK_BYTES, interface.MAX_BLOCK_BYTES) // 8)


def _tile_shape(m: int) -> tuple:
    """(a_rows, b_rows) per tile: near-square, capped by the tile budget."""
    entries = _tile_entries()
    b_rows = max(1, min(m, int(entries**0.5) * 2))
    a_rows = max(1, entries // b_rows)
    return a_rows, b_rows


def ball_counts_blocked(a: np.ndarray, b: np.ndarray, sq_radius: float) -> np.ndarray:
    """Cache-blocked :func:`repro.kernels.numpy_backend.ball_counts`.

    Counts accumulate over ``b`` tiles; each (a-tile, b-tile) pair makes
    exact decisions via the shared band recheck, so the per-row sums are
    bit-identical to the reference (integer addition is associative).
    """
    n = len(a)
    counts = np.zeros(n, dtype=np.int64)
    if n == 0 or len(b) == 0:
        return counts
    a_rows, b_rows = _tile_shape(len(b))
    for a0 in range(0, n, a_rows):
        block = a[a0 : a0 + a_rows]
        for b0 in range(0, len(b), b_rows):
            counts[a0 : a0 + a_rows] += numpy_backend.ball_counts(
                block, b[b0 : b0 + b_rows], sq_radius
            )
    return counts


def any_within_blocked(a: np.ndarray, b: np.ndarray, sq_radius: float) -> bool:
    """Cache-blocked :func:`repro.kernels.numpy_backend.any_within`."""
    if len(a) == 0 or len(b) == 0:
        return False
    a_rows, b_rows = _tile_shape(len(b))
    probe = min(32, len(a))
    for b0 in range(0, len(b), b_rows):
        if numpy_backend.any_within_block(a[:probe], b[b0 : b0 + b_rows], sq_radius):
            return True
    for a0 in range(probe, len(a), a_rows):
        block = a[a0 : a0 + a_rows]
        for b0 in range(0, len(b), b_rows):
            if numpy_backend.any_within_block(block, b[b0 : b0 + b_rows], sq_radius):
                return True
    return False


def distance_matrix_blocked(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Tiled exact distance matrix — identical values to the reference.

    Each output element is the same axis-ordered difference-formula sum
    regardless of tiling, so the matrices compare equal bit-for-bit.
    """
    n, m = len(a), len(b)
    out = np.empty((n, m), dtype=float)
    if n == 0 or m == 0:
        return out
    dim = a.shape[1]
    a_rows, b_rows = _tile_shape(m)
    a_rows = max(1, a_rows // max(1, dim))  # difference tensor is dim x larger
    for a0 in range(0, n, a_rows):
        block = a[a0 : a0 + a_rows, None, :]
        for b0 in range(0, m, b_rows):
            diff = block - b[None, b0 : b0 + b_rows, :]
            out[a0 : a0 + a_rows, b0 : b0 + b_rows] = np.einsum(
                "ijk,ijk->ij", diff, diff
            )
    return out


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _ball_counts_jit(a, b, sq_radius):  # type: ignore[no-untyped-def]
        n, m = a.shape[0], b.shape[0]
        dim = a.shape[1]
        counts = np.zeros(n, dtype=np.int64)
        for i in range(n):
            c = 0
            for j in range(m):
                total = 0.0
                for k in range(dim):
                    diff = a[i, k] - b[j, k]
                    total += diff * diff
                if total <= sq_radius:
                    c += 1
            counts[i] = c
        return counts

    @numba.njit(cache=True)
    def _any_within_jit(a, b, sq_radius):  # type: ignore[no-untyped-def]
        dim = a.shape[1]
        for i in range(a.shape[0]):
            for j in range(b.shape[0]):
                total = 0.0
                for k in range(dim):
                    diff = a[i, k] - b[j, k]
                    total += diff * diff
                if total <= sq_radius:
                    return True
        return False

    @numba.njit(cache=True)
    def _count_within_jit(q, pts, sq_radius):  # type: ignore[no-untyped-def]
        dim = pts.shape[1]
        c = 0
        for j in range(pts.shape[0]):
            total = 0.0
            for k in range(dim):
                diff = q[k] - pts[j, k]
                total += diff * diff
            if total <= sq_radius:
                c += 1
        return c

    def ball_counts_jit(a: np.ndarray, b: np.ndarray, sq_radius: float) -> np.ndarray:
        if len(a) == 0 or len(b) == 0:
            return np.zeros(len(a), dtype=np.int64)
        return _ball_counts_jit(
            np.ascontiguousarray(a), np.ascontiguousarray(b), sq_radius
        )

    def any_within_jit(a: np.ndarray, b: np.ndarray, sq_radius: float) -> bool:
        if len(a) == 0 or len(b) == 0:
            return False
        return bool(
            _any_within_jit(
                np.ascontiguousarray(a), np.ascontiguousarray(b), sq_radius
            )
        )

    def count_within_jit(
        q: Sequence[float], pts: np.ndarray, sq_radius: float
    ) -> int:
        if len(pts) == 0:
            return 0
        return int(
            _count_within_jit(
                np.asarray(q, dtype=float), np.ascontiguousarray(pts), sq_radius
            )
        )

    _KERNELS = {
        "ball_counts": ball_counts_jit,
        "any_within": any_within_jit,
        "count_within": count_within_jit,
        "distance_matrix": distance_matrix_blocked,
    }
    _DESCRIPTION = f"numba-jit exact loops (numba {numba.__version__})"
else:
    _KERNELS = {
        "ball_counts": ball_counts_blocked,
        "any_within": any_within_blocked,
        "distance_matrix": distance_matrix_blocked,
    }
    _DESCRIPTION = "cache-blocked numpy tiles (numba not installed)"


BACKEND = Backend(name="accel", kernels=_KERNELS, description=_DESCRIPTION)
