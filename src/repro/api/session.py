"""Buffered ingest sessions — the ROADMAP's "async ingest" item.

An :class:`IngestSession` accumulates updates in memory and applies
them through the engine's vectorized bulk paths (``insert_many`` /
``delete_many``) only when a *flush* happens:

* automatically, once the buffer reaches the flush threshold
  (``EngineConfig.flush_threshold``, overridable per session);
* at a **query barrier** — any ``cgroup_by`` / ``snapshot`` / ``stats``
  through the session flushes first, so queries always observe every
  update issued before them;
* explicitly via :meth:`IngestSession.flush` or on clean ``with``-block
  exit.

Because the bulk insert paths park new points in the deferred kd-tree
buffers (:class:`repro.geometry.kdtree.DeferredKDTree`) and the
emptiness structures answer small-cell queries from distance matrices
without forcing an index build, a pure-ingest phase through a session
never pays for spatial-index construction — indexes materialize lazily,
the first time a large cell is actually queried.

Point ids are handed out *eagerly*: every clusterer assigns contiguous
ids in arrival order, so the session predicts the ids a flush will
assign and returns them immediately from :meth:`ingest` /
:meth:`ingest_many`.  The prediction is verified at flush time; writing
to the engine directly while a session holds buffered updates is the
one way to invalidate it, and raises a clear
:class:`repro.errors.ReproError` instead of corrupting id bookkeeping.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ReproError


class IngestSession:
    """Buffered update session over one :class:`repro.api.Engine`.

    Obtain one from :meth:`repro.api.Engine.session`; usable as a
    context manager (clean exit flushes, an in-flight exception discards
    the buffer so a failed batch is not half-replayed)::

        with engine.session() as session:
            for point in stream:
                session.ingest(point)
        # exiting flushed; engine.snapshot() now sees every point
    """

    def __init__(self, engine, flush_threshold: Optional[int] = None) -> None:
        if flush_threshold is not None and (
            not isinstance(flush_threshold, int)
            or isinstance(flush_threshold, bool)
            or flush_threshold < 1
        ):
            raise ConfigError(
                f"flush_threshold must be a positive integer or None, got "
                f"{flush_threshold!r}"
            )
        self._engine = engine
        self._threshold = (
            flush_threshold
            if flush_threshold is not None
            else engine.config.flush_threshold
        )
        # Buffered update runs in arrival order; consecutive same-kind
        # updates coalesce into one run = one bulk call at flush time.
        # Insert runs carry the id predicted for their first point, so
        # flush can verify the eager handouts against reality.
        self._runs: List[Tuple[str, list, Optional[int]]] = []
        self._pending = 0
        self._flushes = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending_updates(self) -> int:
        """Updates buffered and not yet applied to the engine."""
        return self._pending

    @property
    def flush_count(self) -> int:
        """Flushes performed so far (auto, barrier and explicit)."""
        return self._flushes

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has retired this session."""
        return self._closed

    def _check_open(self, op: str) -> None:
        if self._closed:
            raise ReproError(
                f"cannot {op} through a closed ingest session; open a new "
                f"session with engine.session()"
            )

    def _watermark(self) -> Optional[int]:
        """The next id the engine's clusterer will assign (applied state)."""
        return getattr(self._engine.raw, "_next_id", None)

    # ------------------------------------------------------------------
    # Buffered updates
    # ------------------------------------------------------------------

    def ingest(self, point: Sequence[float]) -> int:
        """Buffer one insertion; returns the id the flush will assign."""
        return self.ingest_many([point])[0]

    def ingest_many(self, points: Iterable[Sequence[float]]) -> List[int]:
        """Buffer a batch of insertions; returns their (predicted) ids.

        Ids are assigned eagerly: clusterers allocate contiguous ids in
        arrival order and bulk flushes preserve batch order, so the ids
        a flush will hand out are known now.  (On the rare clusterer
        without an id watermark the batch is applied immediately
        instead, which returns the true ids at the cost of buffering.)
        """
        self._check_open("ingest")
        batch = [tuple(float(x) for x in p) for p in points]
        if not batch:
            return []
        watermark = self._watermark()
        if watermark is None:
            # No id watermark to predict from: degrade to write-through.
            return self._engine.ingest(batch)
        base = watermark + self._buffered_inserts()
        if self._runs and self._runs[-1][0] == "insert":
            self._runs[-1][1].extend(batch)
        else:
            self._runs.append(("insert", batch, base))
        self._pending += len(batch)
        self._maybe_flush()
        return list(range(base, base + len(batch)))

    def delete(self, pid: int) -> None:
        """Buffer one deletion by id."""
        self.delete_many([pid])

    def delete_many(self, pids: Iterable[int]) -> None:
        """Buffer a batch of deletions by id.

        Deleting a point whose insertion is still buffered forces a
        flush first (the id must exist before the engine can remove
        it); deletions on an insert-only algorithm fail immediately
        rather than poisoning the buffer.
        """
        self._check_open("delete")
        pid_list = [int(pid) for pid in pids]
        if not pid_list:
            return
        if self._engine.config.insert_only:
            raise self._engine._insert_only_error("delete")
        watermark = self._watermark()
        if watermark is not None and any(pid >= watermark for pid in pid_list):
            # Targets a buffered insertion: materialize it first.
            self.flush()
        if self._runs and self._runs[-1][0] == "delete":
            self._runs[-1][1].extend(pid_list)
        else:
            self._runs.append(("delete", pid_list, None))
        self._pending += len(pid_list)
        self._maybe_flush()

    def _buffered_inserts(self) -> int:
        return sum(len(run) for kind, run, _ in self._runs if kind == "insert")

    def _maybe_flush(self) -> None:
        if self._threshold is not None and self._pending >= self._threshold:
            self.flush()

    def flush(self) -> None:
        """Apply every buffered update to the engine, in arrival order.

        If a run fails, that run is dropped (the raised error reports
        it; the dynamic clusterers' bulk paths validate before mutating,
        so a failed run applied nothing — only the sequential-fallback
        baselines can be left partially applied) and every *later* run
        stays buffered instead of being silently discarded: after a
        failed *delete* run a retried flush applies the rest exactly as
        predicted, and after a failed *insert* run the retry trips the
        stale-id check loudly (the dropped inserts shifted the id
        space), never reassigning handed-out ids in silence.
        """
        if not self._runs:
            return
        self._flushes += 1
        while self._runs:
            kind, payload, expected = self._runs[0]
            try:
                if kind == "insert":
                    pids = self._engine.ingest(payload)
                    if expected is not None and pids and pids[0] != expected:
                        raise ReproError(
                            f"ingest session ids went stale: the flush "
                            f"assigned ids from {pids[0]}, the session "
                            f"predicted {expected} — the engine was written "
                            f"to directly while this session held buffered "
                            f"updates"
                        )
                else:
                    self._engine.delete_many(payload)
            finally:
                # Pop on success and on failure alike; only the raise
                # distinguishes them.
                self._runs.pop(0)
                self._pending -= len(payload)

    def discard(self) -> int:
        """Drop every buffered update unapplied; returns how many."""
        dropped = self._pending
        self._runs = []
        self._pending = 0
        return dropped

    # ------------------------------------------------------------------
    # Query barriers
    # ------------------------------------------------------------------

    def cgroup_by(self, pids: Iterable[int]):
        """Barrier + C-group-by: flushes, then queries the engine."""
        self._check_open("query (cgroup_by)")
        self.flush()
        return self._engine.cgroup_by(pids)

    def cgroup_by_many(self, pids: Iterable[int]):
        """Barrier + batched C-group-by."""
        self._check_open("query (cgroup_by_many)")
        self.flush()
        return self._engine.cgroup_by_many(pids)

    def snapshot(self):
        """Barrier + epoch-stamped full clustering."""
        self._check_open("snapshot")
        self.flush()
        return self._engine.snapshot()

    def stats(self):
        """Barrier + epoch-stamped service counters."""
        self._check_open("stats")
        self.flush()
        return self._engine.stats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Flush buffered updates and retire the session; idempotent.

        The first ``close`` flushes (so close-with-buffered-ops loses
        nothing); if that flush fails — the engine died, a worker
        crashed — the remaining buffer is discarded and the *primary*
        error propagates once.  Every later ``close`` is a silent
        no-op: a crash-path double-close never raises a secondary
        error on top of the one that mattered.  Updates and queries
        through a closed session raise a clear
        :class:`repro.errors.ReproError`.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.flush()
        except BaseException:
            self.discard()
            raise

    def __enter__(self) -> "IngestSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.discard()
            self._closed = True
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IngestSession(pending={self._pending}, "
            f"threshold={self._threshold}, flushes={self._flushes})"
        )
