"""Typed, frozen engine configuration — all knob validation in one place.

Every parameter that used to be scattered across clusterer
constructors, environment variables and CLI flags (algorithm, eps,
minpts, rho, dim, kernel backend, batch size, ingest flush policy)
lives in one immutable :class:`EngineConfig`.  Construction validates
everything and raises :class:`repro.errors.ConfigError` with a precise
message, so "is this configuration valid?" is decided before any
structure is built — the clusterers re-check their own invariants, but
through this class a bad knob can never get that far.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass, fields, replace
from typing import Optional, Tuple

from repro import kernels
from repro.errors import ConfigError


def _available_start_methods() -> Tuple[str, ...]:
    """Start methods this platform supports (fork is POSIX-only)."""
    return tuple(multiprocessing.get_all_start_methods())

#: Canonical algorithm names (the paper's Section 8 line-up, matching
#: the CLI choices) plus the two family aliases ``semi`` / ``full``,
#: which resolve by ``rho``: exact when ``rho == 0``, approximate
#: otherwise.
ALGORITHM_CHOICES = (
    "semi-exact",
    "semi-approx",
    "full-exact",
    "double-approx",
    "incdbscan",
    "recompute",
)

_ALIASES = {"semi": ("semi-exact", "semi-approx"),
            "full": ("full-exact", "double-approx")}

#: Algorithms whose core definition has no rho relaxation at all.
_EXACT_ONLY = ("incdbscan", "recompute")

#: Default ingest-session buffer size (updates held before a flush).
#: Large enough that pure-ingest phases amortize the vectorized batch
#: paths, small enough that a query barrier never replays an unbounded
#: buffer.
DEFAULT_FLUSH_THRESHOLD = 4096

#: Shard executor choices (see :mod:`repro.shard.executors` and
#: :mod:`repro.shard.rpc`): backends in-process and called inline, one
#: worker process per shard, or one remote TCP worker per shard
#: (``python -m repro shard-worker``, addressed via ``shard_workers``).
SHARD_EXECUTOR_CHOICES = ("serial", "process", "tcp")

#: Transports of the ``process`` shard executor (see
#: :mod:`repro.shard.transport`): ``pickle`` ships whole call messages
#: through the worker pipes, ``shm`` pickles only control metadata and
#: moves bulk numpy payloads through pooled shared-memory segments
#: (zero-copy on the receiving side).  Unset means *auto*: ``shm``
#: whenever the process executor runs (overridable via the
#: ``REPRO_SHARD_TRANSPORT`` environment variable); the serial executor
#: calls backends inline and reports the pseudo-transport ``inline``.
SHARD_TRANSPORT_CHOICES = ("pickle", "shm")

#: Start methods a process-executor deployment may pin.  The default is
#: ``spawn``: workers rebuild every backend from ``(config, index,
#: count)`` in a fresh interpreter, so nothing of the parent's
#: kernel-registry or jit state is inherited (under ``fork`` a worker
#: silently starts from a snapshot of the parent).  Overridable via the
#: ``REPRO_SHARD_START_METHOD`` environment variable.
SHARD_START_METHOD_CHOICES = ("fork", "spawn", "forkserver")

DEFAULT_SHARD_START_METHOD = "spawn"

#: Default cell-ownership block side (in cells per axis) of a sharded
#: deployment.  Larger blocks shrink the halo-replication factor
#: (fewer points near a foreign boundary) but leave fewer blocks to
#: balance across shards; 16 keeps the replication factor moderate
#: (~1.5x at d=2) while a seed-spreader-scale dataset still spans
#: hundreds of blocks.
DEFAULT_SHARD_BLOCK = 16

#: Algorithms a sharded deployment cannot run: sharding partitions the
#: *cell registry*, so only the grid-based clusterers qualify.  (Today
#: this coincides with ``_EXACT_ONLY``, but the two express different
#: properties — rho-free vs. grid-less — and may diverge.)
UNSHARDEABLE_ALGORITHMS = ("incdbscan", "recompute")

#: Default deadline (seconds) on every process-executor reply wait.  A
#: hung worker surfaces as :class:`repro.errors.ShardTimeoutError`
#: within this bound instead of hanging the parent forever.  Generous
#: enough that a legitimate big merge on a loaded machine never trips
#: it; chaos tests tighten it per-deployment.  Overridable via the
#: ``REPRO_SHARD_CALL_TIMEOUT`` environment variable.
DEFAULT_SHARD_CALL_TIMEOUT = 60.0

#: Default per-shard restart budget of the supervisor
#: (:class:`repro.shard.supervisor.ShardSupervisor`): how many times
#: one shard's worker may be respawned-and-replayed over the
#: deployment's lifetime before a failure is declared unrecoverable.
#: ``0`` disables recovery (every worker death or timeout is fatal,
#: the pre-supervision behavior).  Overridable via the
#: ``REPRO_SHARD_MAX_RESTARTS`` environment variable.
DEFAULT_SHARD_MAX_RESTARTS = 3

#: Default journal-truncation period of the shard supervisor: after
#: this many journaled mutating calls on one shard, the supervisor
#: captures a state snapshot from the worker and truncates the journal
#: prefix, so recovery replays snapshot + suffix and the journal's
#: memory footprint stays bounded regardless of update history.
#: Overridable via the ``REPRO_SHARD_JOURNAL_SNAPSHOT_EVERY``
#: environment variable.
DEFAULT_SHARD_JOURNAL_SNAPSHOT_EVERY = 512


def _parse_worker_address(spec: str) -> Tuple[str, int]:
    """Parse one ``host:port`` shard-worker address (ConfigError on junk)."""
    if not isinstance(spec, str) or ":" not in spec:
        raise ConfigError(
            f"shard worker address must be a 'host:port' string, got "
            f"{spec!r}"
        )
    host, _, port_text = spec.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not (0 < port < 65536):
        raise ConfigError(
            f"shard worker address must be a 'host:port' string with a "
            f"valid port, got {spec!r}"
        )
    return host, port


@dataclass(frozen=True)
class EngineConfig:
    """Validated, immutable configuration of one :class:`repro.api.Engine`.

    Required: ``eps`` (the DBSCAN radius) and ``minpts``.  Everything
    else defaults to the paper's conventions: the fully-dynamic
    algorithm, exact clustering (``rho = 0``), two dimensions, the
    process-wide kernel backend left untouched, sequential updates (no
    ``batch_size``), ingest sessions flushing every
    ``DEFAULT_FLUSH_THRESHOLD`` buffered updates, and a single engine
    (no ``shards``).  Setting ``shards`` makes :func:`repro.api.open`
    build a :class:`repro.shard.ShardedEngine` instead; ``shard_block``
    (ownership block side, in cells per axis), ``shard_executor``
    (``serial`` / ``process`` / ``tcp``), ``shard_transport``
    (``pickle`` / ``shm``; process executor only, default auto →
    ``shm``), ``shard_start_method`` (``fork`` / ``spawn`` /
    ``forkserver``, default ``spawn``) and ``shard_workers`` (one
    ``host:port`` per shard; tcp executor only, env fallback
    ``REPRO_SHARD_WORKERS``) tune the deployment and require
    ``shards``.  ``shard_journal_snapshot_every`` bounds the
    supervisor's recovery journal: after that many journaled mutations
    on one shard its state is snapshotted and the journal prefix
    truncated (default
    :data:`DEFAULT_SHARD_JOURNAL_SNAPSHOT_EVERY`, env fallback
    ``REPRO_SHARD_JOURNAL_SNAPSHOT_EVERY``).
    Fault tolerance of the process executor is tuned by
    ``shard_call_timeout`` (deadline in seconds on every reply wait,
    default :data:`DEFAULT_SHARD_CALL_TIMEOUT`),
    ``shard_max_restarts`` (the supervisor's per-shard
    respawn-and-replay budget, default
    :data:`DEFAULT_SHARD_MAX_RESTARTS`; 0 disables recovery) and
    ``shard_fault_plan`` (a :mod:`repro.shard.faults` injection plan
    for chaos testing; process executor only) — all requiring
    ``shards``, each with an environment fallback
    (``REPRO_SHARD_CALL_TIMEOUT`` / ``REPRO_SHARD_MAX_RESTARTS`` /
    ``REPRO_FAULT_PLAN``).  ``fragment_cache`` toggles the incremental
    fragment cache of the grid clusterers (memoized per-cell barrier
    fragments with cell-level invalidation; default on, env fallback
    ``REPRO_FRAGMENT_CACHE``) — cache hit/miss/invalidation counters
    surface in :class:`repro.api.EngineStats`.

    ``algorithm`` accepts the canonical Section 8 names
    (``semi-exact``, ``semi-approx``, ``full-exact``, ``double-approx``,
    ``incdbscan``, ``recompute``) or a family alias (``semi`` /
    ``full``) that resolves by ``rho``.  The instance stores the name
    as given — so ``replace(rho=...)`` on a family alias re-resolves
    instead of contradicting a frozen exact/approx choice — and
    :attr:`resolved_algorithm` exposes the canonical name.

    All validation happens here, in ``__post_init__``, and every
    failure is a :class:`ConfigError`.
    """

    eps: float
    minpts: int
    algorithm: str = "full-exact"
    rho: float = 0.0
    dim: int = 2
    backend: Optional[str] = None
    batch_size: Optional[int] = None
    flush_threshold: Optional[int] = DEFAULT_FLUSH_THRESHOLD
    shards: Optional[int] = None
    shard_block: Optional[int] = None
    shard_executor: Optional[str] = None
    shard_transport: Optional[str] = None
    shard_start_method: Optional[str] = None
    shard_call_timeout: Optional[float] = None
    shard_max_restarts: Optional[int] = None
    shard_fault_plan: Optional[str] = None
    shard_workers: Optional[Tuple[str, ...]] = None
    shard_journal_snapshot_every: Optional[int] = None
    fragment_cache: Optional[bool] = None

    def __post_init__(self) -> None:
        algorithm = self.algorithm
        if algorithm not in ALGORITHM_CHOICES and algorithm not in _ALIASES:
            raise ConfigError(
                f"unknown algorithm {self.algorithm!r}; choices: "
                f"{', '.join(ALGORITHM_CHOICES + tuple(_ALIASES))}"
            )
        if not isinstance(self.eps, (int, float)) or isinstance(self.eps, bool):
            raise ConfigError(f"eps must be a number, got {self.eps!r}")
        if not math.isfinite(self.eps) or self.eps <= 0:
            raise ConfigError(f"eps must be positive and finite, got {self.eps}")
        if not isinstance(self.minpts, int) or isinstance(self.minpts, bool):
            raise ConfigError(f"minpts must be an integer, got {self.minpts!r}")
        if self.minpts < 1:
            raise ConfigError(f"minpts must be >= 1, got {self.minpts}")
        if not isinstance(self.rho, (int, float)) or isinstance(self.rho, bool):
            raise ConfigError(f"rho must be a number, got {self.rho!r}")
        if not math.isfinite(self.rho) or self.rho < 0:
            raise ConfigError(
                f"rho must be non-negative and finite, got {self.rho}"
            )
        # Family aliases resolve by rho, so only an *explicitly* named
        # exact algorithm can contradict a non-zero rho.
        if algorithm.endswith("-exact") and self.rho != 0:
            raise ConfigError(
                f"algorithm {algorithm!r} is exact by definition but "
                f"rho={self.rho}; use the approximate variant, the "
                f"family alias, or rho=0"
            )
        if algorithm in _EXACT_ONLY and self.rho != 0:
            raise ConfigError(
                f"algorithm {algorithm!r} has no rho parameter; got "
                f"rho={self.rho}"
            )
        if not isinstance(self.dim, int) or isinstance(self.dim, bool):
            raise ConfigError(f"dim must be an integer, got {self.dim!r}")
        if self.dim < 1:
            raise ConfigError(f"dim must be >= 1, got {self.dim}")
        if self.backend is not None and self.backend not in kernels.available_backends():
            raise ConfigError(
                f"unknown kernel backend {self.backend!r}; choices: "
                f"{', '.join(kernels.available_backends())}"
            )
        if self.batch_size is not None:
            if not isinstance(self.batch_size, int) or isinstance(self.batch_size, bool):
                raise ConfigError(
                    f"batch_size must be an integer, got {self.batch_size!r}"
                )
            if self.batch_size < 1:
                raise ConfigError(
                    f"batch_size must be >= 1, got {self.batch_size}"
                )
        if self.flush_threshold is not None:
            if not isinstance(self.flush_threshold, int) or isinstance(
                self.flush_threshold, bool
            ):
                raise ConfigError(
                    f"flush_threshold must be an integer or None, got "
                    f"{self.flush_threshold!r}"
                )
            if self.flush_threshold < 1:
                raise ConfigError(
                    f"flush_threshold must be >= 1 (or None to flush only "
                    f"on barriers), got {self.flush_threshold}"
                )
        if self.shards is not None:
            if not isinstance(self.shards, int) or isinstance(self.shards, bool):
                raise ConfigError(
                    f"shards must be an integer or None, got {self.shards!r}"
                )
            if self.shards < 1:
                raise ConfigError(f"shards must be >= 1, got {self.shards}")
            if self.resolved_algorithm in UNSHARDEABLE_ALGORITHMS:
                raise ConfigError(
                    f"algorithm {self.resolved_algorithm!r} cannot be "
                    f"sharded: sharding partitions the cell registry, "
                    f"which only the grid-based algorithms (semi/full "
                    f"families) maintain"
                )
        if self.shard_block is not None:
            if self.shards is None:
                raise ConfigError(
                    f"shard_block={self.shard_block!r} requires shards to "
                    f"be set"
                )
            if (
                not isinstance(self.shard_block, int)
                or isinstance(self.shard_block, bool)
                or self.shard_block < 1
            ):
                raise ConfigError(
                    f"shard_block must be a positive integer or None, got "
                    f"{self.shard_block!r}"
                )
        if self.shard_executor is not None:
            if self.shards is None:
                raise ConfigError(
                    f"shard_executor={self.shard_executor!r} requires "
                    f"shards to be set"
                )
            if self.shard_executor not in SHARD_EXECUTOR_CHOICES:
                raise ConfigError(
                    f"unknown shard_executor {self.shard_executor!r}; "
                    f"choices: {', '.join(SHARD_EXECUTOR_CHOICES)}"
                )
        if self.shard_transport is not None:
            if self.shards is None:
                raise ConfigError(
                    f"shard_transport={self.shard_transport!r} requires "
                    f"shards to be set"
                )
            if self.shard_transport not in SHARD_TRANSPORT_CHOICES:
                raise ConfigError(
                    f"unknown shard_transport {self.shard_transport!r}; "
                    f"choices: {', '.join(SHARD_TRANSPORT_CHOICES)}"
                )
            if self.resolved_shard_executor != "process":
                raise ConfigError(
                    f"shard_transport={self.shard_transport!r} requires "
                    f"shard_executor='process'; the serial executor calls "
                    f"backends inline and the tcp executor frames calls "
                    f"over its sockets"
                )
        if self.shard_start_method is not None:
            if self.shards is None:
                raise ConfigError(
                    f"shard_start_method={self.shard_start_method!r} "
                    f"requires shards to be set"
                )
            if self.shard_start_method not in SHARD_START_METHOD_CHOICES:
                raise ConfigError(
                    f"unknown shard_start_method "
                    f"{self.shard_start_method!r}; choices: "
                    f"{', '.join(SHARD_START_METHOD_CHOICES)}"
                )
            if self.shard_start_method not in _available_start_methods():
                raise ConfigError(
                    f"shard_start_method {self.shard_start_method!r} is "
                    f"not available on this platform; available: "
                    f"{', '.join(_available_start_methods())}"
                )
        if self.shard_call_timeout is not None:
            if self.shards is None:
                raise ConfigError(
                    f"shard_call_timeout={self.shard_call_timeout!r} "
                    f"requires shards to be set"
                )
            if (
                not isinstance(self.shard_call_timeout, (int, float))
                or isinstance(self.shard_call_timeout, bool)
                or not math.isfinite(self.shard_call_timeout)
                or self.shard_call_timeout <= 0
            ):
                raise ConfigError(
                    f"shard_call_timeout must be a positive finite number "
                    f"of seconds or None, got {self.shard_call_timeout!r}"
                )
        if self.shard_max_restarts is not None:
            if self.shards is None:
                raise ConfigError(
                    f"shard_max_restarts={self.shard_max_restarts!r} "
                    f"requires shards to be set"
                )
            if (
                not isinstance(self.shard_max_restarts, int)
                or isinstance(self.shard_max_restarts, bool)
                or self.shard_max_restarts < 0
            ):
                raise ConfigError(
                    f"shard_max_restarts must be a non-negative integer or "
                    f"None (0 disables recovery), got "
                    f"{self.shard_max_restarts!r}"
                )
        if self.shard_fault_plan is not None:
            if self.shards is None:
                raise ConfigError(
                    f"shard_fault_plan={self.shard_fault_plan!r} requires "
                    f"shards to be set"
                )
            if self.resolved_shard_executor not in ("process", "tcp"):
                raise ConfigError(
                    f"shard_fault_plan={self.shard_fault_plan!r} requires "
                    f"shard_executor='process' or 'tcp'; fault plans are "
                    f"consulted by workers, which the serial executor does "
                    f"not have"
                )
            if not isinstance(self.shard_fault_plan, str):
                raise ConfigError(
                    f"shard_fault_plan must be a plan string or None, got "
                    f"{self.shard_fault_plan!r}"
                )
            # Imported lazily: repro.shard imports this module at load.
            from repro.shard.faults import parse_fault_plan

            parse_fault_plan(self.shard_fault_plan)
        if self.shard_workers is not None:
            if self.shards is None:
                raise ConfigError(
                    f"shard_workers={self.shard_workers!r} requires shards "
                    f"to be set"
                )
            if self.resolved_shard_executor != "tcp":
                raise ConfigError(
                    f"shard_workers={self.shard_workers!r} requires "
                    f"shard_executor='tcp'; only the tcp executor connects "
                    f"to externally launched workers"
                )
            if isinstance(self.shard_workers, str) or not isinstance(
                self.shard_workers, (list, tuple)
            ):
                raise ConfigError(
                    f"shard_workers must be a sequence of 'host:port' "
                    f"strings or None, got {self.shard_workers!r}"
                )
            for spec in self.shard_workers:
                _parse_worker_address(spec)
            # Frozen dataclass: normalize list input to a hashable tuple.
            object.__setattr__(
                self, "shard_workers", tuple(self.shard_workers)
            )
            if len(self.shard_workers) != self.shards:
                raise ConfigError(
                    f"shard_workers lists {len(self.shard_workers)} "
                    f"addresses but shards={self.shards}; exactly one "
                    f"worker address per shard is required"
                )
        if self.shard_journal_snapshot_every is not None:
            if self.shards is None:
                raise ConfigError(
                    f"shard_journal_snapshot_every="
                    f"{self.shard_journal_snapshot_every!r} requires "
                    f"shards to be set"
                )
            if (
                not isinstance(self.shard_journal_snapshot_every, int)
                or isinstance(self.shard_journal_snapshot_every, bool)
                or self.shard_journal_snapshot_every < 1
            ):
                raise ConfigError(
                    f"shard_journal_snapshot_every must be a positive "
                    f"integer or None, got "
                    f"{self.shard_journal_snapshot_every!r}"
                )
        if self.fragment_cache is not None and not isinstance(
            self.fragment_cache, bool
        ):
            raise ConfigError(
                f"fragment_cache must be a bool or None (None defers to "
                f"the REPRO_FRAGMENT_CACHE environment variable), got "
                f"{self.fragment_cache!r}"
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def resolved_algorithm(self) -> str:
        """The canonical algorithm name (family aliases resolved by rho)."""
        if self.algorithm in _ALIASES:
            exact, approx = _ALIASES[self.algorithm]
            return exact if self.rho == 0 else approx
        return self.algorithm

    @property
    def insert_only(self) -> bool:
        """Whether the configured algorithm rejects deletions."""
        return self.algorithm.startswith("semi")

    @property
    def effective_rho(self) -> float:
        """The rho the built clusterer actually runs with."""
        return 0.0 if self.resolved_algorithm.endswith("-exact") else self.rho

    @property
    def resolved_shard_block(self) -> int:
        """The cell-ownership block side a sharded deployment uses."""
        return (
            self.shard_block
            if self.shard_block is not None
            else DEFAULT_SHARD_BLOCK
        )

    @property
    def resolved_shard_executor(self) -> str:
        """The shard executor a sharded deployment uses."""
        return (
            self.shard_executor if self.shard_executor is not None else "serial"
        )

    @property
    def resolved_shard_transport(self) -> str:
        """The transport the deployment's executor actually moves calls on.

        ``inline`` for the serial executor (backends are called
        in-process; nothing is transported), ``tcp`` for the tcp
        executor (length-prefixed socket frames; not tunable).  For the
        process executor: the explicit ``shard_transport`` knob if set,
        else the ``REPRO_SHARD_TRANSPORT`` environment variable, else
        ``shm``.
        """
        if self.resolved_shard_executor == "tcp":
            return "tcp"
        if self.resolved_shard_executor != "process":
            return "inline"
        if self.shard_transport is not None:
            return self.shard_transport
        env = os.environ.get("REPRO_SHARD_TRANSPORT")
        if env:
            if env not in SHARD_TRANSPORT_CHOICES:
                raise ConfigError(
                    f"REPRO_SHARD_TRANSPORT={env!r} is not a valid shard "
                    f"transport; choices: {', '.join(SHARD_TRANSPORT_CHOICES)}"
                )
            return env
        return "shm"

    @property
    def resolved_shard_start_method(self) -> str:
        """The multiprocessing start method the process executor pins.

        The explicit ``shard_start_method`` knob if set, else the
        ``REPRO_SHARD_START_METHOD`` environment variable, else
        ``spawn`` — never the ambient platform default, which on POSIX
        is ``fork`` and silently hands every worker a snapshot of the
        parent's kernel-registry/jit state.
        """
        if self.shard_start_method is not None:
            return self.shard_start_method
        env = os.environ.get("REPRO_SHARD_START_METHOD")
        if env:
            if env not in _available_start_methods():
                raise ConfigError(
                    f"REPRO_SHARD_START_METHOD={env!r} is not an available "
                    f"start method; available: "
                    f"{', '.join(_available_start_methods())}"
                )
            return env
        return DEFAULT_SHARD_START_METHOD

    @property
    def resolved_shard_call_timeout(self) -> float:
        """The deadline (seconds) on every process-executor reply wait.

        The explicit ``shard_call_timeout`` knob if set, else the
        ``REPRO_SHARD_CALL_TIMEOUT`` environment variable, else
        :data:`DEFAULT_SHARD_CALL_TIMEOUT`.
        """
        if self.shard_call_timeout is not None:
            return float(self.shard_call_timeout)
        env = os.environ.get("REPRO_SHARD_CALL_TIMEOUT")
        if env:
            try:
                timeout = float(env)
            except ValueError:
                timeout = math.nan
            if not math.isfinite(timeout) or timeout <= 0:
                raise ConfigError(
                    f"REPRO_SHARD_CALL_TIMEOUT={env!r} is not a positive "
                    f"finite number of seconds"
                )
            return timeout
        return DEFAULT_SHARD_CALL_TIMEOUT

    @property
    def resolved_shard_max_restarts(self) -> int:
        """The supervisor's per-shard restart budget.

        The explicit ``shard_max_restarts`` knob if set, else the
        ``REPRO_SHARD_MAX_RESTARTS`` environment variable, else
        :data:`DEFAULT_SHARD_MAX_RESTARTS`.
        """
        if self.shard_max_restarts is not None:
            return self.shard_max_restarts
        env = os.environ.get("REPRO_SHARD_MAX_RESTARTS")
        if env:
            try:
                budget = int(env)
            except ValueError:
                budget = -1
            if budget < 0:
                raise ConfigError(
                    f"REPRO_SHARD_MAX_RESTARTS={env!r} is not a "
                    f"non-negative integer"
                )
            return budget
        return DEFAULT_SHARD_MAX_RESTARTS

    @property
    def resolved_fragment_cache(self) -> bool:
        """Whether the built clusterers memoize barrier fragments.

        The explicit ``fragment_cache`` knob if set, else the
        ``REPRO_FRAGMENT_CACHE`` environment variable, else on (the
        cache is invisible in results — exact at ``rho = 0``,
        sandwich-legal above).
        """
        # Imported lazily: repro.core pulls in the kernel registry.
        from repro.core.fragments import resolve_fragment_cache

        return resolve_fragment_cache(self.fragment_cache)

    @property
    def resolved_shard_fault_plan(self) -> Optional[str]:
        """The fault plan worker processes consult, or ``None``.

        ``None`` unless the deployment runs the process or tcp
        executor (fault plans inject into workers).  Then: the
        explicit ``shard_fault_plan`` knob if set, else the
        ``REPRO_FAULT_PLAN`` environment variable (validated here),
        else ``None`` — the zero-overhead default.
        """
        if self.resolved_shard_executor not in ("process", "tcp"):
            return None
        if self.shard_fault_plan is not None:
            return self.shard_fault_plan
        env = os.environ.get("REPRO_FAULT_PLAN")
        if env:
            from repro.shard.faults import parse_fault_plan

            try:
                parse_fault_plan(env)
            except ConfigError as exc:
                raise ConfigError(f"REPRO_FAULT_PLAN: {exc}") from None
            return env
        return None

    @property
    def resolved_shard_workers(self) -> Tuple[Tuple[str, int], ...]:
        """The ``(host, port)`` address of every tcp shard worker.

        The explicit ``shard_workers`` knob if set, else the
        ``REPRO_SHARD_WORKERS`` environment variable (comma-separated
        ``host:port`` list).  Only meaningful for the tcp executor;
        raises :class:`ConfigError` when neither source names exactly
        one address per shard.
        """
        specs = self.shard_workers
        if specs is None:
            env = os.environ.get("REPRO_SHARD_WORKERS")
            if not env:
                raise ConfigError(
                    "shard_executor='tcp' needs worker addresses: set "
                    "shard_workers=['host:port', ...] or the "
                    "REPRO_SHARD_WORKERS environment variable "
                    "(comma-separated)"
                )
            specs = tuple(s.strip() for s in env.split(",") if s.strip())
        addresses = tuple(_parse_worker_address(spec) for spec in specs)
        if self.shards is not None and len(addresses) != self.shards:
            raise ConfigError(
                f"{len(addresses)} shard worker addresses for "
                f"shards={self.shards}; exactly one worker per shard is "
                f"required"
            )
        return addresses

    @property
    def resolved_shard_journal_snapshot_every(self) -> int:
        """The supervisor's journal-truncation period (mutations/shard).

        The explicit ``shard_journal_snapshot_every`` knob if set, else
        the ``REPRO_SHARD_JOURNAL_SNAPSHOT_EVERY`` environment
        variable, else :data:`DEFAULT_SHARD_JOURNAL_SNAPSHOT_EVERY`.
        """
        if self.shard_journal_snapshot_every is not None:
            return self.shard_journal_snapshot_every
        env = os.environ.get("REPRO_SHARD_JOURNAL_SNAPSHOT_EVERY")
        if env:
            try:
                period = int(env)
            except ValueError:
                period = 0
            if period < 1:
                raise ConfigError(
                    f"REPRO_SHARD_JOURNAL_SNAPSHOT_EVERY={env!r} is not a "
                    f"positive integer"
                )
            return period
        return DEFAULT_SHARD_JOURNAL_SNAPSHOT_EVERY

    def replace(self, **changes) -> "EngineConfig":
        """A new validated config with the given fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict view (JSON-ready) of every configured knob."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def build_clusterer(self):
        """Instantiate the configured clusterer (without backend side
        effects — :meth:`repro.api.Engine.open` owns backend selection).
        """
        # Imported here: repro.core imports repro.kernels at module
        # load, and keeping config importable early avoids any cycle.
        from repro.baselines.incdbscan import IncDBSCAN
        from repro.baselines.naive_dynamic import RecomputeClusterer
        from repro.core.fullydynamic import FullyDynamicClusterer
        from repro.core.semidynamic import SemiDynamicClusterer

        algorithm = self.resolved_algorithm
        if algorithm.startswith("semi"):
            return SemiDynamicClusterer(
                self.eps,
                self.minpts,
                rho=self.effective_rho,
                dim=self.dim,
                fragment_cache=self.fragment_cache,
            )
        if algorithm in ("full-exact", "double-approx"):
            return FullyDynamicClusterer(
                self.eps,
                self.minpts,
                rho=self.effective_rho,
                dim=self.dim,
                fragment_cache=self.fragment_cache,
            )
        if algorithm == "incdbscan":
            return IncDBSCAN(self.eps, self.minpts, dim=self.dim)
        return RecomputeClusterer(self.eps, self.minpts, dim=self.dim)
