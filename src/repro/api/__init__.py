"""repro.api — the typed service facade over the paper's clusterers.

The one stable entry point the CLI, the workload runner, the examples
and future sharding/server layers all sit behind::

    import repro.api

    engine = repro.api.open(algorithm="full", eps=3.0, minpts=5, dim=2)
    pids = engine.ingest(points)              # vectorized bulk insert
    outcome = engine.cgroup_by(pids[:10])     # epoch-stamped result
    engine.delete(pids[0])
    snap = engine.snapshot()                  # full clustering @ epoch

    with engine.session() as session:         # buffered async ingest
        for p in stream:
            session.ingest(p)                 # flushes on threshold
        outcome = session.cgroup_by(pids)     # query barrier

Configuration is one frozen, validated :class:`EngineConfig`; every
user-facing failure derives from :class:`repro.errors.ReproError`
(re-exported here), with :class:`ConfigError` covering every invalid
knob.  The legacy entry points (``semi_approx``, ``double_approx``,
direct clusterer construction) remain supported shims — see the README
migration table.
"""

from __future__ import annotations

from typing import Optional

from repro.api.config import (
    ALGORITHM_CHOICES,
    DEFAULT_FLUSH_THRESHOLD,
    DEFAULT_SHARD_BLOCK,
    SHARD_EXECUTOR_CHOICES,
    SHARD_START_METHOD_CHOICES,
    SHARD_TRANSPORT_CHOICES,
    EngineConfig,
)
from repro.api.engine import Engine, EngineStats, QueryOutcome, Snapshot
from repro.api.session import IngestSession
from repro.core.fragments import FragmentCacheStats
from repro.errors import (
    ConfigError,
    InvalidQueryError,
    ReproError,
    ShardTimeoutError,
    UnknownPointError,
    UnsupportedOperationError,
)
from repro.shard.engine import ShardedEngine, ShardedStats


def open(config: Optional[EngineConfig] = None, **knobs):
    """Open an :class:`Engine` — the library's front door.

    Accepts a prebuilt :class:`EngineConfig`, bare config knobs, or a
    config plus knob overrides (revalidated)::

        engine = repro.api.open(eps=3.0, minpts=5)            # knobs
        engine = repro.api.open(EngineConfig(eps=3.0, minpts=5))
        engine = repro.api.open(base_config, dim=5)           # override

    A config naming a shard count opens a :class:`ShardedEngine` (N
    per-shard engines behind one router, same serving surface)::

        engine = repro.api.open(eps=3.0, minpts=5, shards=4)

    Shadows the ``open`` builtin inside this namespace only — call it
    as ``repro.api.open``.
    """
    if "shards" in knobs:  # an explicit shards=None override un-shards
        sharded = knobs["shards"] is not None
    else:
        sharded = config is not None and config.shards is not None
    if sharded:
        return ShardedEngine.open(config, **knobs)
    return Engine.open(config, **knobs)


__all__ = [
    "ALGORITHM_CHOICES",
    "DEFAULT_FLUSH_THRESHOLD",
    "DEFAULT_SHARD_BLOCK",
    "SHARD_EXECUTOR_CHOICES",
    "SHARD_START_METHOD_CHOICES",
    "SHARD_TRANSPORT_CHOICES",
    "ConfigError",
    "Engine",
    "EngineConfig",
    "EngineStats",
    "FragmentCacheStats",
    "IngestSession",
    "InvalidQueryError",
    "QueryOutcome",
    "ReproError",
    "ShardTimeoutError",
    "ShardedEngine",
    "ShardedStats",
    "Snapshot",
    "UnknownPointError",
    "UnsupportedOperationError",
    "open",
]
