"""The :class:`Engine` facade — one stable entry point over the clusterers.

An engine owns a clusterer built from a validated
:class:`repro.api.EngineConfig` and exposes the full serving surface:

* ``ingest`` / ``insert`` / ``delete`` / ``delete_many`` — updates;
* ``cgroup_by`` / ``cgroup_by_many`` — the paper's C-group-by query,
  returned as an epoch-stamped :class:`QueryOutcome`;
* ``snapshot()`` / ``stats()`` — epoch-stamped full clustering and
  service counters;
* ``session()`` — a buffered :class:`repro.api.IngestSession` for
  pure-ingest phases.

The *epoch* is the number of update operations (points inserted plus
points deleted) the engine has applied; every outcome, snapshot and
stats record carries the epoch and the kernel-backend name it was
produced under, so results can always be attributed to a dataset
version and a compute substrate.

The engine deliberately satisfies the workload runner's
``DynamicClusterer`` and ``BulkDynamicClusterer`` protocols, so
:func:`repro.workload.runner.run_workload_engine` (and the plain
runners) can drive it interchangeably with a bare clusterer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro import kernels
from repro.api.config import EngineConfig
from repro.core.framework import CGroupByResult, Clustering
from repro.core.fragments import FragmentCacheStats
from repro.errors import ConfigError, UnsupportedOperationError


@dataclass(frozen=True)
class QueryOutcome:
    """An epoch-stamped C-group-by result.

    ``result`` is the canonical :class:`CGroupByResult` the underlying
    query engine produced — bit-identical to what a direct
    ``clusterer.cgroup_by`` call returns; ``epoch`` and ``backend``
    record the dataset version and kernel backend that answered.
    """

    result: CGroupByResult
    epoch: int
    backend: str

    @property
    def groups(self) -> List[List[int]]:
        return self.result.groups

    @property
    def noise(self) -> List[int]:
        return self.result.noise

    def group_sets(self) -> List[Set[int]]:
        return self.result.group_sets()

    def memberships(self) -> Dict[int, int]:
        return self.result.memberships()


@dataclass(frozen=True)
class Snapshot:
    """An epoch-stamped full clustering (the ``Q = P`` query)."""

    clustering: Clustering
    epoch: int
    backend: str
    size: int

    @property
    def clusters(self) -> List[Set[int]]:
        return self.clustering.clusters

    @property
    def noise(self) -> Set[int]:
        return self.clustering.noise

    @property
    def cluster_count(self) -> int:
        return self.clustering.cluster_count


@dataclass(frozen=True)
class EngineStats:
    """Epoch-stamped service counters of one engine."""

    points: int
    epoch: int
    backend: str
    algorithm: str
    config: EngineConfig
    cells: Optional[int] = None  # grid-based algorithms only
    # Incremental fragment cache counters (grid-based algorithms with
    # the cache enabled; None otherwise).
    fragment_cache: Optional[FragmentCacheStats] = None


class Engine:
    """Service facade over one configured clusterer.

    Build one with :meth:`Engine.open` (or :func:`repro.api.open`);
    the constructor itself is internal plumbing.  The underlying
    clusterer stays reachable through :attr:`raw` as a documented
    escape hatch for structure-level introspection.
    """

    def __init__(self, config: EngineConfig, clusterer, backend: str) -> None:
        self.config = config
        self._clusterer = clusterer
        self._backend = backend
        self._epoch = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, config: Optional[EngineConfig] = None, **knobs) -> "Engine":
        """Open an engine from a config (or from config knobs directly).

        ``Engine.open(EngineConfig(...))`` and
        ``Engine.open(eps=..., minpts=..., ...)`` are equivalent; mixing
        a config instance with extra knobs applies them via
        :meth:`EngineConfig.replace` (revalidated).  If the config names
        a kernel ``backend``, it is selected process-wide before the
        clusterer is built, exactly like the CLI's ``--backend`` flag.
        """
        try:
            if config is None:
                config = EngineConfig(**knobs)
            elif knobs:
                config = config.replace(**knobs)
        except TypeError as exc:
            # Unknown knob names surface as TypeError from the dataclass
            # constructor; fold them into the unified config failure.
            raise ConfigError(f"invalid engine configuration: {exc}") from None
        if config.backend is not None:
            kernels.use_backend(config.backend)
        return cls(config, config.build_clusterer(), kernels.active_backend_name())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def raw(self):
        """The underlying clusterer (documented escape hatch)."""
        return self._clusterer

    @property
    def epoch(self) -> int:
        """Update operations applied so far (the dataset version)."""
        return self._epoch

    @property
    def backend(self) -> str:
        """Resolved kernel-backend name the engine was opened under."""
        return self._backend

    def __len__(self) -> int:
        return len(self._clusterer)

    def __contains__(self, pid: int) -> bool:
        return pid in self._clusterer

    def point(self, pid: int) -> Sequence[float]:
        """Coordinates of a live point id."""
        return self._clusterer.point(pid)

    def is_core(self, pid: int) -> bool:
        return self._clusterer.is_core(pid)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float]) -> int:
        """Insert one point; returns its id."""
        pid = self._clusterer.insert(point)
        self._epoch += 1
        return pid

    def ingest(self, points: Iterable[Sequence[float]]) -> List[int]:
        """Bulk-insert a batch; returns the assigned ids in batch order.

        One vectorized ``insert_many`` call on the underlying clusterer
        — the engine adds nothing on this hot path beyond the epoch
        stamp.
        """
        batch = points if isinstance(points, list) else list(points)
        try:
            pids = self._clusterer.insert_many(batch)
        finally:
            # Epoch must never under-count: the sequential-fallback
            # baselines can leave a failed batch partially applied, so
            # a failed call still advances the dataset version (a bump
            # without a change is benign; the reverse is not).
            self._epoch += len(batch)
        return pids

    # Protocol alias: the workload runners drive ``insert_many``.
    insert_many = ingest

    def delete(self, pid: int) -> None:
        """Delete one point by id."""
        try:
            self._clusterer.delete(pid)
        except NotImplementedError as exc:
            raise self._insert_only_error("delete") from exc
        self._epoch += 1

    def delete_many(self, pids: Iterable[int]) -> None:
        """Bulk-delete a batch of point ids."""
        pid_list = list(pids)
        try:
            self._clusterer.delete_many(pid_list)
        except NotImplementedError as exc:
            raise self._insert_only_error("delete_many") from exc
        finally:
            # See ingest(): over-counting on failure keeps the epoch a
            # sound dataset-version token even for partially-applied
            # sequential-fallback batches.
            self._epoch += len(pid_list)

    def _insert_only_error(self, op: str) -> UnsupportedOperationError:
        return UnsupportedOperationError(
            f"{op} is not supported by the insert-only algorithm "
            f"{self.config.resolved_algorithm!r}; configure a "
            f"fully-dynamic algorithm ('full', 'double-approx', ...) "
            f"for deletions"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def cgroup_by(self, pids: Iterable[int]) -> QueryOutcome:
        """C-group-by over the given ids, epoch-stamped."""
        return QueryOutcome(
            result=self._clusterer.cgroup_by(pids),
            epoch=self._epoch,
            backend=self._backend,
        )

    def cgroup_by_many(self, pids: Iterable[int]) -> QueryOutcome:
        """Batched C-group-by (the vectorized query engine)."""
        return QueryOutcome(
            result=self._clusterer.cgroup_by_many(pids),
            epoch=self._epoch,
            backend=self._backend,
        )

    def snapshot(self) -> Snapshot:
        """Full clustering of the live dataset, epoch-stamped."""
        return Snapshot(
            clustering=self._clusterer.clusters(),
            epoch=self._epoch,
            backend=self._backend,
            size=len(self._clusterer),
        )

    def stats(self) -> EngineStats:
        """Current service counters, epoch-stamped."""
        fragment_stats = getattr(self._clusterer, "fragment_cache_stats", None)
        return EngineStats(
            points=len(self._clusterer),
            epoch=self._epoch,
            backend=self._backend,
            algorithm=self.config.resolved_algorithm,
            config=self.config,
            cells=getattr(self._clusterer, "cell_count", None),
            fragment_cache=(
                fragment_stats() if fragment_stats is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Shard-support surface (consumed by repro.shard)
    # ------------------------------------------------------------------

    def membership_fragments(self, pids: Iterable[int], trust=None):
        """Per-core-cell membership fragments of a query batch.

        The cell-keyed decomposition of :meth:`cgroup_by` that the shard
        router merges across engines; ``trust`` restricts which cells
        this engine may decide against (memberships toward untrusted
        cells come back as open probes).  See
        :meth:`repro.core.framework.GridClusterer.membership_fragments`.
        Only the grid-based algorithms expose it.
        """
        return self._fragment_source("membership_fragments")(pids, trust=trust)

    def gum_edge_fragment(self, trust=None):
        """This engine's share of the GUM edge set (plus boundary data).

        See :meth:`repro.core.framework.GridClusterer.gum_edge_fragment`.
        Only the grid-based algorithms expose it.
        """
        return self._fragment_source("gum_edge_fragment")(trust=trust)

    def _fragment_source(self, name: str):
        method = getattr(self._clusterer, name, None)
        if method is None:
            raise UnsupportedOperationError(
                f"{name} needs the grid-based cell registry, which "
                f"algorithm {self.config.resolved_algorithm!r} does not "
                f"maintain; configure a semi/full family algorithm"
            )
        return method

    # ------------------------------------------------------------------
    # Sessions and lifecycle
    # ------------------------------------------------------------------

    def session(self, flush_threshold: Optional[int] = None):
        """A buffered :class:`repro.api.IngestSession` over this engine.

        ``flush_threshold`` overrides the config's ingest flush policy
        for this session only.
        """
        from repro.api.session import IngestSession

        return IngestSession(self, flush_threshold=flush_threshold)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released this engine."""
        return self._closed

    def close(self) -> None:
        """Release the engine's structures; idempotent.

        Long-lived services (and the shard executors, which host one
        engine per shard) call this to drop the clusterer's buffers and
        index structures deterministically instead of waiting for GC.
        Using a closed engine is undefined; ``close`` may be called any
        number of times.
        """
        if self._closed:
            return
        self._closed = True
        self._clusterer = None

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(algorithm={self.config.algorithm!r}, "
            f"points={len(self)}, epoch={self._epoch}, "
            f"backend={self._backend!r})"
        )
