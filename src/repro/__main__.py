"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``bench``    — run one workload scenario through chosen algorithms
  and print the paper's metrics (average / max-update / query cost);
  ``--scenario sliding-window`` swaps the Section 8.1 mixed workload
  for the streaming sliding-window scenario family.
* ``serve``    — start the streaming cluster-analytics service
  (:mod:`repro.service`) over one engine (single or sharded).
* ``shard-worker`` — run one remote shard worker for the TCP executor
  (:mod:`repro.shard.rpc`); point an engine at it with
  ``shard_executor="tcp"`` and ``shard_workers=["host:port", ...]``.
* ``generate`` — write a seed-spreader dataset as CSV to stdout or a file.
* ``usec``     — run the Theorem 2 hardness reduction on random instances.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
from typing import List

import repro.api
from repro import kernels
from repro.api import EngineConfig
from repro.api.config import (
    ALGORITHM_CHOICES,
    SHARD_TRANSPORT_CHOICES,
    UNSHARDEABLE_ALGORITHMS,
)
from repro.errors import ConfigError
from repro.workload.config import MINPTS, RHO, backend_name, eps_for
from repro.workload.runner import run_workload_engine
from repro.workload.scenarios import (
    ARRIVAL_REGIMES,
    SCENARIO_CHOICES,
    run_sliding_window,
    sliding_window_scenario,
)
from repro.workload.seed_spreader import seed_spreader
from repro.workload.workload import generate_workload


def _engine_for(
    name: str,
    eps: float,
    minpts: int,
    rho: float,
    dim: int,
    backend: str,
    batch_size: int | None,
    shards: int | None = None,
    shard_executor: str | None = None,
    shard_transport: str | None = None,
    shard_call_timeout: float | None = None,
    fragment_cache: bool | None = None,
    shard_workers: tuple | None = None,
):
    """One benchmark engine: the CLI's bench path runs through repro.api."""
    # Exact and rho-free algorithms ignore --rho (matching the historical
    # CLI semantics); EngineConfig would reject the contradiction.
    if name.endswith("-exact") or name in ("incdbscan", "recompute"):
        rho = 0.0
    config = EngineConfig(
        eps=eps,
        minpts=minpts,
        algorithm=name,
        rho=rho,
        dim=dim,
        # Carried in the config (not only selected process-wide) so
        # shard worker processes resolve the same kernel backend.
        backend=backend,
        batch_size=batch_size,
        shards=shards,
        shard_executor=shard_executor if shards else None,
        shard_transport=shard_transport if shards else None,
        shard_call_timeout=shard_call_timeout if shards else None,
        fragment_cache=fragment_cache,
        shard_workers=shard_workers if shards else None,
    )
    return repro.api.open(config)


def _worker_list(spec: str | None) -> tuple | None:
    """Split a ``host:port,host:port`` CLI value (validation is the
    config's job, so the CLI reports the same message as the API)."""
    if spec is None:
        return None
    return tuple(part.strip() for part in spec.split(",") if part.strip())


def cmd_bench(args: argparse.Namespace) -> int:
    unknown = [a for a in args.algorithms if a not in ALGORITHM_CHOICES]
    if unknown:
        print(
            f"unknown algorithm(s): {', '.join(unknown)} "
            f"(choices: {', '.join(ALGORITHM_CHOICES)})",
            file=sys.stderr,
        )
        return 2
    if args.batch_size is not None and args.batch_size < 1:
        print(
            f"--batch-size must be >= 1, got {args.batch_size}",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None and args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.shards is not None:
        unshardeable = [
            a for a in args.algorithms if a in UNSHARDEABLE_ALGORITHMS
        ]
        if unshardeable:
            print(
                f"--shards requires grid-based algorithms; cannot shard: "
                f"{', '.join(unshardeable)}",
                file=sys.stderr,
            )
            return 2
    kernels.use_backend(args.backend)
    eps = args.eps if args.eps is not None else eps_for(args.dim, args.eps_per_d)
    # Resolve the shard transport once, up front, through the same config
    # validation the engines will use — so a contradictory combination
    # (e.g. --shard-transport with the serial executor) fails before any
    # workload is generated, with the config's own message.
    shard_transport = None
    if args.shards:
        try:
            probe = EngineConfig(
                eps=eps,
                minpts=args.minpts,
                dim=args.dim,
                shards=args.shards,
                shard_executor=args.shard_executor,
                shard_transport=args.shard_transport,
                shard_call_timeout=args.shard_call_timeout,
                shard_workers=_worker_list(args.shard_workers),
            )
        except ConfigError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        shard_transport = probe.resolved_shard_transport
    fragment_cache = (
        None if args.fragment_cache is None else args.fragment_cache == "on"
    )
    insert_fraction = 1.0 if args.semi else args.insert_fraction
    sliding = args.scenario == "sliding-window"
    if sliding and args.semi:
        print(
            "--semi (insert-only) conflicts with --scenario "
            "sliding-window: window expiry needs deletions",
            file=sys.stderr,
        )
        return 2
    workload = scenario = None
    if sliding:
        try:
            scenario = sliding_window_scenario(
                args.n,
                args.dim,
                capacity=args.window_capacity,
                arrival=args.arrival,
                seed=args.seed,
            )
        except ConfigError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    else:
        workload = generate_workload(
            args.n,
            args.dim,
            insert_fraction=insert_fraction,
            query_frequency=max(1, int(args.n * args.query_freq)),
            seed=args.seed,
        )
    as_text = args.format == "text"
    record = {
        "workload": {
            "n": args.n,
            "dim": args.dim,
            "eps": eps,
            "minpts": args.minpts,
            "rho": args.rho,
            "scenario": args.scenario,
            "insert_fraction": None if sliding else insert_fraction,
            "query_count": None if sliding else workload.query_count,
            "batch_size": args.batch_size,
            "seed": args.seed,
        },
        "backend": kernels.active_backend_name(),
        "shards": args.shards or 1,
        "transport": shard_transport,
        "algorithms": [],
    }
    if sliding:
        record["workload"]["arrival"] = scenario.arrival
        record["workload"]["window_capacity"] = scenario.capacity
        record["workload"]["batches"] = len(scenario.batches)
    if as_text:
        batch_note = (
            f", batched (insert_many/delete_many, batch={args.batch_size})"
            if args.batch_size
            else ""
        )
        shard_note = (
            f", sharded ({args.shards} shards, {args.shard_executor} "
            f"executor, {shard_transport} transport)"
            if args.shards
            else ""
        )
        if sliding:
            print(
                f"scenario: sliding-window ({scenario.arrival} arrivals), "
                f"N={args.n}, capacity={scenario.capacity}, "
                f"{len(scenario.batches)} ticks, d={args.dim}, eps={eps:g}, "
                f"MinPts={args.minpts}, rho={args.rho}{shard_note}, "
                f"backend={kernels.backend_summary()}"
            )
        else:
            print(
                f"workload: N={args.n} (%ins={insert_fraction:.3f}), d={args.dim}, "
                f"eps={eps:g}, MinPts={args.minpts}, rho={args.rho}, "
                f"{workload.query_count} queries{batch_note}{shard_note}, "
                f"backend={kernels.backend_summary()}"
            )
    for name in args.algorithms:
        if name.startswith("semi") and (sliding or insert_fraction < 1.0):
            reason = (
                "insert-only algorithm cannot expire a sliding window"
                if sliding
                else "semi-dynamic algorithm, workload has deletions"
            )
            if as_text:
                print(f"  {name:14s} skipped ({reason})")
            record["algorithms"].append({
                "name": name,
                "skipped": True,
                "reason": reason,
            })
            continue
        engine = _engine_for(
            name,
            eps,
            args.minpts,
            args.rho,
            args.dim,
            args.backend,
            args.batch_size,
            args.shards,
            args.shard_executor,
            args.shard_transport,
            args.shard_call_timeout,
            fragment_cache,
            _worker_list(args.shard_workers),
        )
        result = (
            run_sliding_window(engine, scenario)
            if sliding
            else run_workload_engine(engine, workload)
        )
        queries = result.query_costs()
        # Amortized per-operation numbers, so batched and sequential rows
        # are comparable (a batch entry covers many updates); identical to
        # the raw per-op values for sequential runs.
        per_update = result.per_update_costs()
        entry = {
            "name": name,
            "skipped": False,
            "avg_cost_per_op_us": result.average_cost_per_operation,
            "avg_update_us": (
                statistics.mean(per_update) if per_update else 0.0
            ),
            "max_update_us": max(per_update) if per_update else 0.0,
            "p50_update_us": result.per_update_percentile(50),
            "p99_update_us": result.per_update_percentile(99),
            "avg_query_us": statistics.mean(queries) if queries else 0.0,
            "p50_query_us": result.query_percentile(50),
            "p99_query_us": result.query_percentile(99),
            "update_count": len(per_update),
            "query_count": len(queries),
            "epoch": engine.epoch,
            "scenario": result.scenario or "mixed",
            "backend": result.backend,
            "shards": result.shards,
            "transport": result.transport,
            "restarts": result.restarts,
            "fragment_cache": engine.config.resolved_fragment_cache,
            "fragment_hits": result.fragment_hits,
            "fragment_misses": result.fragment_misses,
            "fragment_invalidations": result.fragment_invalidations,
            "config": engine.config.as_dict(),
        }
        if args.shards:
            engine.close()
        record["algorithms"].append(entry)
        if as_text:
            # The text row is a projection of the same record entry, so
            # the two formats can never drift apart.
            print(
                f"  {name:14s} avg {entry['avg_cost_per_op_us']:10.1f} us/op   "
                f"max-update {entry['max_update_us']:12.1f} us   "
                f"p99-update {entry['p99_update_us']:12.1f} us   "
                f"avg-query {entry['avg_query_us']:10.1f} us   "
                f"p99-query {entry['p99_query_us']:10.1f} us"
            )
    if not as_text:
        print(json.dumps(record, indent=2))
    return 0


async def _serve_until_shutdown(service, host: str, port: int) -> int:
    """Bind, announce, block until shutdown is requested, then drain."""
    import signal

    await service.start(host, port)
    bound_host, bound_port = service.address
    mode = (
        f"sliding-window (capacity {service.window.capacity})"
        if service.windowed
        else "mixed ingest/delete/query"
    )
    limits = service.limits
    print(
        f"serving on {bound_host}:{bound_port} — "
        f"{service.engine.config.resolved_algorithm} engine, {mode}; "
        f"max {limits.max_sessions} sessions, queue depth "
        f"{limits.queue_depth}, {limits.max_inflight} in-flight ops; "
        f"ctrl-c drains and exits",
        flush=True,
    )
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, service.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix event loops: ctrl-c raises KeyboardInterrupt
    try:
        await service.wait_shutdown()
    finally:
        print("draining sessions ...", flush=True)
        await service.aclose()
        stats = service.stats
        print(
            f"drained {stats.drained_sessions} session(s) "
            f"({stats.failed_drains} failed); "
            f"{stats.ops_accepted} ops accepted, "
            f"{stats.ops_rejected} rejected, {stats.ops_failed} failed",
            flush=True,
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.service import ClusterService, ServiceLimits

    kernels.use_backend(args.backend)
    eps = args.eps if args.eps is not None else eps_for(args.dim, args.eps_per_d)
    engine = None
    try:
        engine = _engine_for(
            args.algorithm,
            eps,
            args.minpts,
            args.rho,
            args.dim,
            args.backend,
            None,
            args.shards,
            args.shard_executor,
            args.shard_transport,
            args.shard_call_timeout,
            None,
            _worker_list(args.shard_workers),
        )
        limits = ServiceLimits(
            max_sessions=args.max_sessions,
            queue_depth=args.queue_depth,
            max_inflight=args.max_inflight,
            max_write_buffer=args.max_write_buffer,
            drain_timeout=args.drain_timeout,
        )
        service = ClusterService(
            engine,
            limits=limits,
            window_capacity=args.window_capacity,
            allow_shutdown=args.allow_shutdown_op,
        )
    except ReproError as exc:
        if engine is not None:
            engine.close()
        print(str(exc), file=sys.stderr)
        return 2
    try:
        return asyncio.run(_serve_until_shutdown(service, args.host, args.port))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    finally:
        engine.close()


def cmd_shard_worker(args: argparse.Namespace) -> int:
    from repro.shard.rpc import serve_worker

    try:
        serve_worker(args.host, args.port, once=args.once)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    except OSError as exc:
        print(f"cannot serve on {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    points = seed_spreader(args.n, args.dim, seed=args.seed)
    out = open(args.output, "w") if args.output else sys.stdout
    try:
        for p in points:
            out.write(",".join(f"{x:.6f}" for x in p) + "\n")
    finally:
        if args.output:
            out.close()
    if args.output:
        print(f"wrote {len(points)} points to {args.output}")
    return 0


def cmd_usec(args: argparse.Namespace) -> int:
    from repro.hardness.reduction import (
        make_reduction_clusterer,
        solve_usec_ls_with_clusterer,
    )
    from repro.hardness.usec import random_usec_ls_instance, usec_ls_brute

    mismatches = 0
    for seed in range(args.instances):
        inst = random_usec_ls_instance(
            args.n, args.n, args.dim, extent=3.0, seed=seed
        )
        got = solve_usec_ls_with_clusterer(
            inst.red, inst.blue, make_reduction_clusterer
        )
        want = usec_ls_brute(inst.red, inst.blue)
        status = "OK" if got == want else "MISMATCH"
        mismatches += got != want
        print(
            f"instance {seed}: clustering={'yes' if got else 'no'} "
            f"brute={'yes' if want else 'no'} [{status}]"
        )
    print(f"{args.instances - mismatches}/{args.instances} agree")
    return 1 if mismatches else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Dynamic density based clustering (Gan & Tao, SIGMOD 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="run a workload through algorithms")
    bench.add_argument("--n", type=int, default=2000, help="number of updates")
    bench.add_argument("--dim", type=int, default=2)
    bench.add_argument("--eps", type=float, default=None, help="absolute eps")
    bench.add_argument(
        "--eps-per-d", type=int, default=100, help="eps = eps_per_d * dim"
    )
    bench.add_argument("--minpts", type=int, default=MINPTS)
    bench.add_argument("--rho", type=float, default=RHO)
    bench.add_argument(
        "--insert-fraction", type=float, default=5 / 6, help="%%ins of Table 2"
    )
    bench.add_argument(
        "--query-freq", type=float, default=0.05, help="queries per update"
    )
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument(
        "--semi", action="store_true", help="insert-only workload"
    )
    bench.add_argument(
        "--scenario",
        choices=SCENARIO_CHOICES,
        default="mixed",
        help="workload family: the paper's Section 8.1 mixed "
        "insert/delete/query sequence (mixed), or the streaming "
        "sliding-window scenario — per-tick arrival batches through a "
        "WindowedEngine that expires the oldest points via bulk "
        "delete_many, with periodic C-group-by barriers over the live "
        "window",
    )
    bench.add_argument(
        "--window-capacity",
        type=int,
        default=None,
        help="sliding-window scenario: keep this many most-recent "
        "points (default: n // 4, so the window turns over ~4x per run)",
    )
    bench.add_argument(
        "--arrival",
        choices=ARRIVAL_REGIMES,
        default="burst",
        help="sliding-window arrival regime: bursty tick sizes from a "
        "quiet/hot geometric mixture (burst) or fixed ticks whose "
        "cluster density evolves over the stream (evolving)",
    )
    bench.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="drive the bulk-update engine: coalesce update runs into "
        "insert_many/delete_many calls of at most this many points",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve through a sharded deployment: partition the cell "
        "registry across this many per-shard engines behind one router "
        "(grid-based algorithms only)",
    )
    bench.add_argument(
        "--shard-executor",
        choices=("serial", "process", "tcp"),
        default="serial",
        help="where shard engines live: in-process (serial), one "
        "worker process per shard (process), or one remote "
        "'python -m repro shard-worker' per shard (tcp, with "
        "--shard-workers); only meaningful with --shards",
    )
    bench.add_argument(
        "--shard-workers",
        type=str,
        default=None,
        help="comma-separated host:port worker addresses for the tcp "
        "executor, one per shard (default: REPRO_SHARD_WORKERS)",
    )
    bench.add_argument(
        "--shard-transport",
        choices=SHARD_TRANSPORT_CHOICES,
        default=None,
        help="process-executor payload plane: pickle whole messages "
        "through the pipe, or move bulk arrays through pooled shared "
        "memory (default: REPRO_SHARD_TRANSPORT or shm); only "
        "meaningful with --shards --shard-executor process",
    )
    bench.add_argument(
        "--shard-call-timeout",
        type=float,
        default=None,
        help="deadline in seconds on every shard-worker reply wait: a "
        "hung worker fails with ShardTimeoutError (and is restarted by "
        "the supervisor) instead of hanging the run (default: "
        "REPRO_SHARD_CALL_TIMEOUT or 60); only meaningful with --shards "
        "--shard-executor process",
    )
    bench.add_argument(
        "--fragment-cache",
        choices=("on", "off"),
        default=None,
        help="incremental fragment cache of the grid clusterers: "
        "memoize per-cell barrier fragments with cell-level "
        "invalidation (default: REPRO_FRAGMENT_CACHE or on; "
        "hit/miss/invalidation counters land in the result record)",
    )
    bench.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable rows (text) or one JSON "
        "record with the full metrics (avg/max/p50/p99 update and "
        "query costs, backend, per-algorithm engine config)",
    )
    bench.add_argument(
        "--backend",
        choices=kernels.available_backends(),
        default=backend_name(),
        help="compute-kernel backend (default: REPRO_BACKEND or 'auto'; "
        "'auto' picks the accelerated backend, falling back per kernel "
        "to the numpy reference)",
    )
    bench.add_argument(
        "algorithms",
        nargs="*",
        default=["double-approx", "incdbscan"],
        help=f"algorithms to run (choices: {', '.join(ALGORITHM_CHOICES)})",
    )
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="start the streaming cluster-analytics service "
        "(JSON-lines over TCP; see repro.service)",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=7171,
        help="TCP port to bind (0 binds an ephemeral port, announced "
        "on stdout)",
    )
    serve.add_argument(
        "--algorithm",
        choices=ALGORITHM_CHOICES + ("semi", "full"),
        default="full",
        help="the engine the service multiplexes sessions onto "
        "(family aliases resolved by --rho)",
    )
    serve.add_argument("--dim", type=int, default=2)
    serve.add_argument("--eps", type=float, default=None, help="absolute eps")
    serve.add_argument(
        "--eps-per-d", type=int, default=100, help="eps = eps_per_d * dim"
    )
    serve.add_argument("--minpts", type=int, default=MINPTS)
    serve.add_argument("--rho", type=float, default=RHO)
    serve.add_argument(
        "--backend",
        choices=kernels.available_backends(),
        default=backend_name(),
        help="compute-kernel backend (default: REPRO_BACKEND or 'auto')",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve a sharded deployment: one engine per shard behind "
        "the router (grid-based algorithms only)",
    )
    serve.add_argument(
        "--shard-executor",
        choices=("serial", "process", "tcp"),
        default="serial",
        help="where shard engines live; only meaningful with --shards",
    )
    serve.add_argument(
        "--shard-workers",
        type=str,
        default=None,
        help="comma-separated host:port worker addresses for the tcp "
        "executor, one per shard (default: REPRO_SHARD_WORKERS)",
    )
    serve.add_argument(
        "--shard-transport",
        choices=SHARD_TRANSPORT_CHOICES,
        default=None,
        help="process-executor payload plane; only meaningful with "
        "--shards --shard-executor process",
    )
    serve.add_argument(
        "--shard-call-timeout",
        type=float,
        default=None,
        help="deadline in seconds on shard-worker replies; only "
        "meaningful with --shards --shard-executor process",
    )
    serve.add_argument(
        "--window-capacity",
        type=int,
        default=None,
        help="serve in sliding-window mode: keep this many most-recent "
        "points, expiring the oldest through bulk delete_many; raw "
        "ingest/delete ops are rejected (405) in favor of window_append",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="concurrent client connections admitted; excess "
        "connections are rejected with a 429 (default: 64)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="operations one session may have queued before new ops "
        "get a 429 (default: 32)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="operations queued service-wide across all sessions "
        "before new ops get a 429 (default: 256)",
    )
    serve.add_argument(
        "--max-write-buffer",
        type=int,
        default=1 << 20,
        help="bytes of un-read response data one connection may "
        "accumulate before the service aborts it (default: 1 MiB)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds graceful shutdown waits for one session's queue "
        "to empty before failing the session (default: 30)",
    )
    serve.add_argument(
        "--allow-shutdown-op",
        action="store_true",
        help="let clients stop the service with a 'shutdown' op "
        "(useful for scripted smoke tests; off by default)",
    )
    serve.set_defaults(func=cmd_serve)

    worker = sub.add_parser(
        "shard-worker",
        help="run one remote shard worker for the tcp executor "
        "(serves ShardBackend sessions over a socket; see "
        "repro.shard.rpc)",
    )
    worker.add_argument("--host", type=str, default="127.0.0.1")
    worker.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to bind (0 binds an ephemeral port, announced "
        "on stdout)",
    )
    worker.add_argument(
        "--once",
        action="store_true",
        help="exit after serving one engine session (scripted tests)",
    )
    worker.set_defaults(func=cmd_shard_worker)

    gen = sub.add_parser("generate", help="emit a seed-spreader dataset (CSV)")
    gen.add_argument("--n", type=int, default=10000)
    gen.add_argument("--dim", type=int, default=2)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", type=str, default=None)
    gen.set_defaults(func=cmd_generate)

    usec = sub.add_parser("usec", help="run the Theorem 2 hardness reduction")
    usec.add_argument("--n", type=int, default=12, help="points per color")
    usec.add_argument("--dim", type=int, default=2)
    usec.add_argument("--instances", type=int, default=5)
    usec.set_defaults(func=cmd_usec)
    return parser


def main(argv: List[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
