"""Analysis utilities on top of the dynamic clusterers.

* :class:`ClusterTracker` — snapshot-to-snapshot cluster evolution
  (appear / vanish / grow / shrink / merge / split), the bookkeeping
  behind narratives like the paper's Figure 1.
* :func:`cluster_stats` — size distribution and noise summary of one
  clustering.
* :class:`SlidingWindowClusterer` / :class:`WindowedEngine` — sliding
  windows over the fully-dynamic path: the per-point wrapper over a
  bare clusterer, and the engine-native bulk window the streaming
  service and the ``sliding-window`` bench scenario drive.
"""

from repro.analysis.tracker import ClusterEvent, ClusterTracker, cluster_stats
from repro.analysis.window import SlidingWindowClusterer, WindowedEngine

__all__ = [
    "ClusterEvent",
    "ClusterTracker",
    "SlidingWindowClusterer",
    "WindowedEngine",
    "cluster_stats",
]
