"""Analysis utilities on top of the dynamic clusterers.

* :class:`ClusterTracker` — snapshot-to-snapshot cluster evolution
  (appear / vanish / grow / shrink / merge / split), the bookkeeping
  behind narratives like the paper's Figure 1.
* :func:`cluster_stats` — size distribution and noise summary of one
  clustering.
"""

from repro.analysis.tracker import ClusterEvent, ClusterTracker, cluster_stats
from repro.analysis.window import SlidingWindowClusterer

__all__ = [
    "ClusterEvent",
    "ClusterTracker",
    "SlidingWindowClusterer",
    "cluster_stats",
]
