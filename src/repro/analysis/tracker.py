"""Cluster-evolution tracking between clustering snapshots.

The paper's Figure 1 narrative — insertions creating a "connection path"
that merges clusters, deletions breaking one up — is about *events* in the
cluster structure.  :class:`ClusterTracker` turns consecutive clusterings
into such events by overlap matching:

* a current cluster inheriting points from two or more previous clusters
  is a **merge**;
* two or more current clusters inheriting from one previous cluster form
  a **split**;
* clusters with no inherited points **appear**; previous clusters whose
  points all left the clustering **vanish**;
* one-to-one matches with changed size **grow**/**shrink**.

Matching is by shared point ids, so deleted points simply stop counting
and inserted points only affect the cluster they land in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.core.framework import Clustering


@dataclass(frozen=True)
class ClusterEvent:
    """One structural change between consecutive snapshots."""

    kind: str  # "appear" | "vanish" | "merge" | "split" | "grow" | "shrink"
    #: Clusters of the previous snapshot involved (as point-id sets).
    before: Sequence[FrozenSet[int]] = ()
    #: Clusters of the current snapshot involved.
    after: Sequence[FrozenSet[int]] = ()

    def __str__(self) -> str:
        b = "+".join(str(len(c)) for c in self.before) or "-"
        a = "+".join(str(len(c)) for c in self.after) or "-"
        return f"{self.kind}({b} -> {a})"


@dataclass
class ClusterStats:
    """Summary of one clustering snapshot."""

    cluster_count: int
    sizes: List[int]
    noise_count: int

    @property
    def largest(self) -> int:
        return max(self.sizes) if self.sizes else 0

    @property
    def clustered_points(self) -> int:
        return sum(self.sizes)


def cluster_stats(clustering: Clustering) -> ClusterStats:
    """Size distribution of a clustering."""
    sizes = sorted((len(c) for c in clustering.clusters), reverse=True)
    return ClusterStats(
        cluster_count=len(sizes), sizes=sizes, noise_count=len(clustering.noise)
    )


class ClusterTracker:
    """Feed clustering snapshots; read back evolution events.

    Usage::

        tracker = ClusterTracker()
        tracker.observe(algo.clusters())
        ... updates ...
        events = tracker.observe(algo.clusters())
    """

    def __init__(self) -> None:
        self._previous: Optional[List[FrozenSet[int]]] = None

    def observe(self, clustering: Clustering) -> List[ClusterEvent]:
        """Record a snapshot; return events relative to the previous one."""
        current = [frozenset(c) for c in clustering.clusters]
        previous = self._previous
        self._previous = current
        if previous is None:
            return [ClusterEvent("appear", after=(c,)) for c in current]
        return _diff(previous, current)


def _diff(
    previous: List[FrozenSet[int]], current: List[FrozenSet[int]]
) -> List[ClusterEvent]:
    # Bipartite overlap edges between previous and current clusters.
    overlaps: Dict[int, Set[int]] = {}  # prev index -> curr indices
    reverse: Dict[int, Set[int]] = {}  # curr index -> prev indices
    point_home: Dict[int, List[int]] = {}
    for ci, cluster in enumerate(current):
        for p in cluster:
            point_home.setdefault(p, []).append(ci)
    for pi, cluster in enumerate(previous):
        for p in cluster:
            for ci in point_home.get(p, ()):
                overlaps.setdefault(pi, set()).add(ci)
                reverse.setdefault(ci, set()).add(pi)

    events: List[ClusterEvent] = []
    # Connected components of the overlap graph classify the events.
    seen_prev: Set[int] = set()
    seen_curr: Set[int] = set()
    for pi in range(len(previous)):
        if pi in seen_prev or pi not in overlaps:
            continue
        comp_prev = {pi}
        comp_curr: Set[int] = set()
        frontier = [("p", pi)]
        while frontier:
            side, idx = frontier.pop()
            if side == "p":
                for ci in overlaps.get(idx, ()):
                    if ci not in comp_curr:
                        comp_curr.add(ci)
                        frontier.append(("c", ci))
            else:
                for pj in reverse.get(idx, ()):
                    if pj not in comp_prev:
                        comp_prev.add(pj)
                        frontier.append(("p", pj))
        seen_prev |= comp_prev
        seen_curr |= comp_curr
        before = tuple(previous[i] for i in sorted(comp_prev))
        after = tuple(current[i] for i in sorted(comp_curr))
        if len(comp_prev) == 1 and len(comp_curr) == 1:
            old, new = before[0], after[0]
            if len(new) > len(old):
                events.append(ClusterEvent("grow", before, after))
            elif len(new) < len(old):
                events.append(ClusterEvent("shrink", before, after))
            # identical size with same identity: no event
            elif old != new:
                events.append(ClusterEvent("grow", before, after))
        elif len(comp_prev) == 1:
            events.append(ClusterEvent("split", before, after))
        elif len(comp_curr) == 1:
            events.append(ClusterEvent("merge", before, after))
        else:
            # Simultaneous merge+split (rare): report as one merge event
            # followed by one split for readability.
            events.append(ClusterEvent("merge", before, after))
            events.append(ClusterEvent("split", before, after))

    for pi, cluster in enumerate(previous):
        if pi not in seen_prev and pi not in overlaps:
            events.append(ClusterEvent("vanish", before=(cluster,)))
    for ci, cluster in enumerate(current):
        if ci not in seen_curr and ci not in reverse:
            events.append(ClusterEvent("appear", after=(cluster,)))
    return events
