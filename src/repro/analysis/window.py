"""Sliding-window clustering on top of the fully-dynamic algorithm.

A common deployment of dynamic clustering (and the paper's motivating
"data updates" setting): keep only the most recent ``capacity`` points,
expiring the oldest on every arrival.  Each arrival is one insertion plus
at most one deletion — a perfectly balanced fully-dynamic workload.

Two layers live here:

* :class:`SlidingWindowClusterer` — the original per-point wrapper over
  a bare :class:`FullyDynamicClusterer` (one insert + at most one
  delete per arrival);
* :class:`WindowedEngine` — the engine-native sliding window: batches
  of arrivals land through the vectorized ``ingest`` path of a
  :class:`repro.api.Engine` (or :class:`repro.shard.ShardedEngine`) and
  every point evicted by the capacity bound is expired in one bulk
  ``delete_many`` through the fully-dynamic path.  This is the layer
  the streaming service (:mod:`repro.service`) and the
  ``bench --scenario sliding-window`` CLI drive.

Expiry through ``WindowedEngine`` is *defined* to be equivalent to an
explicit ``delete_many`` of the same (oldest-first) ids issued by the
caller — the window keeps FIFO bookkeeping, nothing more — and the test
suite pins that equivalence bit-for-bit at ``rho = 0``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

from repro.core.framework import CGroupByResult, Clustering
from repro.core.fullydynamic import FullyDynamicClusterer
from repro.errors import ConfigError, UnsupportedOperationError


class SlidingWindowClusterer:
    """FIFO window of the last ``capacity`` points, clustered dynamically."""

    def __init__(
        self,
        capacity: int,
        eps: float,
        minpts: int,
        rho: float = 0.001,
        dim: int = 2,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._algo = FullyDynamicClusterer(eps, minpts, rho=rho, dim=dim)
        self._window: Deque[int] = deque()

    def __len__(self) -> int:
        return len(self._window)

    @property
    def clusterer(self) -> FullyDynamicClusterer:
        """The underlying fully-dynamic clusterer (read-only use)."""
        return self._algo

    def append(self, point: Sequence[float]) -> int:
        """Insert a new point, expiring the oldest if over capacity.

        Returns the new point's id.
        """
        pid = self._algo.insert(point)
        self._window.append(pid)
        if len(self._window) > self.capacity:
            self._algo.delete(self._window.popleft())
        return pid

    def extend(self, points: Iterable[Sequence[float]]) -> None:
        for p in points:
            self.append(p)

    def oldest(self) -> Optional[int]:
        return self._window[0] if self._window else None

    def newest(self) -> Optional[int]:
        return self._window[-1] if self._window else None

    def ids(self):
        """Live point ids, oldest first."""
        return iter(self._window)

    def cgroup_by(self, pids) -> CGroupByResult:
        return self._algo.cgroup_by(pids)

    def cgroup_by_many(self, pids) -> CGroupByResult:
        """Batched C-group-by through the underlying vectorized engine."""
        return self._algo.cgroup_by_many(pids)

    def clusters(self) -> Clustering:
        return self._algo.clusters()

    def same_cluster(self, pid_a: int, pid_b: int) -> bool:
        return self._algo.same_cluster(pid_a, pid_b)


class WindowedEngine:
    """Sliding window of the last ``capacity`` points over an engine.

    Wraps any object with the :class:`repro.api.Engine` serving surface
    (``ingest`` / ``delete_many`` / ``cgroup_by_many`` / ``snapshot`` /
    ``stats`` and an ``EngineConfig`` at ``.config``) — a single engine
    or a sharded one.  Arrivals land through the vectorized bulk insert
    path; everything the capacity bound evicts is expired oldest-first
    in one bulk ``delete_many``, so a windowed stream is a perfectly
    balanced fully-dynamic workload end to end.

    The window only keeps FIFO id bookkeeping: a
    ``WindowedEngine.append_many(batch)`` is exactly
    ``engine.ingest(batch)`` followed by ``engine.delete_many(expired)``
    with the oldest ids, nothing else, so windowed results are
    bit-identical to the caller doing explicit expiry at ``rho = 0``.
    A batch larger than the capacity is legal — the overflow expires
    points of the batch itself (inserted, then immediately deleted),
    matching what explicit expiry would do.
    """

    def __init__(self, engine, capacity: int) -> None:
        if (
            not isinstance(capacity, int)
            or isinstance(capacity, bool)
            or capacity < 1
        ):
            raise ConfigError(
                f"window capacity must be a positive integer, got "
                f"{capacity!r}"
            )
        if engine.config.insert_only:
            raise UnsupportedOperationError(
                f"a sliding window expires points through delete_many, "
                f"which the insert-only algorithm "
                f"{engine.config.resolved_algorithm!r} does not support; "
                f"configure a fully-dynamic algorithm ('full', "
                f"'double-approx', ...)"
            )
        self.capacity = capacity
        self._engine = engine
        self._window: Deque[int] = deque()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def engine(self):
        """The wrapped engine (documented escape hatch)."""
        return self._engine

    @property
    def epoch(self) -> int:
        return self._engine.epoch

    def __len__(self) -> int:
        return len(self._window)

    def __contains__(self, pid: int) -> bool:
        return pid in self._engine

    def ids(self) -> List[int]:
        """Live point ids, oldest first."""
        return list(self._window)

    def oldest(self) -> Optional[int]:
        return self._window[0] if self._window else None

    def newest(self) -> Optional[int]:
        return self._window[-1] if self._window else None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def append(self, point: Sequence[float]) -> int:
        """Insert one point (expiring the oldest if over capacity)."""
        pids, _ = self.append_many([point])
        return pids[0]

    def append_many(
        self, points: Iterable[Sequence[float]]
    ) -> Tuple[List[int], List[int]]:
        """Bulk-insert a batch, expiring everything over capacity.

        Returns ``(pids, expired)``: the ids assigned to the batch (in
        batch order) and the ids expired oldest-first by the capacity
        bound (empty while the window is still filling).
        """
        batch = points if isinstance(points, list) else list(points)
        pids = self._engine.ingest(batch)
        self._window.extend(pids)
        expired: List[int] = []
        while len(self._window) > self.capacity:
            expired.append(self._window.popleft())
        if expired:
            self._engine.delete_many(expired)
        return pids, expired

    # ------------------------------------------------------------------
    # Queries (engine pass-throughs, epoch-stamped by the engine)
    # ------------------------------------------------------------------

    def cgroup_by(self, pids: Iterable[int]):
        return self._engine.cgroup_by(pids)

    def cgroup_by_many(self, pids: Iterable[int]):
        return self._engine.cgroup_by_many(pids)

    def snapshot(self):
        return self._engine.snapshot()

    def stats(self):
        return self._engine.stats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the wrapped engine; idempotent (the engine's own)."""
        self._engine.close()

    def __enter__(self) -> "WindowedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowedEngine(capacity={self.capacity}, "
            f"live={len(self._window)}, epoch={self._engine.epoch})"
        )
