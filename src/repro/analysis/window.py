"""Sliding-window clustering on top of the fully-dynamic algorithm.

A common deployment of dynamic clustering (and the paper's motivating
"data updates" setting): keep only the most recent ``capacity`` points,
expiring the oldest on every arrival.  Each arrival is one insertion plus
at most one deletion — a perfectly balanced fully-dynamic workload.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional, Sequence

from repro.core.framework import CGroupByResult, Clustering
from repro.core.fullydynamic import FullyDynamicClusterer


class SlidingWindowClusterer:
    """FIFO window of the last ``capacity`` points, clustered dynamically."""

    def __init__(
        self,
        capacity: int,
        eps: float,
        minpts: int,
        rho: float = 0.001,
        dim: int = 2,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._algo = FullyDynamicClusterer(eps, minpts, rho=rho, dim=dim)
        self._window: Deque[int] = deque()

    def __len__(self) -> int:
        return len(self._window)

    @property
    def clusterer(self) -> FullyDynamicClusterer:
        """The underlying fully-dynamic clusterer (read-only use)."""
        return self._algo

    def append(self, point: Sequence[float]) -> int:
        """Insert a new point, expiring the oldest if over capacity.

        Returns the new point's id.
        """
        pid = self._algo.insert(point)
        self._window.append(pid)
        if len(self._window) > self.capacity:
            self._algo.delete(self._window.popleft())
        return pid

    def extend(self, points: Iterable[Sequence[float]]) -> None:
        for p in points:
            self.append(p)

    def oldest(self) -> Optional[int]:
        return self._window[0] if self._window else None

    def newest(self) -> Optional[int]:
        return self._window[-1] if self._window else None

    def ids(self):
        """Live point ids, oldest first."""
        return iter(self._window)

    def cgroup_by(self, pids) -> CGroupByResult:
        return self._algo.cgroup_by(pids)

    def cgroup_by_many(self, pids) -> CGroupByResult:
        """Batched C-group-by through the underlying vectorized engine."""
        return self._algo.cgroup_by_many(pids)

    def clusters(self) -> Clustering:
        return self._algo.clusters()

    def same_cluster(self, pid_a: int, pid_b: int) -> bool:
        return self._algo.same_cluster(pid_a, pid_b)
