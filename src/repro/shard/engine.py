"""The :class:`ShardedEngine` facade — N engines behind one router.

Exposes the exact serving surface of :class:`repro.api.Engine`
(``ingest`` / ``insert`` / ``delete`` / ``delete_many``, ``cgroup_by``
/ ``cgroup_by_many`` as epoch-stamped :class:`QueryOutcome`,
``snapshot()`` / ``stats()`` / ``session()``), so the workload runners,
the CLI and :class:`repro.api.IngestSession` drive it interchangeably
with a single engine — a session over a sharded engine buffers exactly
as before and its query barrier flushes through the router, making the
flush atomic across every shard (validation rejects a bad run before
any shard mutates).

The *epoch* is the number of global update operations, identical in
meaning to the single engine's; per-shard engine epochs are internal
consistency tokens the router checks at every merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro import kernels
from repro.api.config import SHARD_EXECUTOR_CHOICES, EngineConfig
from repro.api.engine import EngineStats, QueryOutcome, Snapshot
from repro.core.fragments import FragmentCacheStats
from repro.errors import ConfigError, UnknownPointError, UnsupportedOperationError
from repro.shard.executors import ProcessShardExecutor, SerialShardExecutor
from repro.shard.router import ShardRouter
from repro.shard.rpc import TcpShardExecutor
from repro.shard.supervisor import ShardSupervisor


@dataclass(frozen=True)
class ShardedStats:
    """Epoch-stamped service counters of a sharded deployment.

    ``points`` counts live *global* points; ``replicas`` counts the
    points materialized across shards including halo copies, so
    ``replicas / points`` is the replication factor the halo costs.
    ``per_shard`` holds each shard engine's own :class:`EngineStats`.
    ``restarts`` counts supervised worker recoveries (kill + respawn +
    journal replay) performed over the deployment's lifetime — 0 for
    the serial executor and for a process deployment that never lost a
    worker.  ``fragment_cache`` sums the per-shard incremental
    fragment-cache counters (``None`` when the cache is disabled).
    """

    points: int
    epoch: int
    backend: str
    algorithm: str
    config: EngineConfig
    shards: int
    replicas: int
    per_shard: Tuple[EngineStats, ...]
    restarts: int = 0
    fragment_cache: Optional[FragmentCacheStats] = None


class ShardedEngine:
    """Service facade over a sharded deployment (see module docstring)."""

    def __init__(self, config: EngineConfig, router: ShardRouter, backend: str) -> None:
        self.config = config
        self._router = router
        self._backend = backend
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, config: Optional[EngineConfig] = None, **knobs) -> "ShardedEngine":
        """Open a sharded engine from a config with ``shards`` set.

        Mirrors :meth:`repro.api.Engine.open` (and is what
        :func:`repro.api.open` dispatches to when the config names a
        shard count): the kernel backend is selected process-wide first,
        then the executor named by ``shard_executor`` spins up one
        engine per shard.
        """
        try:
            if config is None:
                config = EngineConfig(**knobs)
            elif knobs:
                config = config.replace(**knobs)
        except TypeError as exc:
            raise ConfigError(f"invalid engine configuration: {exc}") from None
        if not config.shards:
            raise ConfigError(
                f"ShardedEngine needs shards >= 1 in its config, got "
                f"{config.shards!r}; use repro.api.Engine for a single "
                f"engine"
            )
        if config.backend is not None:
            kernels.use_backend(config.backend)
        executor_kind = config.resolved_shard_executor
        if executor_kind == "process":
            # Worker processes can die or hang: supervise them with the
            # journal/restart/replay layer (invisible to the router;
            # shard_max_restarts=0 makes every failure fatal again).
            executor = ShardSupervisor(
                ProcessShardExecutor(config, config.shards), config
            )
        elif executor_kind == "tcp":
            # Remote workers fail in the same ways local ones do (plus
            # the network); the same supervisor reconnects and replays.
            executor = ShardSupervisor(
                TcpShardExecutor(config, config.shards), config
            )
        else:
            executor = SerialShardExecutor(config, config.shards)
        return cls(
            config,
            ShardRouter(config, executor),
            kernels.active_backend_name(),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def raw(self) -> ShardRouter:
        """The router (the sharded twin of ``Engine.raw``)."""
        return self._router

    @property
    def shards(self) -> int:
        return self._router.shard_count

    @property
    def epoch(self) -> int:
        """Global update operations applied so far (the dataset version)."""
        return self._router.epoch

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def restarts(self) -> int:
        """Supervised worker recoveries performed so far (0 when serial)."""
        return getattr(self._router.executor, "restarts", 0)

    def __len__(self) -> int:
        return len(self._router)

    def __contains__(self, pid: int) -> bool:
        return pid in self._router

    def point(self, pid: int) -> Sequence[float]:
        """Coordinates of a live global point id."""
        return self._router.point(pid)

    def is_core(self, pid: int) -> bool:
        return self._router.is_core(pid)

    @property
    def ownership_version(self) -> int:
        """Current version of the block→shard ownership table."""
        return self._router.ownership_version

    def rebalance(self, block: Sequence[int], dest: int) -> int:
        """Migrate one ownership block to shard ``dest`` online.

        Transfers the block's influence set, broadcasts the new
        versioned table to every shard, then flips the router — callers
        observe one atomic ownership change (and every in-flight call
        routed under the old version is rejected with
        :class:`repro.errors.StaleOwnershipError` rather than merging
        mixed ownership).  Returns the new table version.
        """
        return self._router.rebalance(tuple(block), dest)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float]) -> int:
        """Insert one point; returns its global id."""
        return self._router.insert_many([point])[0]

    def ingest(self, points: Iterable[Sequence[float]]) -> List[int]:
        """Bulk-insert a batch; one routing pass, one fan-out."""
        return self._router.insert_many(points)

    # Protocol alias: the workload runners drive ``insert_many``.
    insert_many = ingest

    def delete(self, pid: int) -> None:
        """Delete one point by global id."""
        if self.config.insert_only:
            raise self._insert_only_error("delete")
        if pid not in self._router:
            # Scalar-path message parity with the single engine.
            raise UnknownPointError(f"point id {pid} is not live")
        self._router.delete_many([pid])

    def delete_many(self, pids: Iterable[int]) -> None:
        """Bulk-delete by global ids (all-or-nothing across shards)."""
        if self.config.insert_only:
            raise self._insert_only_error("delete_many")
        self._router.delete_many(pids)

    def _insert_only_error(self, op: str) -> UnsupportedOperationError:
        return UnsupportedOperationError(
            f"{op} is not supported by the insert-only algorithm "
            f"{self.config.resolved_algorithm!r}; configure a "
            f"fully-dynamic algorithm ('full', 'double-approx', ...) "
            f"for deletions"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def cgroup_by(self, pids: Iterable[int]) -> QueryOutcome:
        """Merged C-group-by over global ids, epoch-stamped."""
        return QueryOutcome(
            result=self._router.cgroup_by_many(pids),
            epoch=self.epoch,
            backend=self._backend,
        )

    cgroup_by_many = cgroup_by

    def snapshot(self) -> Snapshot:
        """Merged full clustering of the live dataset, epoch-stamped."""
        return Snapshot(
            clustering=self._router.clusters(),
            epoch=self.epoch,
            backend=self._backend,
            size=len(self._router),
        )

    def stats(self) -> ShardedStats:
        per_shard = tuple(self._router.shard_stats())
        fragment_parts = [
            s.fragment_cache
            for s in per_shard
            if s.fragment_cache is not None
        ]
        return ShardedStats(
            points=len(self._router),
            epoch=self.epoch,
            backend=self._backend,
            algorithm=self.config.resolved_algorithm,
            config=self.config,
            shards=self.shards,
            replicas=sum(s.points for s in per_shard),
            per_shard=per_shard,
            restarts=self.restarts,
            fragment_cache=(
                FragmentCacheStats(
                    hits=sum(f.hits for f in fragment_parts),
                    misses=sum(f.misses for f in fragment_parts),
                    invalidations=sum(
                        f.invalidations for f in fragment_parts
                    ),
                )
                if fragment_parts
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Sessions and lifecycle
    # ------------------------------------------------------------------

    def session(self, flush_threshold: Optional[int] = None):
        """A buffered :class:`repro.api.IngestSession` over this engine.

        The session's query barrier flushes through the router, so one
        flush lands atomically on every shard before the query runs.
        """
        from repro.api.session import IngestSession

        return IngestSession(self, flush_threshold=flush_threshold)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has released this engine."""
        return self._closed

    def close(self) -> None:
        """Shut down the executor (worker processes, if any); idempotent.

        Safe to call any number of times, and safe after a worker has
        already died — the executors tolerate tearing down partially
        dead pools, so a crash-path ``close`` never raises a secondary
        error on top of the one that killed the worker.
        """
        if self._closed:
            return
        self._closed = True
        self._router.executor.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine(algorithm={self.config.algorithm!r}, "
            f"shards={self.shards}, points={len(self)}, "
            f"epoch={self.epoch}, backend={self._backend!r})"
        )

