"""Zero-copy shared-memory payload plane for the process shard executor.

PR 5 proved the sharded router bit-identical to a single engine, but its
process executor pickled every routed batch — point arrays, id arrays,
fragment frontiers — through a pipe, in both directions.  At scale the
transport dominated the engines it was feeding (``process x4`` ingest
ran *slower* than ``process x1``).  This module applies the paper's
"pay only for what changed" discipline to the transport itself: ship
only the bytes that must move, and ship them without copies.

Every executor call ``(method, args)`` is **framed** into two planes:

* **control** — method name, scalars, small python structure — pickled
  over the existing pipe exactly as before;
* **bulk payloads** — numpy arrays (point batches, id arrays, frontier
  core coordinates) — written once into a pooled
  :mod:`multiprocessing.shared_memory` segment and rebuilt on the other
  side as read-only *views* into the same pages.  Array bytes cross the
  process boundary exactly once (the write into the segment) and are
  never pickled, replies included.

Which calls carry bulk payloads is **declared**
(:data:`repro.shard.backend.BULK_CALLS`), never guessed: framing walks
only declared argument positions and results, substituting a
:class:`_Ref` placeholder for each ndarray it finds.  Tuples, dicts and
the fragment dataclasses are walked; lists are always control data.

Segment ownership and lifetime:

* Segments are created and owned *exclusively by the parent process*;
  workers only ever attach.  No segment's lifetime depends on a worker
  staying alive, so :meth:`SegmentPool.close` (called from executor
  close, and from ``atexit``) deterministically unlinks every segment —
  including after a worker crash.
* The pool leases segments with ref-counts and geometric sizing; a
  released segment returns to the free list for reuse, so a long-lived
  channel re-leases at most O(log payload) times.
* Payload views are valid until the **next call on the same shard
  channel**.  The router consumes every reply inside the merge (or
  routing pass) that requested it, so the contract holds by
  construction; views are handed out read-only so a violation cannot
  silently corrupt a segment.

Wire protocol (one pipe per shard, strict request/reply alternation;
``desc`` is ``None`` or ``(segment_name, [(offset, dtype, shape), ...])``)::

    parent -> worker:  ("call", method, control, desc)
                       ("segment", name, size)          # grow response
                       None                             # shutdown
    worker -> parent:  ("ok", control, desc)
                       ("error", exception)
                       ("grow", nbytes)                 # reply won't fit

The same framing is deliberately transport-agnostic at the call sites:
with the ``pickle`` transport the channels degrade to the PR 5 wire
format (whole messages through the pipe), which is what keeps the two
transports differentiable side by side and leaves the framing reusable
by the ROADMAP's RPC/distributed executor.
"""

from __future__ import annotations

import itertools
import os
import time
import traceback
from dataclasses import dataclass, fields, is_dataclass
from dataclasses import replace as dataclass_replace
from multiprocessing import shared_memory
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ReproError, ShardTimeoutError

#: Process-executor transports: ``pickle`` ships whole messages through
#: the pipe (the PR 5 baseline), ``shm`` moves bulk arrays through
#: pooled shared-memory segments and pickles only control metadata.
TRANSPORT_CHOICES = ("pickle", "shm")

#: Payload offsets are aligned so every reconstructed view starts on a
#: cache line, keeping vectorized kernels over the views well-behaved.
_ALIGN = 64

#: Smallest segment the pool creates.  Together with power-of-two
#: growth this bounds a channel's lifetime lease count at O(log bytes).
MIN_SEGMENT_BYTES = 1 << 20

_segment_counter = itertools.count()


@dataclass(frozen=True)
class BulkSpec:
    """Where one executor call's bulk numpy payloads are declared to live.

    ``arg_positions`` names the positional arguments that may hold (or
    contain) bulk arrays; ``bulk_result`` declares the same for the
    call's result.  Everything undeclared is control metadata and is
    pickled untouched — the framer never guesses.
    """

    arg_positions: Tuple[int, ...] = ()
    bulk_result: bool = False


class _Ref:
    """Control-plane placeholder for one extracted bulk array."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __reduce__(self):
        return (_Ref, (self.index,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Ref({self.index})"


def _extract(obj: Any, arrays: List[np.ndarray]) -> Any:
    """Replace every ndarray reachable from ``obj`` with a :class:`_Ref`.

    Walks tuples, dict *values* and dataclass fields; lists (and dict
    keys) are control data by convention and are left untouched.  The
    collected arrays are made C-contiguous here, so the writer can copy
    them into a segment with one ``memcpy`` each.
    """
    if isinstance(obj, np.ndarray):
        arrays.append(np.ascontiguousarray(obj))
        return _Ref(len(arrays) - 1)
    if isinstance(obj, tuple):
        return tuple(_extract(item, arrays) for item in obj)
    if isinstance(obj, dict):
        return {key: _extract(value, arrays) for key, value in obj.items()}
    if is_dataclass(obj) and not isinstance(obj, type):
        return dataclass_replace(
            obj,
            **{
                f.name: _extract(getattr(obj, f.name), arrays)
                for f in fields(obj)
            },
        )
    return obj


def _plant(obj: Any, views: List[np.ndarray]) -> Any:
    """Inverse of :func:`_extract`: substitute views for placeholders."""
    if isinstance(obj, _Ref):
        return views[obj.index]
    if isinstance(obj, tuple):
        return tuple(_plant(item, views) for item in obj)
    if isinstance(obj, dict):
        return {key: _plant(value, views) for key, value in obj.items()}
    if is_dataclass(obj) and not isinstance(obj, type):
        return dataclass_replace(
            obj,
            **{f.name: _plant(getattr(obj, f.name), views) for f in fields(obj)},
        )
    return obj


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


def _detach_exported(segment: shared_memory.SharedMemory) -> None:
    """Detach a segment whose mmap still has exported payload views.

    The mmap cannot close under a live view, and letting
    ``SharedMemory.__del__`` retry later just fails again (noisily, at
    interpreter exit).  Dropping the handles instead leaves the mapping
    referenced only by the surviving views, so it frees itself the
    moment the last one dies — no retry, no leak beyond view lifetime.
    """
    segment._buf = None
    segment._mmap = None


def payload_bytes(arrays: List[np.ndarray]) -> int:
    """Total segment capacity the given arrays need, aligned."""
    return sum(_aligned(arr.nbytes) for arr in arrays) or _ALIGN


def write_payloads(
    segment: shared_memory.SharedMemory, arrays: List[np.ndarray]
) -> List[Tuple[int, str, Tuple[int, ...]]]:
    """Copy arrays into ``segment``; returns the descriptor entries.

    Each entry is ``(offset, dtype, shape)`` — everything the receiver
    needs to rebuild the array as a view without touching the bytes.
    """
    entries: List[Tuple[int, str, Tuple[int, ...]]] = []
    offset = 0
    for arr in arrays:
        if arr.size:
            np.frombuffer(
                segment.buf, dtype=arr.dtype, count=arr.size, offset=offset
            ).reshape(arr.shape)[...] = arr
        entries.append((offset, arr.dtype.str, arr.shape))
        offset += _aligned(arr.nbytes)
    return entries


def read_payloads(
    segment: shared_memory.SharedMemory,
    entries: List[Tuple[int, str, Tuple[int, ...]]],
) -> List[np.ndarray]:
    """Rebuild descriptor entries as read-only views into ``segment``."""
    views: List[np.ndarray] = []
    for offset, dtype, shape in entries:
        dt = np.dtype(dtype)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        flat = np.frombuffer(segment.buf, dtype=dt, count=count, offset=offset)
        flat.flags.writeable = False
        views.append(flat.reshape(shape))
    return views


class SegmentPool:
    """Parent-owned pool of shared-memory segments with leased reuse.

    ``lease(nbytes)`` hands out a segment of at least ``nbytes``
    capacity — best-fit from the free list when possible, freshly
    created (power-of-two sized, named ``repro-shm-<pid>-<seq>``)
    otherwise.  ``release`` returns a segment to the free list once its
    lease drops to zero.  ``close`` unlinks every segment the pool ever
    created, leased or not, and is idempotent — the single guarantee
    the no-leak tests pin down: after close, nothing of this pool
    remains under ``/dev/shm``, regardless of worker state.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._leases: Dict[str, int] = {}
        self._free: List[str] = []
        self._closed = False

    def __len__(self) -> int:
        return len(self._segments)

    def segment_names(self) -> List[str]:
        """Names of every segment currently owned by the pool."""
        return sorted(self._segments)

    def get(self, name: str) -> shared_memory.SharedMemory:
        try:
            return self._segments[name]
        except KeyError:
            raise ReproError(
                f"shared-memory descriptor references segment {name!r}, "
                f"which this pool does not own — transport framing is "
                f"out of sync"
            ) from None

    def lease(self, nbytes: int) -> shared_memory.SharedMemory:
        if self._closed:
            raise ReproError("segment pool is closed")
        best: Optional[str] = None
        for name in self._free:
            size = self._segments[name].size
            if size >= nbytes and (
                best is None or size < self._segments[best].size
            ):
                best = name
        if best is not None:
            self._free.remove(best)
            self._leases[best] += 1
            return self._segments[best]
        capacity = max(MIN_SEGMENT_BYTES, 1 << (max(nbytes, 1) - 1).bit_length())
        while True:
            name = f"repro-shm-{os.getpid()}-{next(_segment_counter)}"
            try:
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=capacity
                )
                break
            except FileExistsError:  # pragma: no cover - pid reuse race
                continue
        self._segments[segment.name] = segment
        self._leases[segment.name] = 1
        return segment

    def release(self, segment: shared_memory.SharedMemory) -> None:
        if self._closed or segment.name not in self._segments:
            return
        count = self._leases[segment.name] - 1
        if count < 0:  # pragma: no cover - protocol bug guard
            raise ReproError(
                f"segment {segment.name!r} released more times than leased"
            )
        self._leases[segment.name] = count
        if count == 0:
            self._free.append(segment.name)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:
                _detach_exported(segment)
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()
        self._leases.clear()
        self._free.clear()


class ParentChannel:
    """Parent-side framing endpoint for one shard's pipe.

    Owns the channel's current request and reply segment leases (both
    drawn from the executor's shared :class:`SegmentPool`) and services
    the worker's ``grow`` requests inline from :meth:`recv_reply`.
    With ``pool=None`` the channel is the pickle transport: whole
    messages through the pipe, no segments anywhere.
    """

    def __init__(
        self,
        conn,
        pool: Optional[SegmentPool],
        schemas: Mapping[str, BulkSpec],
    ) -> None:
        self.conn = conn
        self._pool = pool
        self._schemas = schemas
        self._req: Optional[shared_memory.SharedMemory] = None
        self._rep: Optional[shared_memory.SharedMemory] = None

    def _swap(
        self, current: Optional[shared_memory.SharedMemory], nbytes: int
    ) -> shared_memory.SharedMemory:
        if current is not None and current.size >= nbytes:
            return current
        assert self._pool is not None
        fresh = self._pool.lease(nbytes)
        if current is not None:
            self._pool.release(current)
        return fresh

    def send_call(self, method: str, args: Tuple[Any, ...]) -> None:
        spec = self._schemas.get(method) if self._pool is not None else None
        if spec is None or not spec.arg_positions:
            self.conn.send(("call", method, args, None))
            return
        arrays: List[np.ndarray] = []
        control = tuple(
            _extract(arg, arrays) if i in spec.arg_positions else arg
            for i, arg in enumerate(args)
        )
        if not arrays:
            self.conn.send(("call", method, control, None))
            return
        self._req = self._swap(self._req, payload_bytes(arrays))
        entries = write_payloads(self._req, arrays)
        self.conn.send(("call", method, control, (self._req.name, entries)))

    def recv_reply(self, timeout: Optional[float] = None) -> Any:
        """One reply; raises relayed exceptions, services grow requests.

        ``timeout`` bounds the whole wait (grow handshakes included)
        with a ``poll``-based deadline: a worker that never replies —
        hung, deadlocked, SIGSTOP'd — raises
        :class:`repro.errors.ShardTimeoutError` instead of blocking
        the parent forever.  ``None`` waits indefinitely.  May raise
        ``EOFError`` if the worker died (its pipe end closes, so death
        surfaces promptly even under a long deadline) — the executor
        maps both to shard-context errors.

        After a timeout the channel is **desynchronized**: the
        worker's reply may still arrive later, so the channel must not
        be reused — the executor poisons it until the worker is
        restarted on a fresh pipe.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self.conn.poll(remaining):
                    raise ShardTimeoutError(
                        f"no reply within {timeout:g}s"
                    )
            message = self.conn.recv()
            tag = message[0]
            if tag == "grow":
                self._rep = self._swap(self._rep, message[1])
                self.conn.send(("segment", self._rep.name, self._rep.size))
                continue
            if tag == "error":
                raise message[1]
            _, control, desc = message
            if desc is None:
                return control
            assert self._pool is not None
            name, entries = desc
            return _plant(control, read_payloads(self._pool.get(name), entries))

    def release_leases(self) -> None:
        """Return this channel's segment leases to the pool."""
        if self._pool is None:
            return
        for segment in (self._req, self._rep):
            if segment is not None:
                self._pool.release(segment)
        self._req = self._rep = None


class WorkerChannel:
    """Worker-side framing endpoint: attach-only, owns no segments.

    Reply payloads are written into a parent-owned segment obtained
    through the ``grow`` handshake; request payloads are read through
    an attachment cache (segment names are stable until the parent's
    pool closes, so cached attachments never go stale).
    """

    def __init__(
        self, conn, schemas: Mapping[str, BulkSpec], shm_enabled: bool
    ) -> None:
        self.conn = conn
        self._schemas = schemas if shm_enabled else {}
        self._attached: Dict[str, shared_memory.SharedMemory] = {}
        self._reply_segment: Optional[shared_memory.SharedMemory] = None

    def _attach(self, name: str) -> shared_memory.SharedMemory:
        segment = self._attached.get(name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=name)
            self._attached[name] = segment
        return segment

    def recv_call(self) -> Optional[Tuple[str, Tuple[Any, ...]]]:
        """Next ``(method, args)`` request, or ``None`` on shutdown."""
        message = self.conn.recv()
        if message is None:
            return None
        _, method, control, desc = message
        if desc is None:
            return method, control
        name, entries = desc
        views = read_payloads(self._attach(name), entries)
        return method, _plant(control, views)

    def send_ok(self, method: str, result: Any) -> None:
        spec = self._schemas.get(method)
        if spec is None or not spec.bulk_result:
            self.conn.send(("ok", result, None))
            return
        arrays: List[np.ndarray] = []
        control = _extract(result, arrays)
        if not arrays:
            self.conn.send(("ok", control, None))
            return
        need = payload_bytes(arrays)
        segment = self._reply_segment
        if segment is None or segment.size < need:
            self.conn.send(("grow", need))
            response = self.conn.recv()
            if response is None or response[0] != "segment":
                raise EOFError("parent went away during a grow handshake")
            segment = self._attach(response[1])
            self._reply_segment = segment
        entries = write_payloads(segment, arrays)
        self.conn.send(("ok", control, (segment.name, entries)))

    def send_error(self, exc: BaseException) -> None:
        """Relay an exception; never let the relay itself kill the worker.

        ``Connection.send`` pickles the full message before writing any
        bytes, so a pickling failure here leaves the pipe clean — the
        fallback resends a :class:`ReproError` carrying the original
        exception's ``repr`` and traceback text instead of crashing the
        worker (which used to surface as a misleading "worker died
        mid-call").
        """
        try:
            self.conn.send(("error", exc))
        except (BrokenPipeError, OSError):
            raise
        except Exception:
            detail = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
            self.conn.send(
                (
                    "error",
                    ReproError(
                        f"shard backend raised an exception that could not "
                        f"be relayed across the process boundary: {exc!r}\n"
                        f"--- original traceback ---\n{detail}"
                    ),
                )
            )

    def close(self) -> None:
        for segment in self._attached.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - caller kept a view
                _detach_exported(segment)
        self._attached.clear()
        self._reply_segment = None
