"""The shard router: global id space, batch routing, boundary merge.

The router owns everything global about a sharded deployment:

* the **global point registry** and the contiguous global id space
  (``_next_id``), assigned in arrival order exactly like a single
  engine, with per-shard local-id translation tables on the side;
* **routing** — one :func:`repro.kernels.bucket_by_cell` pass per
  update batch, then each cell's points go to the owner shard plus its
  halo replicas (:meth:`ShardTopology.replica_shards`), preserving
  arrival order within every shard;
* the **boundary merge** — the only place cross-shard state meets.

The merge collects, in one overlapped fan-out, each shard's membership
fragments for its owned query ids and its GUM edge fragment
(:meth:`repro.core.framework.GridClusterer.gum_edge_fragment`).  Owned
core cells are disjoint and globally complete, so their union is the
global GUM vertex set; trusted edges union in directly and cross-shard
candidate pairs are settled with one exact witness test over the two
frontiers' core coordinates — the same ``(1+rho) eps`` threshold the
in-shard structures maintain.  Membership probes (a non-core point
against a foreign core cell) are settled with exact ``eps`` ball tests
against the owner's frontier.  A union-find over the merged edge set
turns per-cell fragments into clusters, canonicalized by
:func:`repro.core.framework.canonical_cgroup_result` — at ``rho = 0``
every decision involved is exact, which is why a merged result is
bit-identical to a single engine's.

Every shard response carries the shard's engine epoch; the router
checks it against the update count it routed there, so lost updates or
out-of-band writes fail loudly instead of merging stale state.

Two further concerns live here because they are inherently global:

* **Versioned routing.**  Every routed data-plane call is stamped with
  the router's ownership-table version; workers reject mismatches with
  :class:`repro.errors.StaleOwnershipError`.  :meth:`rebalance`
  migrates one ownership block online: transfer the block's influence
  set to the destination under the current version, broadcast the new
  table to every shard, then flip the router's own copy — from the
  caller's perspective one atomic ownership flip.
* **A persistent boundary-witness cache.**  The exact witness test for
  a cross-shard cell pair depends only on the two cells' frontier core
  sets, and a cell's core set can change only under a mutation within
  the grid's closeness reach of it.  The router therefore keeps witness
  outcomes across query barriers and invalidates a pair only when a
  mutation dirties a cell within reach of it — repeated ``Q = P``
  snapshots over a quiet boundary pay for each witness once (the same
  dirty-cell discipline the per-shard fragment cache applies to
  membership fragments, lifted to the merge layer).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.api.config import EngineConfig
from repro.connectivity.union_find import UnionFind
from repro.core.framework import (
    CGroupByResult,
    Clustering,
    canonical_cgroup_result,
)
from repro.core.grid import Cell, Grid
from repro.errors import ConfigError, ReproError, UnknownPointError
from repro.geometry.points import Point
from repro.kernels import any_within, as_point_array, ball_counts, bucket_by_cell
from repro.shard.topology import ShardTopology


class ShardRouter:
    """Routes updates and merges queries across per-shard engines."""

    def __init__(self, config: EngineConfig, executor) -> None:
        self.config = config
        self.executor = executor
        self.shard_count = executor.shard_count
        self.topology = ShardTopology(
            eps=config.eps,
            dim=config.dim,
            rho=config.effective_rho,
            shard_count=self.shard_count,
            block=config.resolved_shard_block,
        )
        self._grid: Grid = self.topology.grid
        eps = config.eps
        relaxed = eps * (1.0 + config.effective_rho)
        self._sq_eps = eps * eps
        self._sq_relaxed = relaxed * relaxed
        self._points: Dict[int, Point] = {}
        self._next_id = 0
        self._epoch = 0
        self._global_to_local: List[Dict[int, int]] = [
            {} for _ in range(self.shard_count)
        ]
        self._local_to_global: List[Dict[int, int]] = [
            {} for _ in range(self.shard_count)
        ]
        #: Updates routed to each shard — what its engine epoch must read.
        self._routed: List[int] = [0] * self.shard_count
        # Boundary-witness cache (see module docstring).  Shares the
        # fragment-cache knob: both are epoch-aware caches trading a
        # little bookkeeping for skipped exact geometry.
        self._cache_enabled = config.resolved_fragment_cache
        self._witness_cache: Dict[Tuple[Cell, Cell], bool] = {}
        self._dirty_cells: Set[Cell] = set()
        self.merge_cache_hits = 0
        self.merge_cache_misses = 0
        self.merge_cache_invalidations = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, pid: int) -> bool:
        return pid in self._points

    @property
    def epoch(self) -> int:
        return self._epoch

    def point(self, pid: int) -> Point:
        return self._points[pid]

    def ids(self) -> Iterable[int]:
        return self._points.keys()

    def owner_of(self, pid: int) -> int:
        """The shard whose engine is authoritative for this point."""
        return self.topology.owner_of_cell(self._grid.cell_of(self._points[pid]))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert_many(self, points) -> List[int]:
        """Route one insertion batch; returns the new global ids.

        The whole batch is validated up front (shape, dimension, finite
        coordinates) before any shard sees a point, so a malformed batch
        mutates nothing anywhere — the all-or-nothing contract of the
        single engine, preserved across the fan-out.
        """
        batch = points if isinstance(points, list) else list(points)
        arr = as_point_array(batch, self.config.dim)
        if len(arr) == 0:
            return []
        tuples: List[Point] = [tuple(row) for row in arr.tolist()]
        base = self._next_id
        replica_shards = self.topology.replica_shards
        member_idxs: List[List[np.ndarray]] = [
            [] for _ in range(self.shard_count)
        ]
        for cell, idxs in bucket_by_cell(arr, self._grid.side):
            if self._cache_enabled:
                self._dirty_cells.add(cell)
            for shard in replica_shards(cell):
                member_idxs[shard].append(idxs)
        orders: List[Optional[np.ndarray]] = [None] * self.shard_count
        calls = []
        for shard, parts in enumerate(member_idxs):
            if not parts:
                calls.append(None)
                continue
            # Concatenate-and-sort restores arrival order within the
            # shard's slice — the deterministic replay order every
            # engine applies.  The slice ships as an (n, dim) float64
            # array, the declared bulk form (BULK_CALLS): the shm
            # transport moves it through shared memory untouched, and
            # even the pickle transport ships one buffer instead of n
            # python tuples.
            order = np.sort(np.concatenate(parts))
            orders[shard] = order
            calls.append(("ingest", (arr[order], self.topology.version)))
        try:
            local_ids = self.executor.map(calls)
        finally:
            # Mirror Engine.ingest: the epoch over-counts on failure
            # rather than ever under-counting.
            self._epoch += len(tuples)
        for i, pt in enumerate(tuples):
            self._points[base + i] = pt
        self._next_id = base + len(tuples)
        for shard, order in enumerate(orders):
            if order is None:
                continue
            g2l = self._global_to_local[shard]
            l2g = self._local_to_global[shard]
            # Backends reply with an int64 id array (possibly a view
            # into a transport segment): normalize to python ints here,
            # where the ids enter long-lived registries.
            shard_ids = local_ids[shard].tolist()
            for i, local_pid in zip(order.tolist(), shard_ids):
                g2l[base + i] = local_pid
                l2g[local_pid] = base + i
            self._routed[shard] += len(shard_ids)
        return list(range(base, base + len(tuples)))

    def delete_many(self, pids: Iterable[int]) -> None:
        """Route one deletion batch to every replica of every id.

        Validation happens entirely at the router — duplicates and dead
        ids are rejected with the single engine's exact error types and
        messages *before* any shard is contacted, so an invalid batch is
        all-or-nothing across the whole deployment.
        """
        pid_list = [int(pid) for pid in pids]
        if not pid_list:
            return
        if len(set(pid_list)) != len(pid_list):
            raise ValueError("duplicate point ids in delete_many batch")
        dead = [pid for pid in pid_list if pid not in self._points]
        if dead:
            raise UnknownPointError(
                f"point id(s) {sorted(set(dead))} are not live; "
                f"the batch was rejected before deleting anything"
            )
        per_shard: List[List[int]] = [[] for _ in range(self.shard_count)]
        replica_shards = self.topology.replica_shards
        cell_of = self._grid.cell_of
        for pid in pid_list:
            cell = cell_of(self._points[pid])
            if self._cache_enabled:
                self._dirty_cells.add(cell)
            for shard in replica_shards(cell):
                per_shard[shard].append(pid)
        calls = []
        for shard, shard_pids in enumerate(per_shard):
            if not shard_pids:
                calls.append(None)
                continue
            g2l = self._global_to_local[shard]
            local = np.fromiter(
                (g2l[pid] for pid in shard_pids),
                dtype=np.int64,
                count=len(shard_pids),
            )
            calls.append(("delete_many", (local, self.topology.version)))
        try:
            self.executor.map(calls)
        finally:
            self._epoch += len(pid_list)
        for shard, shard_pids in enumerate(per_shard):
            g2l = self._global_to_local[shard]
            l2g = self._local_to_global[shard]
            for pid in shard_pids:
                del l2g[g2l.pop(pid)]
            self._routed[shard] += len(shard_pids)
        for pid in pid_list:
            del self._points[pid]

    # ------------------------------------------------------------------
    # Merged queries
    # ------------------------------------------------------------------

    def cgroup_by_many(self, pids: Iterable[int]) -> CGroupByResult:
        """C-group-by across shards, merged at the boundary."""
        pid_list = list(pids)
        if not pid_list:
            return CGroupByResult()
        missing = [pid for pid in pid_list if pid not in self._points]
        if missing:
            raise UnknownPointError(
                f"point id(s) {sorted(set(missing))} are not live; "
                f"the query was rejected before resolving any group"
            )
        return self._merge(sorted(set(pid_list)))

    def clusters(self) -> Clustering:
        """Full clustering of the live dataset (the ``Q = P`` query)."""
        if not self._points:
            return Clustering()
        result = self._merge(sorted(self._points))
        return Clustering(clusters=result.group_sets(), noise=set(result.noise))

    def is_core(self, pid: int) -> bool:
        """Authoritative core status, answered by the owner shard."""
        if pid not in self._points:
            raise UnknownPointError(f"point id {pid} is not live")
        shard = self.owner_of(pid)
        return self.executor.call(
            shard, "is_core", self._global_to_local[shard][pid]
        )

    def shard_stats(self) -> List:
        """Per-shard engine stats (halo replicas included in counts)."""
        return self.executor.map([("stats", ())] * self.shard_count)

    # ------------------------------------------------------------------
    # Ownership (versioned table + online rebalance)
    # ------------------------------------------------------------------

    @property
    def ownership_version(self) -> int:
        """The router's current ownership-table version."""
        return self.topology.version

    def rebalance(self, block: Cell, dest: int) -> int:
        """Migrate one ownership block to ``dest`` online; new version.

        Three steps, each leaving the deployment consistent:

        1. **Transfer.**  Every live point inside the closeness-reach
           box around the block (the block's full influence set — what
           ``dest`` needs to compute exact core status for the block's
           cells) that ``dest`` does not already hold is bulk-ingested
           there, stamped with the *current* version like any routed
           update.
        2. **Broadcast.**  The new table (version + overrides) is
           installed on every shard via the journaled ``set_ownership``
           call, so a recovered worker replays the flip in order with
           the version-stamped updates around it.
        3. **Flip.**  The router installs the same table locally; every
           subsequent call is stamped with the new version.

        The old owner keeps its now-foreign copies: stale halo data is
        advisory by construction (the trust predicate follows the new
        table immediately), so it can never leak into owned-core
        decisions or the boundary merge.  Witness cache entries are
        dropped wholesale — the flip redraws the boundary itself.
        """
        block_t = tuple(int(b) for b in block)
        if len(block_t) != self.config.dim:
            raise ConfigError(
                f"block {block!r} has {len(block_t)} axes; deployment is "
                f"{self.config.dim}-dimensional"
            )
        if not (0 <= dest < self.shard_count):
            raise ConfigError(
                f"cannot rebalance block {block_t!r} to shard {dest}: "
                f"deployment has {self.shard_count} shards"
            )
        reach, b = self.topology.reach, self.topology.block
        lo = [blk * b - reach for blk in block_t]
        hi = [(blk + 1) * b - 1 + reach for blk in block_t]
        g2l = self._global_to_local[dest]
        cell_of = self._grid.cell_of
        transfer = sorted(
            pid
            for pid, pt in self._points.items()
            if pid not in g2l
            and all(
                low <= c <= high
                for low, c, high in zip(lo, cell_of(pt), hi)
            )
        )
        if transfer:
            arr = np.array(
                [self._points[pid] for pid in transfer], dtype=np.float64
            )
            local_ids = self.executor.call(
                dest, "ingest", arr, self.topology.version
            )
            l2g = self._local_to_global[dest]
            for pid, local_pid in zip(transfer, local_ids.tolist()):
                g2l[pid] = local_pid
                l2g[local_pid] = pid
            self._routed[dest] += len(transfer)
        overrides = self.topology.ownership_overrides
        overrides[block_t] = dest
        new_version = self.topology.version + 1
        self.executor.map(
            [("set_ownership", (new_version, overrides))] * self.shard_count
        )
        self.topology.apply_ownership(new_version, overrides)
        self._witness_cache.clear()
        self._dirty_cells.clear()
        return new_version

    def _invalidate_witnesses(self) -> None:
        """Drop cached witnesses within reach of any mutated cell.

        A pair's witness depends only on the two cells' frontier core
        sets, and a cell's core set can change only under a mutation
        within the closeness reach of it — so a cached pair survives
        exactly when both its cells are farther than ``reach`` (in
        Chebyshev distance) from every dirty cell.  When the dirty set
        times the cache would make the scan itself expensive, the cache
        is simply rebuilt from scratch.
        """
        dirty, cache = self._dirty_cells, self._witness_cache
        if cache:
            if len(dirty) * len(cache) > 32768:
                self.merge_cache_invalidations += len(cache)
                cache.clear()
            else:
                reach = self.topology.reach
                touched: Dict[Cell, bool] = {}

                def near_dirty(cell: Cell) -> bool:
                    hit = touched.get(cell)
                    if hit is None:
                        hit = touched[cell] = any(
                            max(
                                abs(c - d) for c, d in zip(cell, dirty_cell)
                            )
                            <= reach
                            for dirty_cell in dirty
                        )
                    return hit

                stale = [
                    pair
                    for pair in cache
                    if near_dirty(pair[0]) or near_dirty(pair[1])
                ]
                for pair in stale:
                    del cache[pair]
                self.merge_cache_invalidations += len(stale)
        dirty.clear()

    def _merge(self, query: List[int]) -> CGroupByResult:
        """One overlapped fan-out plus the boundary merge (see module doc)."""
        per_shard: List[Optional[List[int]]] = [None] * self.shard_count
        points = self._points
        coords = np.array([points[pid] for pid in query])
        cells = np.floor(coords / self._grid.side).astype(np.int64)
        owners = self.topology.owners_of_cells(cells)
        for pid, shard in zip(query, owners.tolist()):
            if per_shard[shard] is None:
                per_shard[shard] = []
            per_shard[shard].append(self._global_to_local[shard][pid])
        responses = self.executor.map(
            [
                (
                    "merge_state",
                    (
                        None
                        if locals_ is None
                        else np.asarray(locals_, dtype=np.int64),
                        self.topology.version,
                    ),
                )
                for locals_ in per_shard
            ]
        )
        for shard, (_, _, epoch) in enumerate(responses):
            if epoch != self._routed[shard]:
                raise ReproError(
                    f"shard {shard} is at epoch {epoch} but the router "
                    f"routed {self._routed[shard]} updates to it; the "
                    f"shard was written out-of-band or lost updates — "
                    f"refusing to merge inconsistent snapshots"
                )

        # --- the global grid graph: vertices, trusted edges, boundary ---
        core_cells: Set[Cell] = set()
        frontier: Dict[Cell, np.ndarray] = {}
        for _, gum, _ in responses:
            core_cells.update(gum.core_cells)
            frontier.update(gum.frontier)
        uf = UnionFind()
        for cell in sorted(core_cells):
            uf.add(cell)
        for _, gum, _ in responses:
            for a, b in gum.edges:
                uf.union(a, b)
        cross_pairs = sorted(
            {
                (a, b) if a < b else (b, a)
                for _, gum, _ in responses
                for a, b in gum.candidates
                if b in core_cells
            }
        )
        if self._cache_enabled and self._dirty_cells:
            self._invalidate_witnesses()
        for a, b in cross_pairs:
            if uf.connected(a, b):
                continue  # an extra witness cannot change any component
            witness = (
                self._witness_cache.get((a, b)) if self._cache_enabled else None
            )
            if witness is None:
                coords_a, coords_b = frontier.get(a), frontier.get(b)
                if coords_a is None or coords_b is None:
                    raise ReproError(
                        f"boundary merge is missing frontier core "
                        f"coordinates for cell pair {a} / {b} — shard "
                        f"fragments are inconsistent"
                    )
                witness = bool(
                    any_within(coords_a, coords_b, self._sq_relaxed)
                )
                if self._cache_enabled:
                    self._witness_cache[(a, b)] = witness
                    self.merge_cache_misses += 1
            else:
                self.merge_cache_hits += 1
            if witness:
                uf.union(a, b)

        # --- fragments and probes -> groups over global components ------
        groups: Dict[Hashable, Set[int]] = {}
        matched: Set[int] = set()
        probes_by_cell: Dict[Cell, List[int]] = {}
        for shard, (fragments, _, _) in enumerate(responses):
            if fragments is None:
                continue
            l2g = self._local_to_global[shard]
            for cell, local_members in fragments.fragments.items():
                members = groups.setdefault(uf.find(cell), set())
                for local_pid in local_members:
                    pid = l2g[local_pid]
                    members.add(pid)
                    matched.add(pid)
            for local_pid, cell in fragments.probes:
                if cell in core_cells:
                    probes_by_cell.setdefault(cell, []).append(l2g[local_pid])
        for cell in sorted(probes_by_cell):
            coords = frontier.get(cell)
            if coords is None:
                raise ReproError(
                    f"boundary merge is missing frontier core coordinates "
                    f"for probed cell {cell} — shard fragments are "
                    f"inconsistent"
                )
            probe_pids = sorted(set(probes_by_cell[cell]))
            q_arr = np.array([self._points[pid] for pid in probe_pids])
            hits = ball_counts(q_arr, coords, self._sq_eps) > 0
            if not hits.any():
                continue
            members = groups.setdefault(uf.find(cell), set())
            for pid, hit in zip(probe_pids, hits.tolist()):
                if hit:
                    members.add(pid)
                    matched.add(pid)
        noise = [pid for pid in query if pid not in matched]
        return canonical_cgroup_result(groups.values(), noise)
