"""Deterministic fault injection for shard workers.

The chaos half of the fault-tolerance layer: a **fault plan** is a
declarative schedule of failures — *crash this worker at its 2nd
``ingest`` call*, *hang ``merge_state`` on shard 1* — that workers
consult inside :func:`repro.shard.executors._shard_worker`.  Plans make
worker failure a first-class, reproducible test input, so the recovery
machinery (deadline-bounded calls, supervised restart, journal replay)
is proven against *injected* deaths and hangs rather than hand-rolled
monkeypatching: the same randomized-adversarial-testing direction the
workload-synthesis ROADMAP item points at, applied to failures.

A plan is a ``;``-separated list of rules, each::

    kind:method:nth[:key=value ...]

* ``kind`` — what happens when the rule fires:

  - ``crash``  — the worker process exits immediately
    (``os._exit``), simulating a segfault/OOM kill; the parent sees
    EOF on the pipe.
  - ``hang``   — the worker sleeps (default: effectively forever),
    simulating a deadlock; the parent sees a
    :class:`repro.errors.ShardTimeoutError` once the call deadline
    expires.
  - ``delay``  — the worker sleeps ``seconds`` (default 0.05) and then
    serves the call normally; simulates a slow worker that must *not*
    trip recovery when the delay fits the deadline.
  - ``error``  — the worker raises a :class:`repro.errors.ReproError`
    from inside the call; relayed like any backend exception (the
    worker survives, no recovery runs).

* ``method`` — the executor-call name the rule watches (``ingest``,
  ``delete_many``, ``merge_state``, ``ping``, ...).
* ``nth`` — fire at the Nth call of that method (1-based), counted
  per worker incarnation.
* options:

  - ``shard=i`` — only on shard ``i`` (default: every shard);
  - ``seconds=x`` — sleep length for ``hang`` / ``delay``;
  - ``incarnation=k`` or ``incarnation=*`` — which worker incarnation
    the rule arms in.  Default ``0`` (the original worker only), so a
    respawned worker replaying its journal does not re-trigger the
    fault that killed its predecessor; ``*`` arms in every
    incarnation, which is how a test exhausts the restart budget.

Plans are carried by the validated ``shard_fault_plan`` config knob or
the ``REPRO_FAULT_PLAN`` environment variable (knob wins), and parsed
with :class:`repro.errors.ConfigError` on any malformed rule.  When no
plan is set, workers skip injection entirely — the hot loop pays one
``is None`` check per call and nothing else.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError, ReproError

#: Everything a rule's ``kind`` field may name.
FAULT_KINDS = ("crash", "hang", "delay", "error")

#: Exit status of an injected ``crash`` — distinctive in worker logs,
#: unmistakably not a normal interpreter exit.
CRASH_EXIT_CODE = 117

#: Default sleep of a ``hang`` rule: far beyond any sane call deadline,
#: so an unsupervised parent's timeout (not the sleep running out) is
#: always what ends the wait.
HANG_SECONDS = 3600.0

#: Default sleep of a ``delay`` rule.
DELAY_SECONDS = 0.05


@dataclass(frozen=True)
class FaultRule:
    """One parsed fault-plan rule (see module docstring for semantics)."""

    kind: str
    method: str
    nth: int
    shard: Optional[int] = None
    seconds: Optional[float] = None
    incarnation: Optional[int] = 0  # None means every incarnation ('*')


def parse_fault_plan(spec: str) -> Tuple[FaultRule, ...]:
    """Parse a plan spec into rules; :class:`ConfigError` on bad syntax."""
    rules = []
    for chunk in spec.split(";"):
        part = chunk.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) < 3:
            raise ConfigError(
                f"fault rule {part!r} must be 'kind:method:nth[:key=value]'"
            )
        kind, method, nth_text = fields[0], fields[1], fields[2]
        if kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {kind!r} in rule {part!r}; choices: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if not method:
            raise ConfigError(f"fault rule {part!r} names no method")
        try:
            nth = int(nth_text)
        except ValueError:
            raise ConfigError(
                f"fault rule {part!r} has non-integer call index "
                f"{nth_text!r}"
            ) from None
        if nth < 1:
            raise ConfigError(
                f"fault rule {part!r} call index must be >= 1, got {nth}"
            )
        shard: Optional[int] = None
        seconds: Optional[float] = None
        incarnation: Optional[int] = 0
        for option in fields[3:]:
            key, sep, value = option.partition("=")
            if not sep:
                raise ConfigError(
                    f"fault rule option {option!r} in {part!r} must be "
                    f"'key=value'"
                )
            if key == "shard":
                try:
                    shard = int(value)
                except ValueError:
                    raise ConfigError(
                        f"fault rule {part!r}: shard must be an integer, "
                        f"got {value!r}"
                    ) from None
                if shard < 0:
                    raise ConfigError(
                        f"fault rule {part!r}: shard must be >= 0"
                    )
            elif key == "seconds":
                try:
                    seconds = float(value)
                except ValueError:
                    raise ConfigError(
                        f"fault rule {part!r}: seconds must be a number, "
                        f"got {value!r}"
                    ) from None
                if seconds < 0:
                    raise ConfigError(
                        f"fault rule {part!r}: seconds must be >= 0"
                    )
            elif key == "incarnation":
                if value == "*":
                    incarnation = None
                else:
                    try:
                        incarnation = int(value)
                    except ValueError:
                        raise ConfigError(
                            f"fault rule {part!r}: incarnation must be an "
                            f"integer or '*', got {value!r}"
                        ) from None
                    if incarnation < 0:
                        raise ConfigError(
                            f"fault rule {part!r}: incarnation must be >= 0"
                        )
            else:
                raise ConfigError(
                    f"unknown fault rule option {key!r} in {part!r}; "
                    f"choices: shard, seconds, incarnation"
                )
        rules.append(
            FaultRule(
                kind=kind,
                method=method,
                nth=nth,
                shard=shard,
                seconds=seconds,
                incarnation=incarnation,
            )
        )
    if not rules:
        raise ConfigError(f"fault plan {spec!r} contains no rules")
    return tuple(rules)


class FaultInjector:
    """Per-worker rule evaluator: counts calls, fires matching rules.

    Built once at worker startup from the rules that apply to this
    ``(shard, incarnation)``; :meth:`fire` is consulted before every
    dispatched call.  Counting is per method name and restarts from
    zero in every incarnation — which, combined with the default
    ``incarnation=0`` arming, is what keeps journal replay from
    re-triggering the fault it is recovering from.
    """

    def __init__(
        self,
        rules: Tuple[FaultRule, ...],
        shard_index: int,
        incarnation: int,
    ) -> None:
        self.shard_index = shard_index
        self._rules = [
            rule
            for rule in rules
            if (rule.shard is None or rule.shard == shard_index)
            and (rule.incarnation is None or rule.incarnation == incarnation)
        ]
        self._counts: Dict[str, int] = {}

    def fire(self, method: str, on_crash=None) -> None:
        """Trigger any rule matching this (Nth) call of ``method``.

        ``crash`` never returns; ``hang``/``delay`` sleep and return so
        the call proceeds (for a hang, into a parent that has long
        since timed out); ``error`` raises — the worker loop relays it
        like any backend exception.

        ``on_crash`` overrides what a ``crash`` rule does: process
        workers die outright (``os._exit``), while a tcp worker passes
        a callback that aborts only the serving session — modeling a
        platform supervisor that restarts the worker on the same
        address while the listener survives.  The callback must not
        return; if it does, the process exit runs anyway.
        """
        if not self._rules:
            return
        count = self._counts.get(method, 0) + 1
        self._counts[method] = count
        for rule in self._rules:
            if rule.method != method or rule.nth != count:
                continue
            if rule.kind == "crash":
                if on_crash is not None:
                    on_crash()
                os._exit(CRASH_EXIT_CODE)
            if rule.kind == "hang":
                time.sleep(rule.seconds if rule.seconds is not None else HANG_SECONDS)
            elif rule.kind == "delay":
                time.sleep(rule.seconds if rule.seconds is not None else DELAY_SECONDS)
            else:
                raise ReproError(
                    f"injected fault: {rule.kind} at call {rule.nth} of "
                    f"{rule.method!r} on shard {self.shard_index}"
                )


def injector_for(
    spec: Optional[str], shard_index: int, incarnation: int
) -> Optional[FaultInjector]:
    """The injector a worker should consult, or ``None`` when no plan is set.

    ``None`` is the zero-overhead path: the worker loop's only cost is
    the ``is None`` check per call.
    """
    if not spec:
        return None
    return FaultInjector(parse_fault_plan(spec), shard_index, incarnation)


__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRule",
    "injector_for",
    "parse_fault_plan",
]
