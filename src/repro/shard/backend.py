"""One shard of a sharded deployment: an engine plus its trust boundary.

A :class:`ShardBackend` wraps one ordinary :class:`repro.api.Engine`
over this shard's slice of the data — every point of every cell whose
ownership block hashed here, plus halo replicas of foreign cells within
the grid's closeness reach (see :mod:`repro.shard.topology`).  Because
the halo completes the neighborhoods of all owned cells, the engine's
core-status decisions (and emptiness structures) for *owned* cells are
exactly what a single global engine computes; its view of halo cells is
advisory only.  Accordingly, every resolution the backend reports is
restricted by the ownership predicate, and anything touching foreign
territory comes back as probes/candidates for the router's boundary
merge.

The backend is the unit the executors move across process boundaries:
it is constructed from ``(config, shard_index, shard_count)`` alone and
all its method arguments and results are plain data.  Bulk payloads —
point batches, id arrays, the fragment frontiers — are numpy arrays,
and :data:`BULK_CALLS` declares exactly which calls carry them, so the
shared-memory transport (:mod:`repro.shard.transport`) frames them
without guessing and the pickle transport ships them as array buffers
rather than per-element python objects.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.config import EngineConfig
from repro.api.engine import Engine
from repro.core.bulk import GumEdgeFragment, MembershipFragments
from repro.errors import ReproError, UnknownPointError
from repro.shard.topology import ShardTopology
from repro.shard.transport import BulkSpec

#: The transport contract of the executor call surface: which calls
#: carry bulk numpy payloads, and where.  ``ingest`` takes an ``(n,
#: dim)`` float64 point batch and returns an int64 local-id array;
#: ``delete_many`` takes an int64 local-id array; ``merge_state`` takes
#: an optional int64 local-id array and returns fragments whose
#: frontier coordinate arrays are the bulk of every merge.  Everything
#: else (``ping``, ``stats``, ``is_core``, ...) is control-plane only.
BULK_CALLS = {
    "ingest": BulkSpec(arg_positions=(0,), bulk_result=True),
    "delete_many": BulkSpec(arg_positions=(0,)),
    "merge_state": BulkSpec(arg_positions=(0,), bulk_result=True),
    # Journal truncation: the supervisor drains a shard's live state
    # (point batch + local-id array) and re-seeds a fresh worker with
    # it before replaying the journal suffix.
    "export_state": BulkSpec(arg_positions=(), bulk_result=True),
    "restore_state": BulkSpec(arg_positions=(0, 1)),
}

#: The state-mutating subset of the executor call surface — exactly the
#: calls the shard supervisor journals, because replaying them (in
#: order, against a freshly rebuilt backend) reproduces the backend's
#: state bit-for-bit.  Every other call is read-only and safe to retry
#: without journaling.  ``restore_state`` mutates but is deliberately
#: absent: only the supervisor issues it, as the seed a journal suffix
#: replays on top of — journaling it would recurse.
MUTATING_CALLS = frozenset({"ingest", "delete_many", "set_ownership"})

IdBatch = Union[Sequence[int], np.ndarray]


def _id_list(local_pids: IdBatch) -> List[int]:
    """Normalize an id payload (array or list) to plain python ints."""
    if isinstance(local_pids, np.ndarray):
        return local_pids.tolist()
    return [int(pid) for pid in local_pids]


class ShardBackend:
    """One per-shard engine behind the ownership trust predicate."""

    def __init__(
        self, config: EngineConfig, shard_index: int, shard_count: int
    ) -> None:
        # The per-shard engine is an ordinary single engine: strip the
        # sharding knobs so construction cannot recurse.
        self.config = config.replace(
            shards=None,
            shard_block=None,
            shard_executor=None,
            shard_transport=None,
            shard_start_method=None,
            shard_call_timeout=None,
            shard_max_restarts=None,
            shard_fault_plan=None,
            shard_workers=None,
            shard_journal_snapshot_every=None,
        )
        self.index = shard_index
        self.topology = ShardTopology(
            eps=config.eps,
            dim=config.dim,
            rho=config.effective_rho,
            shard_count=shard_count,
            block=config.resolved_shard_block,
        )
        self._trust = self.topology.trust(shard_index)
        self.engine = Engine.open(self.config)
        # Local-id indirection.  The router addresses this shard by
        # *local* ids; normally those coincide with the engine's own
        # sequential pids.  After a snapshot restore the fresh engine
        # re-numbers from zero, so the backend keeps a bidirectional
        # map and translates at the call boundary — local ids (and
        # therefore everything the router ever sees) survive recovery
        # unchanged.  ``_identity`` short-circuits the translation on
        # the hot paths until the first restore makes it necessary.
        self._identity = True
        self._local_to_engine: dict = {}
        self._engine_to_local: dict = {}
        self._next_local = 0
        self._epoch_offset = 0

    # ------------------------------------------------------------------
    # Updates (local ids; the router owns the global id space)
    # ------------------------------------------------------------------

    def ingest(
        self,
        points: Union[Sequence[Sequence[float]], np.ndarray],
        version: Optional[int] = None,
    ) -> np.ndarray:
        """Bulk-insert this shard's slice of a batch.

        Returns the assigned local ids as an int64 array — the declared
        bulk-result form, identical under every executor and transport.
        ``version`` is the router's ownership-table stamp (checked
        against this shard's table; ``None`` skips the check).
        """
        self.topology.check_version(version)
        engine_pids = self.engine.ingest(points)
        start = self._next_local
        self._next_local += len(engine_pids)
        local = np.arange(start, self._next_local, dtype=np.int64)
        self._local_to_engine.update(zip(local.tolist(), engine_pids))
        self._engine_to_local.update(zip(engine_pids, local.tolist()))
        return local

    def delete_many(
        self, local_pids: IdBatch, version: Optional[int] = None
    ) -> None:
        """Bulk-delete by local ids (router pre-validated the batch)."""
        self.topology.check_version(version)
        ids = _id_list(local_pids)
        self.engine.delete_many([self._engine_id(i) for i in ids])
        for i in ids:
            engine_pid = self._local_to_engine.pop(i)
            del self._engine_to_local[engine_pid]

    # ------------------------------------------------------------------
    # Merge inputs
    # ------------------------------------------------------------------

    def merge_state(
        self,
        local_pids: Optional[IdBatch],
        version: Optional[int] = None,
    ) -> Tuple[Optional[MembershipFragments], GumEdgeFragment, int]:
        """Everything the router needs from this shard for one merge.

        Membership fragments for the queried local ids (``None`` when the
        query touches no point owned here), this shard's GUM edge
        fragment over its owned core cells, and the backend epoch — the
        consistency token the router checks against the update count it
        routed here, so a merge can never silently combine shards at
        different dataset versions.
        """
        self.topology.check_version(version)
        fragments = None
        if local_pids is not None:
            ids = _id_list(local_pids)
            if not self._identity:
                ids = [self._engine_id(i) for i in ids]
            fragments = self.engine.membership_fragments(
                ids, trust=self._trust
            )
            if not self._identity:
                fragments = self._fragments_to_local(fragments)
        return (
            fragments,
            self.engine.gum_edge_fragment(trust=self._trust),
            self.epoch(),
        )

    def _fragments_to_local(
        self, fragments: MembershipFragments
    ) -> MembershipFragments:
        """Rewrite a fragment set from engine pids back to local ids."""
        to_local = self._engine_to_local
        return MembershipFragments(
            fragments={
                cell: [to_local[pid] for pid in members]
                for cell, members in fragments.fragments.items()
            },
            unmatched=[to_local[pid] for pid in fragments.unmatched],
            probes=[(to_local[pid], cell) for pid, cell in fragments.probes],
        )

    # ------------------------------------------------------------------
    # Ownership and recovery state (supervisor / rebalance surface)
    # ------------------------------------------------------------------

    def set_ownership(self, version: int, overrides: dict) -> int:
        """Install a new block→shard table (a rebalance flip); journaled.

        Returns the installed version.  The trust predicate closes over
        the topology's live caches, so owned-cell decisions follow the
        new table immediately.
        """
        self.topology.apply_ownership(version, overrides)
        return self.topology.version

    def export_state(self) -> dict:
        """This shard's full recoverable state, as plain bulk data.

        The supervisor's journal-truncation path: the live point batch
        (sorted by local id) plus everything needed to re-seed a fresh
        worker — local ids, the id allocator cursor, the epoch, and the
        ownership table.  At rho=0 the clustering is a pure function of
        the live point set, so ``restore_state`` of this payload plus a
        replay of the journal suffix is bit-identical to the original
        history.
        """
        local_ids = sorted(self._local_to_engine)
        points = np.empty((len(local_ids), self.config.dim), dtype=np.float64)
        for row, local in enumerate(local_ids):
            points[row] = self.engine.point(self._local_to_engine[local])
        return {
            "points": points,
            "local_ids": np.asarray(local_ids, dtype=np.int64),
            "next_local": self._next_local,
            "epoch": self.epoch(),
            "version": self.topology.version,
            "overrides": self.topology.ownership_overrides,
        }

    def restore_state(
        self,
        points: np.ndarray,
        local_ids: np.ndarray,
        next_local: int,
        epoch: int,
        version: int,
        overrides: dict,
    ) -> None:
        """Re-seed a fresh backend from an exported snapshot.

        Only the supervisor calls this (never journaled): the engine
        re-ingests the live set in local-id order, the id maps pin the
        original local ids onto the fresh engine pids, and the epoch
        offset keeps the consistency token counting from the snapshot
        epoch rather than from zero.
        """
        engine_pids = self.engine.ingest(np.asarray(points, dtype=np.float64))
        ids = np.asarray(local_ids, dtype=np.int64).tolist()
        self._identity = False
        self._local_to_engine = dict(zip(ids, engine_pids))
        self._engine_to_local = dict(zip(engine_pids, ids))
        self._next_local = int(next_local)
        self._epoch_offset = int(epoch) - self.engine.epoch
        self.topology.apply_ownership(version, overrides)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def epoch(self) -> int:
        return self.engine.epoch + self._epoch_offset

    def size(self) -> int:
        """Live points held by this shard (owned plus halo replicas)."""
        return len(self.engine)

    def is_core(self, local_pid: int) -> bool:
        if not self._identity:
            local_pid = self._engine_id(local_pid)
        return self.engine.is_core(local_pid)

    def _engine_id(self, local_pid: int) -> int:
        """Translate one local id to the live engine pid behind it."""
        try:
            return self._local_to_engine[int(local_pid)]
        except KeyError:
            raise UnknownPointError(int(local_pid)) from None

    def stats(self):
        return self.engine.stats()

    def ping(self) -> int:
        """Liveness probe (also used to warm worker processes)."""
        return self.index

    def runtime_info(self) -> dict:
        """Where and in what state this backend actually runs.

        The regression surface for worker isolation: under the default
        ``spawn`` start method a worker reports its own pid and a fresh
        (un-inherited) module sentinel, proving the backend was rebuilt
        in-process rather than forked with the parent's state.
        """
        from repro.shard import executors

        return {
            "index": self.index,
            "pid": os.getpid(),
            "sentinel": executors.WORKER_SENTINEL,
            "backend": self.engine.backend,
        }

    def fault(self, kind: str = "plain") -> None:
        """Deliberately raise — the executors' error-relay test surface."""
        if kind == "unpicklable":
            exc = ReproError(
                "injected fault carrying an unpicklable payload"
            )
            exc.payload = lambda: None  # defeats pickle at relay time
            raise exc
        raise ReproError("injected fault")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying engine (idempotent)."""
        self.engine.close()
