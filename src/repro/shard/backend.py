"""One shard of a sharded deployment: an engine plus its trust boundary.

A :class:`ShardBackend` wraps one ordinary :class:`repro.api.Engine`
over this shard's slice of the data — every point of every cell whose
ownership block hashed here, plus halo replicas of foreign cells within
the grid's closeness reach (see :mod:`repro.shard.topology`).  Because
the halo completes the neighborhoods of all owned cells, the engine's
core-status decisions (and emptiness structures) for *owned* cells are
exactly what a single global engine computes; its view of halo cells is
advisory only.  Accordingly, every resolution the backend reports is
restricted by the ownership predicate, and anything touching foreign
territory comes back as probes/candidates for the router's boundary
merge.

The backend is the unit the executors move across process boundaries:
it is constructed from ``(config, shard_index, shard_count)`` alone and
all its method arguments and results are plain picklable data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.api.config import EngineConfig
from repro.api.engine import Engine
from repro.core.bulk import GumEdgeFragment, MembershipFragments
from repro.shard.topology import ShardTopology


class ShardBackend:
    """One per-shard engine behind the ownership trust predicate."""

    def __init__(
        self, config: EngineConfig, shard_index: int, shard_count: int
    ) -> None:
        # The per-shard engine is an ordinary single engine: strip the
        # sharding knobs so construction cannot recurse.
        self.config = config.replace(
            shards=None, shard_block=None, shard_executor=None
        )
        self.index = shard_index
        self.topology = ShardTopology(
            eps=config.eps,
            dim=config.dim,
            rho=config.effective_rho,
            shard_count=shard_count,
            block=config.resolved_shard_block,
        )
        self._trust = self.topology.trust(shard_index)
        self.engine = Engine.open(self.config)

    # ------------------------------------------------------------------
    # Updates (local ids; the router owns the global id space)
    # ------------------------------------------------------------------

    def ingest(self, points: Sequence[Sequence[float]]) -> List[int]:
        """Bulk-insert this shard's slice of a batch; returns local ids."""
        return self.engine.ingest(points)

    def delete_many(self, local_pids: Sequence[int]) -> None:
        """Bulk-delete by local ids (router pre-validated the batch)."""
        self.engine.delete_many(local_pids)

    # ------------------------------------------------------------------
    # Merge inputs
    # ------------------------------------------------------------------

    def merge_state(
        self, local_pids: Optional[Sequence[int]]
    ) -> Tuple[Optional[MembershipFragments], GumEdgeFragment, int]:
        """Everything the router needs from this shard for one merge.

        Membership fragments for the queried local ids (``None`` when the
        query touches no point owned here), this shard's GUM edge
        fragment over its owned core cells, and the engine epoch — the
        consistency token the router checks against the update count it
        routed here, so a merge can never silently combine shards at
        different dataset versions.
        """
        fragments = (
            self.engine.membership_fragments(local_pids, trust=self._trust)
            if local_pids is not None
            else None
        )
        return fragments, self.engine.gum_edge_fragment(trust=self._trust), self.epoch()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def epoch(self) -> int:
        return self.engine.epoch

    def size(self) -> int:
        """Live points held by this shard (owned plus halo replicas)."""
        return len(self.engine)

    def is_core(self, local_pid: int) -> bool:
        return self.engine.is_core(local_pid)

    def stats(self):
        return self.engine.stats()

    def ping(self) -> int:
        """Liveness probe (also used to warm worker processes)."""
        return self.index
