"""One shard of a sharded deployment: an engine plus its trust boundary.

A :class:`ShardBackend` wraps one ordinary :class:`repro.api.Engine`
over this shard's slice of the data — every point of every cell whose
ownership block hashed here, plus halo replicas of foreign cells within
the grid's closeness reach (see :mod:`repro.shard.topology`).  Because
the halo completes the neighborhoods of all owned cells, the engine's
core-status decisions (and emptiness structures) for *owned* cells are
exactly what a single global engine computes; its view of halo cells is
advisory only.  Accordingly, every resolution the backend reports is
restricted by the ownership predicate, and anything touching foreign
territory comes back as probes/candidates for the router's boundary
merge.

The backend is the unit the executors move across process boundaries:
it is constructed from ``(config, shard_index, shard_count)`` alone and
all its method arguments and results are plain data.  Bulk payloads —
point batches, id arrays, the fragment frontiers — are numpy arrays,
and :data:`BULK_CALLS` declares exactly which calls carry them, so the
shared-memory transport (:mod:`repro.shard.transport`) frames them
without guessing and the pickle transport ships them as array buffers
rather than per-element python objects.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.config import EngineConfig
from repro.api.engine import Engine
from repro.core.bulk import GumEdgeFragment, MembershipFragments
from repro.errors import ReproError
from repro.shard.topology import ShardTopology
from repro.shard.transport import BulkSpec

#: The transport contract of the executor call surface: which calls
#: carry bulk numpy payloads, and where.  ``ingest`` takes an ``(n,
#: dim)`` float64 point batch and returns an int64 local-id array;
#: ``delete_many`` takes an int64 local-id array; ``merge_state`` takes
#: an optional int64 local-id array and returns fragments whose
#: frontier coordinate arrays are the bulk of every merge.  Everything
#: else (``ping``, ``stats``, ``is_core``, ...) is control-plane only.
BULK_CALLS = {
    "ingest": BulkSpec(arg_positions=(0,), bulk_result=True),
    "delete_many": BulkSpec(arg_positions=(0,)),
    "merge_state": BulkSpec(arg_positions=(0,), bulk_result=True),
}

#: The state-mutating subset of the executor call surface — exactly the
#: calls the shard supervisor journals, because replaying them (in
#: order, against a freshly rebuilt backend) reproduces the backend's
#: state bit-for-bit.  Every other call is read-only and safe to retry
#: without journaling.  Deliberately a subset of the ``BULK_CALLS``
#: keys: the bulk-payload calls are how state moves, minus the
#: read-only ``merge_state``.
MUTATING_CALLS = frozenset({"ingest", "delete_many"})

IdBatch = Union[Sequence[int], np.ndarray]


def _id_list(local_pids: IdBatch) -> List[int]:
    """Normalize an id payload (array or list) to plain python ints."""
    if isinstance(local_pids, np.ndarray):
        return local_pids.tolist()
    return [int(pid) for pid in local_pids]


class ShardBackend:
    """One per-shard engine behind the ownership trust predicate."""

    def __init__(
        self, config: EngineConfig, shard_index: int, shard_count: int
    ) -> None:
        # The per-shard engine is an ordinary single engine: strip the
        # sharding knobs so construction cannot recurse.
        self.config = config.replace(
            shards=None,
            shard_block=None,
            shard_executor=None,
            shard_transport=None,
            shard_start_method=None,
            shard_call_timeout=None,
            shard_max_restarts=None,
            shard_fault_plan=None,
        )
        self.index = shard_index
        self.topology = ShardTopology(
            eps=config.eps,
            dim=config.dim,
            rho=config.effective_rho,
            shard_count=shard_count,
            block=config.resolved_shard_block,
        )
        self._trust = self.topology.trust(shard_index)
        self.engine = Engine.open(self.config)

    # ------------------------------------------------------------------
    # Updates (local ids; the router owns the global id space)
    # ------------------------------------------------------------------

    def ingest(self, points: Union[Sequence[Sequence[float]], np.ndarray]) -> np.ndarray:
        """Bulk-insert this shard's slice of a batch.

        Returns the assigned local ids as an int64 array — the declared
        bulk-result form, identical under every executor and transport.
        """
        return np.asarray(self.engine.ingest(points), dtype=np.int64)

    def delete_many(self, local_pids: IdBatch) -> None:
        """Bulk-delete by local ids (router pre-validated the batch)."""
        self.engine.delete_many(_id_list(local_pids))

    # ------------------------------------------------------------------
    # Merge inputs
    # ------------------------------------------------------------------

    def merge_state(
        self, local_pids: Optional[IdBatch]
    ) -> Tuple[Optional[MembershipFragments], GumEdgeFragment, int]:
        """Everything the router needs from this shard for one merge.

        Membership fragments for the queried local ids (``None`` when the
        query touches no point owned here), this shard's GUM edge
        fragment over its owned core cells, and the engine epoch — the
        consistency token the router checks against the update count it
        routed here, so a merge can never silently combine shards at
        different dataset versions.
        """
        fragments = (
            self.engine.membership_fragments(_id_list(local_pids), trust=self._trust)
            if local_pids is not None
            else None
        )
        return fragments, self.engine.gum_edge_fragment(trust=self._trust), self.epoch()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def epoch(self) -> int:
        return self.engine.epoch

    def size(self) -> int:
        """Live points held by this shard (owned plus halo replicas)."""
        return len(self.engine)

    def is_core(self, local_pid: int) -> bool:
        return self.engine.is_core(local_pid)

    def stats(self):
        return self.engine.stats()

    def ping(self) -> int:
        """Liveness probe (also used to warm worker processes)."""
        return self.index

    def runtime_info(self) -> dict:
        """Where and in what state this backend actually runs.

        The regression surface for worker isolation: under the default
        ``spawn`` start method a worker reports its own pid and a fresh
        (un-inherited) module sentinel, proving the backend was rebuilt
        in-process rather than forked with the parent's state.
        """
        from repro.shard import executors

        return {
            "index": self.index,
            "pid": os.getpid(),
            "sentinel": executors.WORKER_SENTINEL,
            "backend": self.engine.backend,
        }

    def fault(self, kind: str = "plain") -> None:
        """Deliberately raise — the executors' error-relay test surface."""
        if kind == "unpicklable":
            exc = ReproError(
                "injected fault carrying an unpicklable payload"
            )
            exc.payload = lambda: None  # defeats pickle at relay time
            raise exc
        raise ReproError("injected fault")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying engine (idempotent)."""
        self.engine.close()
