"""Shard executors: where the per-shard backends actually live.

The router never talks to a :class:`repro.shard.backend.ShardBackend`
directly; it issues ``(method, args)`` calls through an executor, so
single-process and multi-process deployments share one routing and one
merge path:

* :class:`SerialShardExecutor` holds the backends in-process and runs
  calls inline — deterministic, debuggable, zero transport cost; the
  default, and what the differential-testing harness drives.
* :class:`ProcessShardExecutor` hosts one backend per worker process
  behind a pipe, overlapping the per-shard work of every fan-out
  (:meth:`map` writes all requests before reading any reply).  Workers
  rebuild their backend from ``(config, index, count)``, so nothing but
  plain data ever crosses the pipe.

Exceptions raised inside a backend propagate to the caller unchanged
(they pickle cleanly — the unified error model is message-based); a
dead worker surfaces as :class:`repro.errors.ReproError` rather than a
hang.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
from typing import Any, List, Optional, Sequence, Tuple

from repro.api.config import EngineConfig
from repro.errors import ReproError
from repro.shard.backend import ShardBackend

#: One fan-out request: ``(method name, argument tuple)`` or ``None``
#: for "this shard sits the round out".
Call = Optional[Tuple[str, Tuple[Any, ...]]]


class SerialShardExecutor:
    """All shard backends in the calling process, called inline."""

    def __init__(self, config: EngineConfig, shard_count: int) -> None:
        self.shard_count = shard_count
        self._backends = [
            ShardBackend(config, index, shard_count)
            for index in range(shard_count)
        ]

    def call(self, shard_index: int, method: str, *args) -> Any:
        return getattr(self._backends[shard_index], method)(*args)

    def map(self, calls: Sequence[Call]) -> List[Any]:
        """One result (or ``None``) per shard, in shard order."""
        return [
            None if call is None else self.call(index, call[0], *call[1])
            for index, call in enumerate(calls)
        ]

    def close(self) -> None:
        self._backends = []


def _shard_worker(conn, config: EngineConfig, index: int, count: int) -> None:
    """Worker loop: build the backend, then serve calls until ``None``."""
    backend = ShardBackend(config, index, count)
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        method, args = message
        try:
            conn.send(("ok", getattr(backend, method)(*args)))
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            conn.send(("error", exc))
    conn.close()


class ProcessShardExecutor:
    """One dedicated worker process per shard, fan-outs overlapped."""

    def __init__(self, config: EngineConfig, shard_count: int) -> None:
        self.shard_count = shard_count
        ctx = mp.get_context()
        self._conns = []
        self._procs = []
        for index in range(shard_count):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child, config, index, shard_count),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._closed = False
        atexit.register(self.close)
        # Fail construction fast (bad config, import error in a worker)
        # instead of on the first routed batch.
        self.map([("ping", ())] * shard_count)

    def _send(self, shard_index: int, method: str, args: Tuple) -> None:
        try:
            self._conns[shard_index].send((method, args))
        except (BrokenPipeError, OSError) as exc:
            raise ReproError(
                f"shard worker {shard_index} is gone (pipe closed); "
                f"the sharded engine cannot continue"
            ) from exc

    def _recv(self, shard_index: int) -> Any:
        try:
            status, payload = self._conns[shard_index].recv()
        except EOFError as exc:
            raise ReproError(
                f"shard worker {shard_index} died mid-call; "
                f"the sharded engine cannot continue"
            ) from exc
        if status == "error":
            raise payload
        return payload

    def call(self, shard_index: int, method: str, *args) -> Any:
        self._send(shard_index, method, args)
        return self._recv(shard_index)

    def map(self, calls: Sequence[Call]) -> List[Any]:
        """One result (or ``None``) per shard, all shards in flight at once."""
        involved = []
        for index, call in enumerate(calls):
            if call is not None:
                self._send(index, call[0], call[1])
                involved.append(index)
        results: List[Any] = [None] * len(calls)
        failure: Optional[BaseException] = None
        for index in involved:
            # Always drain every reply, even after a failure: leaving a
            # response in a pipe would desynchronize the next round.
            try:
                results[index] = self._recv(index)
            except BaseException as exc:  # noqa: BLE001
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Drop the atexit reference so closed executors can be GC'd in
        # long-lived processes that open many sharded engines.
        atexit.unregister(self.close)
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - watchdog path
                proc.terminate()
        for conn in self._conns:
            conn.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
