"""Shard executors: where the per-shard backends actually live.

The router never talks to a :class:`repro.shard.backend.ShardBackend`
directly; it issues ``(method, args)`` calls through an executor, so
single-process and multi-process deployments share one routing and one
merge path:

* :class:`SerialShardExecutor` holds the backends in-process and runs
  calls inline — deterministic, debuggable, zero transport cost; the
  default, and what the differential-testing harness drives.
* :class:`ProcessShardExecutor` hosts one backend per worker process
  behind a pipe, overlapping the per-shard work of every fan-out
  (:meth:`map` writes all requests before reading any reply).  Workers
  rebuild their backend from ``(config, index, count)`` under a pinned,
  configurable start method (default ``spawn``: nothing of the parent's
  kernel-registry or jit state is inherited), so nothing but plain data
  ever crosses the pipe.

Calls cross the pipe through a :mod:`repro.shard.transport` channel
pair.  Under the ``shm`` transport (the default for this executor) the
channels frame each call: control metadata is pickled over the pipe,
bulk numpy payloads move through pooled shared-memory segments and are
rebuilt as read-only views — array bytes are never pickled in either
direction.  Under the ``pickle`` transport the channels degrade to
whole-message pickling, kept selectable so the two transports stay
measurable side by side.

**Failure surface.**  Every reply wait carries a ``poll``-based
deadline (``EngineConfig.shard_call_timeout``), so a hung worker
raises :class:`repro.errors.ShardTimeoutError` instead of hanging the
parent, and a dead worker raises :class:`ShardWorkerLost` — both
within bounded time, never a hang.  After either failure the shard's
channel is *poisoned* (a late reply from a timed-out worker would
desynchronize the request/reply alternation), and
:meth:`ProcessShardExecutor.restart_worker` is the recovery primitive:
kill the straggler (terminate, then SIGKILL if it does not land),
respawn the worker on a fresh pipe under the pinned start method with
a bumped *incarnation* number, and fail fast on its liveness ping.
The :class:`repro.shard.supervisor.ShardSupervisor` drives it and
replays the shard's journal to rebuild state exactly.

Exceptions raised inside a backend propagate to the caller unchanged
when they pickle; an exception that defeats pickling is relayed as a
:class:`repro.errors.ReproError` carrying its ``repr`` and traceback
text (instead of killing the send and surfacing as a fake worker
death).  ``close()`` is idempotent — safe after double-close and after
worker death, escalates terminate → kill on stragglers, releases every
``Process`` object, and is guaranteed to unlink every shared-memory
segment (they are all parent-owned).  Calls on a closed executor raise
a clear :class:`ReproError` instead of tripping over torn-down
internals.

Fault injection (:mod:`repro.shard.faults`): when the config resolves
a fault plan, each worker consults a per-incarnation injector before
dispatching a call — the chaos-test surface that proves the recovery
path, at zero cost when no plan is set.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
from typing import Any, List, Optional, Sequence, Tuple

from repro.api.config import EngineConfig
from repro.errors import ReproError, ShardTimeoutError
from repro.shard.backend import BULK_CALLS, ShardBackend
from repro.shard.faults import injector_for
from repro.shard.transport import (
    ParentChannel,
    SegmentPool,
    WorkerChannel,
)

#: One fan-out request: ``(method name, argument tuple)`` or ``None``
#: for "this shard sits the round out".
Call = Optional[Tuple[str, Tuple[Any, ...]]]

#: Worker-isolation sentinel: workers report this through
#: ``runtime_info``.  A parent that mutates it before opening a
#: process executor must *not* see the mutation reflected back under
#: the default ``spawn`` start method — the regression test that
#: backends are rebuilt fresh in-worker.
WORKER_SENTINEL = "fresh"

#: Floor (seconds) on the deadline of a worker's *first* reply — the
#: liveness ping after a spawn or respawn.  A cold ``spawn`` start
#: imports the whole package in the child, which can dwarf a tight
#: ``shard_call_timeout`` tuned for steady-state calls; startup still
#: fails in bounded time, just against a realistic bound.
STARTUP_TIMEOUT_FLOOR = 60.0

#: How long (seconds) each escalation step of a worker teardown waits:
#: graceful join after the shutdown sentinel, join after terminate,
#: join after kill.
REAP_TIMEOUT = 5.0


class ShardWorkerLost(ReproError):
    """A shard worker process died or its channel is unusable.

    Distinct from a *relayed* backend exception (the worker survives
    those): this is the executor diagnosing the worker itself — pipe
    closed on send, EOF mid-reply, or a poisoned channel after an
    earlier timeout.  Together with
    :class:`repro.errors.ShardTimeoutError` it is exactly the failure
    set the supervisor treats as recoverable by restart-and-replay.
    """


#: The failures recovery applies to.  Anything else an executor call
#: raises is a relayed backend exception and propagates untouched.
RECOVERABLE_FAILURES = (ShardWorkerLost, ShardTimeoutError)


class SerialShardExecutor:
    """All shard backends in the calling process, called inline."""

    def __init__(self, config: EngineConfig, shard_count: int) -> None:
        self.shard_count = shard_count
        self.transport = "inline"
        self._config = config
        self._backends = [
            ShardBackend(config, index, shard_count)
            for index in range(shard_count)
        ]
        self._restarts = [0] * shard_count
        self._closed = False

    def _ensure_open(self) -> None:
        if self._closed:
            raise ReproError(
                "this serial shard executor is closed; calls after "
                "close() are a lifecycle bug in the caller"
            )

    def restart_worker(self, shard_index: int) -> None:
        """Replace one backend with a freshly built (empty) one.

        In-process twin of the process/tcp restart primitive, so the
        supervisor's journal/snapshot recovery can be driven (and
        tested) without spawning anything.
        """
        self._ensure_open()
        self._backends[shard_index].close()
        self._backends[shard_index] = ShardBackend(
            self._config, shard_index, self.shard_count
        )
        self._restarts[shard_index] += 1

    def restart_count(self, shard_index: int) -> int:
        return self._restarts[shard_index]

    def call(self, shard_index: int, method: str, *args) -> Any:
        self._ensure_open()
        return getattr(self._backends[shard_index], method)(*args)

    def map(self, calls: Sequence[Call]) -> List[Any]:
        """One result (or ``None``) per shard, in shard order."""
        self._ensure_open()
        return [
            None if call is None else self.call(index, call[0], *call[1])
            for index, call in enumerate(calls)
        ]

    def close(self) -> None:
        """Close every per-shard engine; idempotent."""
        if self._closed:
            return
        self._closed = True
        for backend in self._backends:
            backend.close()
        self._backends = []


def _shard_worker(
    conn,
    config: EngineConfig,
    index: int,
    count: int,
    transport: str,
    fault_spec: Optional[str] = None,
    incarnation: int = 0,
) -> None:
    """Worker loop: build the backend, then serve calls until ``None``.

    ``incarnation`` counts respawns of this shard's worker (0 for the
    original); the fault injector uses it so a plan's rules arm, by
    default, only in the incarnation that has not yet crashed — which
    is what keeps journal replay from re-triggering the fault it is
    recovering from.
    """
    backend = ShardBackend(config, index, count)
    channel = WorkerChannel(conn, BULK_CALLS, shm_enabled=(transport == "shm"))
    injector = injector_for(fault_spec, index, incarnation)
    while True:
        try:
            request = channel.recv_call()
        except EOFError:
            break
        if request is None:
            break
        method, args = request
        if injector is not None:
            try:
                injector.fire(method)
            except BaseException as exc:  # noqa: BLE001 - injected 'error'
                try:
                    channel.send_error(exc)
                except (BrokenPipeError, OSError):
                    break
                continue
        try:
            result = getattr(backend, method)(*args)
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            try:
                channel.send_error(exc)
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            channel.send_ok(method, result)
        except (BrokenPipeError, OSError, EOFError):
            break
        except Exception as exc:  # noqa: BLE001 - reply framing failed
            try:
                channel.send_error(
                    ReproError(
                        f"shard {index} failed to frame a reply for "
                        f"{method!r}: {exc!r}"
                    )
                )
            except (BrokenPipeError, OSError):
                break
    # Release the last request's payload views before detaching: a view
    # is an exported pointer into the segment mmap, and the mmap cannot
    # close underneath one.
    request = args = result = None  # noqa: F841
    channel.close()
    backend.close()
    conn.close()


class ProcessShardExecutor:
    """One dedicated worker process per shard, fan-outs overlapped."""

    def __init__(self, config: EngineConfig, shard_count: int) -> None:
        self.shard_count = shard_count
        self.transport = config.resolved_shard_transport
        self.start_method = config.resolved_shard_start_method
        self.call_timeout = config.resolved_shard_call_timeout
        self._fault_spec = config.resolved_shard_fault_plan
        self._config = config
        self._ctx = mp.get_context(self.start_method)
        self._pool: Optional[SegmentPool] = (
            SegmentPool() if self.transport == "shm" else None
        )
        self._channels: List[Optional[ParentChannel]] = [None] * shard_count
        self._procs: List[Optional[mp.process.BaseProcess]] = [None] * shard_count
        self._incarnations: List[int] = [0] * shard_count
        #: A poisoned channel saw a timeout or EOF: its request/reply
        #: alternation can no longer be trusted (a late reply may still
        #: arrive), so sends fail until restart_worker replaces it.
        self._poisoned: List[bool] = [False] * shard_count
        self._closed = False
        atexit.register(self.close)
        # Fail construction fast (bad config, import error in a worker)
        # instead of on the first routed batch — and if it does fail,
        # tear down whatever was already started: without the close()
        # here, the started workers and the segment pool would leak
        # until interpreter exit.
        try:
            for index in range(shard_count):
                self._spawn(index)
            for index in range(shard_count):
                self._send(index, "ping", ())
            for index in range(shard_count):
                self._recv(index, timeout=self._startup_timeout())
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _startup_timeout(self) -> float:
        return max(self.call_timeout, STARTUP_TIMEOUT_FLOOR)

    def _spawn(self, index: int) -> None:
        """Start shard ``index``'s worker on a fresh pipe."""
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                child,
                self._config,
                index,
                self.shard_count,
                self.transport,
                self._fault_spec,
                self._incarnations[index],
            ),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        proc.start()
        child.close()
        self._channels[index] = ParentChannel(parent, self._pool, BULK_CALLS)
        self._procs[index] = proc
        self._poisoned[index] = False

    def _reap(self, proc, graceful: bool) -> None:
        """Make one worker process fully gone and release its handle.

        ``graceful`` first waits for a clean exit (the shutdown
        sentinel was sent); then terminate, then — for a worker that
        ignores SIGTERM, e.g. one that is SIGSTOP'd — SIGKILL.  The
        final ``proc.close()`` releases the ``Process`` object so a
        long-lived parent opening many executors leaks nothing.
        """
        if proc is None:
            return
        if graceful:
            proc.join(timeout=REAP_TIMEOUT)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=REAP_TIMEOUT)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=REAP_TIMEOUT)
        try:
            proc.close()
        except ValueError:  # pragma: no cover - unkillable process
            pass

    def restart_worker(self, index: int) -> None:
        """Kill shard ``index``'s worker and respawn it, state empty.

        The recovery primitive the supervisor drives after a death or
        timeout: the straggler is reaped (terminate, then kill), its
        channel's segment leases return to the pool, and a fresh
        worker starts on a fresh pipe with a bumped incarnation
        number.  Fails fast — within the startup deadline — if the
        respawned worker does not answer its liveness ping.  The new
        worker's backend is *empty*; rebuilding its state is the
        caller's job (the supervisor replays its journal).
        """
        self._ensure_open()
        self._reap(self._procs[index], graceful=False)
        self._procs[index] = None
        channel = self._channels[index]
        if channel is not None:
            try:
                channel.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            channel.release_leases()
            self._channels[index] = None
        self._incarnations[index] += 1
        self._spawn(index)
        self._send(index, "ping", ())
        self._recv(index, timeout=self._startup_timeout())

    def restart_count(self, index: int) -> int:
        """How many times shard ``index``'s worker has been respawned."""
        return self._incarnations[index]

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ReproError(
                "this process shard executor is closed; calls after "
                "close() are a lifecycle bug in the caller"
            )

    def _send(self, shard_index: int, method: str, args: Tuple) -> None:
        if self._poisoned[shard_index]:
            raise ShardWorkerLost(
                f"shard worker {shard_index}'s channel is poisoned by an "
                f"earlier timeout or death; the worker must be restarted "
                f"before it can serve calls again"
            )
        try:
            self._channels[shard_index].send_call(method, args)
        except (BrokenPipeError, OSError) as exc:
            self._poisoned[shard_index] = True
            raise ShardWorkerLost(
                f"shard worker {shard_index} is gone (pipe closed)"
            ) from exc

    def _recv(self, shard_index: int, timeout: Optional[float] = None) -> Any:
        if timeout is None:
            timeout = self.call_timeout
        try:
            return self._channels[shard_index].recv_reply(timeout=timeout)
        except EOFError as exc:
            self._poisoned[shard_index] = True
            raise ShardWorkerLost(
                f"shard worker {shard_index} died mid-call"
            ) from exc
        except ShardTimeoutError as exc:
            self._poisoned[shard_index] = True
            raise ShardTimeoutError(
                f"shard worker {shard_index} did not reply within "
                f"{timeout:g}s (shard_call_timeout); the worker is hung "
                f"and must be restarted before it can serve calls again"
            ) from exc

    def call(self, shard_index: int, method: str, *args) -> Any:
        self._ensure_open()
        self._send(shard_index, method, args)
        return self._recv(shard_index)

    def map_scatter(self, calls: Sequence[Call]) -> List[Any]:
        """One outcome per shard: results and *failures*, never a raise.

        The supervised fan-out primitive: every involved shard's reply
        is drained (leaving one in a pipe would desynchronize the next
        round), and a shard's failure comes back as the exception
        object in its slot instead of aborting the whole round — so
        the supervisor can recover exactly the shards that failed and
        keep every healthy shard's result.
        """
        self._ensure_open()
        results: List[Any] = [None] * len(calls)
        involved = []
        for index, call in enumerate(calls):
            if call is None:
                continue
            try:
                self._send(index, call[0], call[1])
            except RECOVERABLE_FAILURES as exc:
                results[index] = exc
                continue
            involved.append(index)
        for index in involved:
            try:
                results[index] = self._recv(index)
            except BaseException as exc:  # noqa: BLE001
                results[index] = exc
        return results

    def map(self, calls: Sequence[Call]) -> List[Any]:
        """One result (or ``None``) per shard, all shards in flight at once.

        Raises the first failure in shard order (after draining every
        reply); unsupervised deployments keep their fail-fast
        behavior, supervised ones go through :meth:`map_scatter`.
        """
        results = self.map_scatter(calls)
        for outcome in results:
            if isinstance(outcome, BaseException):
                raise outcome
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down workers and unlink every segment; idempotent.

        Healthy workers get the shutdown sentinel and a graceful join;
        stragglers are escalated terminate → kill, and every
        ``Process`` object is released (``proc.close()``) so nothing
        leaks in long-lived parents — even after worker crashes or
        hangs.
        """
        if self._closed:
            return
        self._closed = True
        # Drop the atexit reference so closed executors can be GC'd in
        # long-lived processes that open many sharded engines.
        atexit.unregister(self.close)
        for index, channel in enumerate(self._channels):
            if channel is None or self._poisoned[index]:
                continue
            try:
                channel.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for index, proc in enumerate(self._procs):
            # A poisoned shard's worker is hung or dead: skip the
            # graceful wait and go straight to terminate/kill.
            self._reap(proc, graceful=not self._poisoned[index])
            self._procs[index] = None
        for index, channel in enumerate(self._channels):
            if channel is None:
                continue
            try:
                channel.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._channels[index] = None
        # Last: every segment is parent-owned, so this unlinks the whole
        # payload plane even if workers crashed mid-call.
        if self._pool is not None:
            self._pool.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
