"""Shard executors: where the per-shard backends actually live.

The router never talks to a :class:`repro.shard.backend.ShardBackend`
directly; it issues ``(method, args)`` calls through an executor, so
single-process and multi-process deployments share one routing and one
merge path:

* :class:`SerialShardExecutor` holds the backends in-process and runs
  calls inline — deterministic, debuggable, zero transport cost; the
  default, and what the differential-testing harness drives.
* :class:`ProcessShardExecutor` hosts one backend per worker process
  behind a pipe, overlapping the per-shard work of every fan-out
  (:meth:`map` writes all requests before reading any reply).  Workers
  rebuild their backend from ``(config, index, count)`` under a pinned,
  configurable start method (default ``spawn``: nothing of the parent's
  kernel-registry or jit state is inherited), so nothing but plain data
  ever crosses the pipe.

Calls cross the pipe through a :mod:`repro.shard.transport` channel
pair.  Under the ``shm`` transport (the default for this executor) the
channels frame each call: control metadata is pickled over the pipe,
bulk numpy payloads move through pooled shared-memory segments and are
rebuilt as read-only views — array bytes are never pickled in either
direction.  Under the ``pickle`` transport the channels degrade to
whole-message pickling, kept selectable so the two transports stay
measurable side by side.

Exceptions raised inside a backend propagate to the caller unchanged
when they pickle; an exception that defeats pickling is relayed as a
:class:`repro.errors.ReproError` carrying its ``repr`` and traceback
text (instead of killing the send and surfacing as a fake worker
death).  A dead worker surfaces as :class:`ReproError` rather than a
hang, and ``close()`` is idempotent — safe after double-close and after
worker death, and guaranteed to unlink every shared-memory segment
(they are all parent-owned).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
from typing import Any, List, Optional, Sequence, Tuple

from repro.api.config import EngineConfig
from repro.errors import ReproError
from repro.shard.backend import BULK_CALLS, ShardBackend
from repro.shard.transport import (
    ParentChannel,
    SegmentPool,
    WorkerChannel,
)

#: One fan-out request: ``(method name, argument tuple)`` or ``None``
#: for "this shard sits the round out".
Call = Optional[Tuple[str, Tuple[Any, ...]]]

#: Worker-isolation sentinel: workers report this through
#: ``runtime_info``.  A parent that mutates it before opening a
#: process executor must *not* see the mutation reflected back under
#: the default ``spawn`` start method — the regression test that
#: backends are rebuilt fresh in-worker.
WORKER_SENTINEL = "fresh"


class SerialShardExecutor:
    """All shard backends in the calling process, called inline."""

    def __init__(self, config: EngineConfig, shard_count: int) -> None:
        self.shard_count = shard_count
        self.transport = "inline"
        self._backends = [
            ShardBackend(config, index, shard_count)
            for index in range(shard_count)
        ]
        self._closed = False

    def call(self, shard_index: int, method: str, *args) -> Any:
        return getattr(self._backends[shard_index], method)(*args)

    def map(self, calls: Sequence[Call]) -> List[Any]:
        """One result (or ``None``) per shard, in shard order."""
        return [
            None if call is None else self.call(index, call[0], *call[1])
            for index, call in enumerate(calls)
        ]

    def close(self) -> None:
        """Close every per-shard engine; idempotent."""
        if self._closed:
            return
        self._closed = True
        for backend in self._backends:
            backend.close()
        self._backends = []


def _shard_worker(
    conn, config: EngineConfig, index: int, count: int, transport: str
) -> None:
    """Worker loop: build the backend, then serve calls until ``None``."""
    backend = ShardBackend(config, index, count)
    channel = WorkerChannel(conn, BULK_CALLS, shm_enabled=(transport == "shm"))
    while True:
        try:
            request = channel.recv_call()
        except EOFError:
            break
        if request is None:
            break
        method, args = request
        try:
            result = getattr(backend, method)(*args)
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            try:
                channel.send_error(exc)
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            channel.send_ok(method, result)
        except (BrokenPipeError, OSError, EOFError):
            break
        except Exception as exc:  # noqa: BLE001 - reply framing failed
            try:
                channel.send_error(
                    ReproError(
                        f"shard {index} failed to frame a reply for "
                        f"{method!r}: {exc!r}"
                    )
                )
            except (BrokenPipeError, OSError):
                break
    # Release the last request's payload views before detaching: a view
    # is an exported pointer into the segment mmap, and the mmap cannot
    # close underneath one.
    request = args = result = None  # noqa: F841
    channel.close()
    backend.close()
    conn.close()


class ProcessShardExecutor:
    """One dedicated worker process per shard, fan-outs overlapped."""

    def __init__(self, config: EngineConfig, shard_count: int) -> None:
        self.shard_count = shard_count
        self.transport = config.resolved_shard_transport
        self.start_method = config.resolved_shard_start_method
        ctx = mp.get_context(self.start_method)
        self._pool: Optional[SegmentPool] = (
            SegmentPool() if self.transport == "shm" else None
        )
        self._channels: List[ParentChannel] = []
        self._procs = []
        for index in range(shard_count):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child, config, index, shard_count, self.transport),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            proc.start()
            child.close()
            self._channels.append(ParentChannel(parent, self._pool, BULK_CALLS))
            self._procs.append(proc)
        self._closed = False
        atexit.register(self.close)
        # Fail construction fast (bad config, import error in a worker)
        # instead of on the first routed batch.
        self.map([("ping", ())] * shard_count)

    def _send(self, shard_index: int, method: str, args: Tuple) -> None:
        try:
            self._channels[shard_index].send_call(method, args)
        except (BrokenPipeError, OSError) as exc:
            raise ReproError(
                f"shard worker {shard_index} is gone (pipe closed); "
                f"the sharded engine cannot continue"
            ) from exc

    def _recv(self, shard_index: int) -> Any:
        try:
            return self._channels[shard_index].recv_reply()
        except EOFError as exc:
            raise ReproError(
                f"shard worker {shard_index} died mid-call; "
                f"the sharded engine cannot continue"
            ) from exc

    def call(self, shard_index: int, method: str, *args) -> Any:
        self._send(shard_index, method, args)
        return self._recv(shard_index)

    def map(self, calls: Sequence[Call]) -> List[Any]:
        """One result (or ``None``) per shard, all shards in flight at once."""
        involved = []
        for index, call in enumerate(calls):
            if call is not None:
                self._send(index, call[0], call[1])
                involved.append(index)
        results: List[Any] = [None] * len(calls)
        failure: Optional[BaseException] = None
        for index in involved:
            # Always drain every reply, even after a failure: leaving a
            # response in a pipe would desynchronize the next round.
            try:
                results[index] = self._recv(index)
            except BaseException as exc:  # noqa: BLE001
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        return results

    def close(self) -> None:
        """Shut down workers and unlink every segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        # Drop the atexit reference so closed executors can be GC'd in
        # long-lived processes that open many sharded engines.
        atexit.unregister(self.close)
        for channel in self._channels:
            try:
                channel.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - watchdog path
                proc.terminate()
        for channel in self._channels:
            channel.conn.close()
        # Last: every segment is parent-owned, so this unlinks the whole
        # payload plane even if workers crashed mid-call.
        if self._pool is not None:
            self._pool.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
