"""Deterministic cell-ownership topology of a sharded deployment.

Cells are grouped into axis-aligned *blocks* of ``block`` cells per
axis; each block is owned by exactly one shard, chosen by a
deterministic integer hash of the block coordinates (splitmix64 mixed
per axis — pure arithmetic, so every process, machine and run agrees
without relying on ``PYTHONHASHSEED``).  Batch-level cell dedup routes
through :func:`repro.kernels.pack_cell_keys`, the same monotone packing
the bucketing kernel uses.

Beyond ownership the topology answers the *replication* question: which
shards must see a point so that every shard computes exact core status
for the cells it owns.  A point influences counts only within the grid
closeness reach (``reach`` cells per axis, the Chebyshev radius of the
close-cell neighborhood, derived with the grid's own arithmetic so the
two can never disagree); a point is therefore replicated to every shard
owning a block that intersects the reach box around its cell.  Owned
cells see their full neighborhoods, making owned core status — and the
emptiness structures over owned core sets — authoritative; everything a
shard knows about *foreign* (halo) cells is advisory and is re-decided
at the router's boundary merge.

On top of the pure hash sits a **versioned ownership table**: a sparse
map of per-block overrides plus a monotonically increasing version.
:meth:`assign_block` migrates one block to an explicit shard and bumps
the version; the router stamps the version into every routed
data-plane call and workers reject mismatches with
:class:`repro.errors.StaleOwnershipError`, so a live ``rebalance`` is
an atomic flip — transfer the block's influence set, then broadcast
the new table — with drift caught at the call boundary instead of
corrupting a merge.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.core.grid import Cell, Grid
from repro.errors import ConfigError, StaleOwnershipError
from repro.kernels import pack_cell_keys

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a uint64 array (wrapping arithmetic)."""
    x = (x + _SPLITMIX_GAMMA) & np.uint64(0xFFFFFFFFFFFFFFFF)
    x ^= x >> np.uint64(30)
    x *= _SPLITMIX_M1
    x ^= x >> np.uint64(27)
    x *= _SPLITMIX_M2
    x ^= x >> np.uint64(31)
    return x


def _hash_rows(rows: np.ndarray) -> np.ndarray:
    """Order-sensitive per-axis splitmix64 chain over integer rows."""
    h = np.zeros(len(rows), dtype=np.uint64)
    for axis in range(rows.shape[1]):
        h = _splitmix64(h ^ rows[:, axis].astype(np.int64).view(np.uint64))
    return h


class ShardTopology:
    """Pure cell-to-shard geometry shared by router and shard backends.

    Construction is cheap and deterministic from ``(grid params,
    shard_count, block)`` alone, so the router and every worker process
    build identical topologies independently — nothing about ownership
    ever crosses a process boundary.
    """

    def __init__(
        self, eps: float, dim: int, rho: float, shard_count: int, block: int
    ) -> None:
        self.shard_count = shard_count
        self.block = block
        self.grid = Grid(eps, dim, rho)
        self.dim = dim
        # Chebyshev radius of the close-cell neighborhood, derived with
        # the exact arithmetic of Grid.cell_min_sq_dist: the largest
        # per-axis offset whose boundary gap stays within the closeness
        # threshold.  Cells farther than `reach` on any axis can never
        # be close, so the reach box bounds every cross-cell influence
        # (ball counts, emptiness probes, GUM witnesses).
        side = self.grid.side
        sq_threshold = self.grid.threshold * self.grid.threshold
        gap = 0
        while True:
            g = (gap + 1) * side
            if g * g > sq_threshold:
                break
            gap += 1
        self.reach = gap + 1
        # Versioned ownership table: the hash decides every block not
        # explicitly overridden; rebalancing installs overrides and
        # bumps the version.  Version 0 with no overrides is the pure
        # hash every process derives independently.
        self.version = 0
        self._overrides: Dict[Cell, int] = {}
        self._owner_cache: Dict[Cell, int] = {}
        self._block_owner_cache: Dict[Cell, int] = {}
        self._replica_cache: Dict[Cell, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------

    def _owners_of_blocks(self, blocks: np.ndarray) -> np.ndarray:
        owners = (
            _hash_rows(blocks) % np.uint64(self.shard_count)
        ).astype(np.int64)
        for block, shard in self._overrides.items():
            mask = np.all(
                blocks == np.asarray(block, dtype=np.int64), axis=1
            )
            if mask.any():
                owners[mask] = shard
        return owners

    @property
    def ownership_overrides(self) -> Dict[Cell, int]:
        """A copy of the table's explicit block→shard overrides."""
        return dict(self._overrides)

    def check_version(self, version) -> None:
        """Reject a routed call stamped with a non-current table version."""
        if version is not None and int(version) != self.version:
            raise StaleOwnershipError(
                f"ownership table is at version {self.version} but the "
                f"call was routed under version {int(version)}; the "
                f"router and this shard disagree about block ownership"
            )

    def assign_block(self, block: Cell, shard_index: int) -> int:
        """Migrate one block to an explicit owner; returns the new version.

        Pure table surgery — transferring the block's points is the
        router's job (see ``ShardRouter.rebalance``).  Assigning a
        block back to its hash owner still records an override: the
        version must move forward so every party re-syncs.
        """
        if not (0 <= shard_index < self.shard_count):
            raise ConfigError(
                f"cannot assign block {block!r} to shard {shard_index}: "
                f"deployment has {self.shard_count} shards"
            )
        if len(block) != self.dim:
            raise ConfigError(
                f"block {block!r} has {len(block)} axes; topology is "
                f"{self.dim}-dimensional"
            )
        overrides = dict(self._overrides)
        overrides[tuple(int(b) for b in block)] = int(shard_index)
        self.apply_ownership(self.version + 1, overrides)
        return self.version

    def apply_ownership(
        self, version: int, overrides: Mapping[Cell, int]
    ) -> None:
        """Install a complete ownership table (worker-side flip).

        Replaces the override map wholesale and drops every derived
        cache; the version may only move forward (equal is a no-op
        replay of the current table, smaller is a stale flip).
        """
        version = int(version)
        if version < self.version:
            raise StaleOwnershipError(
                f"refusing to move the ownership table backwards: at "
                f"version {self.version}, asked to install {version}"
            )
        self._overrides = {
            tuple(int(b) for b in block): int(shard)
            for block, shard in overrides.items()
        }
        self.version = version
        self._owner_cache.clear()
        self._block_owner_cache.clear()
        self._replica_cache.clear()

    def owner_of_block(self, block: Cell) -> int:
        owner = self._block_owner_cache.get(block)
        if owner is None:
            row = np.asarray([block], dtype=np.int64)
            owner = int(self._owners_of_blocks(row)[0])
            self._block_owner_cache[block] = owner
        return owner

    def block_of(self, cell: Cell) -> Cell:
        """The ownership block covering a cell (floor division per axis)."""
        b = self.block
        return tuple(c // b for c in cell)

    def owner_of_cell(self, cell: Cell) -> int:
        """The shard owning a cell (authoritative for its core status)."""
        owner = self._owner_cache.get(cell)
        if owner is None:
            owner = self._owner_cache[cell] = self.owner_of_block(
                self.block_of(cell)
            )
        return owner

    def owners_of_cells(self, cells: np.ndarray) -> np.ndarray:
        """Vectorized owner shard per cell row (``(n, dim)`` int array).

        Cell rows are deduplicated through the monotone
        :func:`pack_cell_keys` packing before hashing, so a batch
        concentrated in few cells pays for few hashes.
        """
        if len(cells) == 0:
            return np.empty(0, dtype=np.int64)
        keys = pack_cell_keys(cells)
        if keys is None:  # astronomically spread cells: hash every row
            return self._owners_of_blocks(cells // self.block)
        _, first_idx, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        owners = self._owners_of_blocks(cells[first_idx] // self.block)
        return owners[inverse.ravel()]

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def replica_shards(self, cell: Cell) -> Tuple[int, ...]:
        """Every shard that must hold the points of ``cell`` (sorted).

        The owners of all blocks intersecting the closeness-reach box
        around the cell: the owner itself plus the shards for which the
        cell is halo — their owned cells' exact ball counts (and the
        router's boundary merge) need its points.
        """
        shards = self._replica_cache.get(cell)
        if shards is None:
            r, b = self.reach, self.block
            axis_blocks: List[List[int]] = [
                list(range((c - r) // b, (c + r) // b + 1)) for c in cell
            ]
            span = 1
            for axis in axis_blocks:
                span *= len(axis)
            if span == 1:
                shards = (self.owner_of_block(tuple(a[0] for a in axis_blocks)),)
            else:
                # One vectorized hash over the whole candidate-block box
                # (small blocks at high dimension make the box large).
                grids = np.meshgrid(
                    *[np.asarray(a, dtype=np.int64) for a in axis_blocks],
                    indexing="ij",
                )
                rows = np.stack([g.ravel() for g in grids], axis=1)
                owners = self._owners_of_blocks(rows)
                shards = tuple(sorted(int(s) for s in np.unique(owners)))
            self._replica_cache[cell] = shards
        return shards

    def trust(self, shard_index: int):
        """The ownership predicate one shard resolves under."""
        owner_of_cell = self.owner_of_cell
        return lambda cell: owner_of_cell(cell) == shard_index
