"""Supervised worker recovery: journal, restart, exact replay.

A single worker death used to brick the whole sharded engine, and a
hung worker hung the parent with it.  The
:class:`ShardSupervisor` sits between the router and the
:class:`repro.shard.executors.ProcessShardExecutor` and turns both
failures into a bounded, provably-exact recovery:

* **Journal.**  Every state-mutating call
  (:data:`repro.shard.backend.MUTATING_CALLS` — ``ingest`` /
  ``delete_many``) that *succeeds* is appended to a per-shard
  write-ahead journal.  A shard worker is a pure function of its call
  history — it is constructed from ``(config, index, count)`` alone
  and every engine update path is deterministic — so the journal *is*
  the shard's state, in replayable form.
* **Recovery.**  When a call fails with a recoverable failure
  (:class:`repro.shard.executors.ShardWorkerLost` — the worker died —
  or :class:`repro.errors.ShardTimeoutError` — it hung), the
  supervisor has the executor kill the straggler and respawn the
  worker (fresh pipe, bumped incarnation), replays the shard's
  journal against the empty backend, and retries the in-flight call.
  Replay rebuilds state *exactly*: at ``rho = 0`` the recovered
  deployment's query and snapshot sequences are bit-identical to an
  unsharded engine's, the same differential bar the router already
  clears — proven by the chaos suite under injected crashes and
  hangs.  Whether the dying worker had half-applied the failed call
  is irrelevant: its state is discarded wholesale and rebuilt from
  calls that are known to have succeeded.
* **Bounds.**  Restarts are budgeted per shard
  (``EngineConfig.shard_max_restarts``); exhausting the budget raises
  a :class:`repro.errors.ReproError` that names it.  A budget of 0
  disables recovery — the fail-fast pre-supervision behavior.
  Restart counts surface in ``ShardedStats.restarts`` and
  ``RunResult.restarts``.

Relayed *backend* exceptions (a bad batch, an injected ``error``
fault) are not failures of the worker and propagate untouched — the
worker survived them, nothing needs rebuilding.

* **Truncation.**  The journal holds references to the routed argument
  arrays, so left unchecked its memory footprint would grow linearly
  with update history — a leak in any long-lived deployment.  Instead,
  after every ``shard_journal_snapshot_every`` journaled mutations on
  a shard the supervisor drains that worker's state through
  ``export_state`` (points + local ids + epoch + ownership table,
  deep-copied out of the transport's buffers), stores it as the
  shard's *snapshot*, and truncates the journal.  The drain is
  deferred to the shard's *next* dispatch: right after a call the
  caller still holds that reply's transport views, and an immediate
  ``export_state`` on the same channel would overwrite them in place.  Recovery then seeds
  the fresh worker with ``restore_state`` and replays only the journal
  suffix.  At ``rho = 0`` the clustering is a pure function of the
  live point set and local ids survive the restore via the backend's
  id indirection, so snapshot-plus-suffix recovery stays bit-identical
  — the chaos suite proves it.  ``journal_size`` is therefore bounded
  by the knob, regardless of history length.

The journal/replay contract is executor-agnostic: the supervisor
drives :class:`repro.shard.executors.ProcessShardExecutor` (respawn a
local worker process) and :class:`repro.shard.rpc.TcpShardExecutor`
(reconnect a remote worker's session) identically.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.config import EngineConfig
from repro.errors import ReproError
from repro.shard.backend import MUTATING_CALLS
from repro.shard.executors import RECOVERABLE_FAILURES, Call


class ShardSupervisor:
    """Executor wrapper adding journaling and restart-with-replay.

    Exposes the executor surface the router drives (``call`` / ``map``
    / ``shard_count`` / ``transport`` / ``close``), so supervision is
    invisible to the routing and merge paths — it changes only what
    happens when a worker dies or hangs.
    """

    def __init__(self, executor, config: EngineConfig) -> None:
        self._executor = executor
        self.shard_count = executor.shard_count
        self.max_restarts = config.resolved_shard_max_restarts
        self.snapshot_every = config.resolved_shard_journal_snapshot_every
        self._journal: List[List[Tuple[str, Tuple[Any, ...]]]] = [
            [] for _ in range(executor.shard_count)
        ]
        self._snapshots: List[Optional[Dict[str, Any]]] = [
            None
        ] * executor.shard_count
        self._snapshot_due = [False] * executor.shard_count
        self._restarts = [0] * executor.shard_count

    # ------------------------------------------------------------------
    # Introspection (delegated or supervision-specific)
    # ------------------------------------------------------------------

    @property
    def executor(self):
        """The supervised executor (escape hatch for tests/tools)."""
        return self._executor

    @property
    def transport(self) -> str:
        return self._executor.transport

    @property
    def start_method(self) -> Optional[str]:
        # The tcp executor never spawns processes, so it has none.
        return getattr(self._executor, "start_method", None)

    @property
    def restarts(self) -> int:
        """Worker restarts performed over this deployment's lifetime."""
        return sum(self._restarts)

    @property
    def restarts_per_shard(self) -> Tuple[int, ...]:
        return tuple(self._restarts)

    def journal_size(self, shard_index: int) -> int:
        """Journaled mutating calls held for one shard (test surface).

        Bounded by ``snapshot_every``: reaching it schedules a
        snapshot that truncates the journal back to empty at the
        shard's next dispatch (deferred so the caller's live reply
        views are never clobbered).
        """
        return len(self._journal[shard_index])

    def has_snapshot(self, shard_index: int) -> bool:
        """Whether truncation has produced a snapshot for this shard."""
        return self._snapshots[shard_index] is not None

    def snapshot_epoch(self, shard_index: int) -> Optional[int]:
        """The epoch the shard's snapshot was captured at (test surface)."""
        snapshot = self._snapshots[shard_index]
        return None if snapshot is None else int(snapshot["epoch"])

    # ------------------------------------------------------------------
    # Recovery core
    # ------------------------------------------------------------------

    def _recover(self, shard_index: int, cause: BaseException) -> None:
        """Restart shard ``shard_index`` and replay its journal.

        Loops (within the budget) because the respawn ping or the
        replay itself can fail recoverably again — e.g. a fault plan
        pinned to a later incarnation.  Every attempt restarts from an
        empty backend, so a partial previous replay leaves nothing
        behind.
        """
        while True:
            if self._restarts[shard_index] >= self.max_restarts:
                raise ReproError(
                    f"shard {shard_index} exhausted its restart budget "
                    f"(shard_max_restarts={self.max_restarts}) and cannot "
                    f"be recovered; last failure: {cause}"
                ) from cause
            self._restarts[shard_index] += 1
            try:
                self._executor.restart_worker(shard_index)
                snapshot = self._snapshots[shard_index]
                if snapshot is not None:
                    # Seed the empty backend with the truncation
                    # snapshot, then replay only the journal suffix.
                    # restore_state is issued directly (never
                    # journaled): it is the base the journal sits on.
                    self._executor.call(
                        shard_index,
                        "restore_state",
                        snapshot["points"],
                        snapshot["local_ids"],
                        snapshot["next_local"],
                        snapshot["epoch"],
                        snapshot["version"],
                        snapshot["overrides"],
                    )
                for method, args in self._journal[shard_index]:
                    self._executor.call(shard_index, method, *args)
                return
            except RECOVERABLE_FAILURES as exc:
                cause = exc
            except ReproError as exc:
                # A journaled call failing on replay means the replayed
                # state diverged from the recorded history — that is a
                # supervision bug, not a worker failure; do not retry.
                raise ReproError(
                    f"journal replay diverged while recovering shard "
                    f"{shard_index}: a call that previously succeeded "
                    f"failed on replay ({exc})"
                ) from exc

    def _attempt(
        self, shard_index: int, method: str, args: Tuple[Any, ...]
    ) -> Any:
        """One call, recovering-and-retrying until success or budget end."""
        while True:
            try:
                return self._executor.call(shard_index, method, *args)
            except RECOVERABLE_FAILURES as exc:
                self._recover(shard_index, exc)

    def _record(self, shard_index: int, call: Tuple[str, Tuple]) -> None:
        if call[0] in MUTATING_CALLS:
            self._journal[shard_index].append((call[0], call[1]))
            if len(self._journal[shard_index]) >= self.snapshot_every:
                # Do NOT snapshot here: the caller still holds the
                # reply views of the call just recorded, and issuing
                # export_state on the same channel would overwrite
                # them in place.  Defer to the next dispatch, when the
                # transport contract says those views are dead.
                self._snapshot_due[shard_index] = True

    def _flush_due_snapshot(self, shard_index: int) -> None:
        if self._snapshot_due[shard_index]:
            self._snapshot_due[shard_index] = False
            self._take_snapshot(shard_index)

    def _take_snapshot(self, shard_index: int) -> None:
        """Drain one shard's state and truncate its journal.

        The exported arrays can be transport views (shm pages, receive
        buffers) valid only until the next call on that shard's
        channel, so everything is deep-copied into parent-owned memory
        before the journal lets go of the history it summarizes.
        """
        state = self._attempt(shard_index, "export_state", ())
        self._snapshots[shard_index] = {
            key: np.array(value, copy=True)
            if isinstance(value, np.ndarray)
            else (dict(value) if isinstance(value, dict) else value)
            for key, value in state.items()
        }
        self._journal[shard_index] = []

    # ------------------------------------------------------------------
    # The executor surface
    # ------------------------------------------------------------------

    def call(self, shard_index: int, method: str, *args) -> Any:
        self._flush_due_snapshot(shard_index)
        result = self._attempt(shard_index, method, args)
        self._record(shard_index, (method, args))
        return result

    def map(self, calls: Sequence[Call]) -> List[Any]:
        """One result (or ``None``) per shard, failures recovered per shard.

        The healthy shards' results from the overlapped fan-out are
        kept; each failed shard is restarted, replayed and retried
        individually.  Only a shard whose *retry chain* exhausts the
        budget (or a relayed backend exception) surfaces — first in
        shard order, matching the executor's own ``map``.
        """
        for index, call in enumerate(calls):
            if call is not None:
                self._flush_due_snapshot(index)
        outcomes = self._executor.map_scatter(calls)
        failure = None
        for index, call in enumerate(calls):
            if call is None:
                continue
            outcome = outcomes[index]
            if isinstance(outcome, RECOVERABLE_FAILURES):
                try:
                    self._recover(index, outcome)
                    outcome = self._attempt(index, call[0], call[1])
                except BaseException as exc:  # noqa: BLE001
                    if failure is None:
                        failure = exc
                    continue
            elif isinstance(outcome, BaseException):
                if failure is None:
                    failure = outcome
                continue
            outcomes[index] = outcome
            self._record(index, call)
        if failure is not None:
            raise failure
        return outcomes

    def close(self) -> None:
        self._executor.close()
