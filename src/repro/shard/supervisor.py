"""Supervised worker recovery: journal, restart, exact replay.

A single worker death used to brick the whole sharded engine, and a
hung worker hung the parent with it.  The
:class:`ShardSupervisor` sits between the router and the
:class:`repro.shard.executors.ProcessShardExecutor` and turns both
failures into a bounded, provably-exact recovery:

* **Journal.**  Every state-mutating call
  (:data:`repro.shard.backend.MUTATING_CALLS` — ``ingest`` /
  ``delete_many``) that *succeeds* is appended to a per-shard
  write-ahead journal.  A shard worker is a pure function of its call
  history — it is constructed from ``(config, index, count)`` alone
  and every engine update path is deterministic — so the journal *is*
  the shard's state, in replayable form.
* **Recovery.**  When a call fails with a recoverable failure
  (:class:`repro.shard.executors.ShardWorkerLost` — the worker died —
  or :class:`repro.errors.ShardTimeoutError` — it hung), the
  supervisor has the executor kill the straggler and respawn the
  worker (fresh pipe, bumped incarnation), replays the shard's
  journal against the empty backend, and retries the in-flight call.
  Replay rebuilds state *exactly*: at ``rho = 0`` the recovered
  deployment's query and snapshot sequences are bit-identical to an
  unsharded engine's, the same differential bar the router already
  clears — proven by the chaos suite under injected crashes and
  hangs.  Whether the dying worker had half-applied the failed call
  is irrelevant: its state is discarded wholesale and rebuilt from
  calls that are known to have succeeded.
* **Bounds.**  Restarts are budgeted per shard
  (``EngineConfig.shard_max_restarts``); exhausting the budget raises
  a :class:`repro.errors.ReproError` that names it.  A budget of 0
  disables recovery — the fail-fast pre-supervision behavior.
  Restart counts surface in ``ShardedStats.restarts`` and
  ``RunResult.restarts``.

Relayed *backend* exceptions (a bad batch, an injected ``error``
fault) are not failures of the worker and propagate untouched — the
worker survived them, nothing needs rebuilding.

The journal holds references to the routed argument arrays, so its
memory footprint grows with update history; snapshot-based truncation
is the ROADMAP follow-on, alongside reusing this supervision layer for
the planned RPC executor (the journal/replay contract is
transport-agnostic).
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.api.config import EngineConfig
from repro.errors import ReproError
from repro.shard.backend import MUTATING_CALLS
from repro.shard.executors import (
    RECOVERABLE_FAILURES,
    Call,
    ProcessShardExecutor,
)


class ShardSupervisor:
    """Executor wrapper adding journaling and restart-with-replay.

    Exposes the executor surface the router drives (``call`` / ``map``
    / ``shard_count`` / ``transport`` / ``close``), so supervision is
    invisible to the routing and merge paths — it changes only what
    happens when a worker dies or hangs.
    """

    def __init__(
        self, executor: ProcessShardExecutor, config: EngineConfig
    ) -> None:
        self._executor = executor
        self.shard_count = executor.shard_count
        self.max_restarts = config.resolved_shard_max_restarts
        self._journal: List[List[Tuple[str, Tuple[Any, ...]]]] = [
            [] for _ in range(executor.shard_count)
        ]
        self._restarts = [0] * executor.shard_count

    # ------------------------------------------------------------------
    # Introspection (delegated or supervision-specific)
    # ------------------------------------------------------------------

    @property
    def executor(self) -> ProcessShardExecutor:
        """The supervised executor (escape hatch for tests/tools)."""
        return self._executor

    @property
    def transport(self) -> str:
        return self._executor.transport

    @property
    def start_method(self) -> str:
        return self._executor.start_method

    @property
    def restarts(self) -> int:
        """Worker restarts performed over this deployment's lifetime."""
        return sum(self._restarts)

    @property
    def restarts_per_shard(self) -> Tuple[int, ...]:
        return tuple(self._restarts)

    def journal_size(self, shard_index: int) -> int:
        """Journaled mutating calls held for one shard (test surface)."""
        return len(self._journal[shard_index])

    # ------------------------------------------------------------------
    # Recovery core
    # ------------------------------------------------------------------

    def _recover(self, shard_index: int, cause: BaseException) -> None:
        """Restart shard ``shard_index`` and replay its journal.

        Loops (within the budget) because the respawn ping or the
        replay itself can fail recoverably again — e.g. a fault plan
        pinned to a later incarnation.  Every attempt restarts from an
        empty backend, so a partial previous replay leaves nothing
        behind.
        """
        while True:
            if self._restarts[shard_index] >= self.max_restarts:
                raise ReproError(
                    f"shard {shard_index} exhausted its restart budget "
                    f"(shard_max_restarts={self.max_restarts}) and cannot "
                    f"be recovered; last failure: {cause}"
                ) from cause
            self._restarts[shard_index] += 1
            try:
                self._executor.restart_worker(shard_index)
                for method, args in self._journal[shard_index]:
                    self._executor.call(shard_index, method, *args)
                return
            except RECOVERABLE_FAILURES as exc:
                cause = exc
            except ReproError as exc:
                # A journaled call failing on replay means the replayed
                # state diverged from the recorded history — that is a
                # supervision bug, not a worker failure; do not retry.
                raise ReproError(
                    f"journal replay diverged while recovering shard "
                    f"{shard_index}: a call that previously succeeded "
                    f"failed on replay ({exc})"
                ) from exc

    def _attempt(
        self, shard_index: int, method: str, args: Tuple[Any, ...]
    ) -> Any:
        """One call, recovering-and-retrying until success or budget end."""
        while True:
            try:
                return self._executor.call(shard_index, method, *args)
            except RECOVERABLE_FAILURES as exc:
                self._recover(shard_index, exc)

    def _record(self, shard_index: int, call: Tuple[str, Tuple]) -> None:
        if call[0] in MUTATING_CALLS:
            self._journal[shard_index].append((call[0], call[1]))

    # ------------------------------------------------------------------
    # The executor surface
    # ------------------------------------------------------------------

    def call(self, shard_index: int, method: str, *args) -> Any:
        result = self._attempt(shard_index, method, args)
        self._record(shard_index, (method, args))
        return result

    def map(self, calls: Sequence[Call]) -> List[Any]:
        """One result (or ``None``) per shard, failures recovered per shard.

        The healthy shards' results from the overlapped fan-out are
        kept; each failed shard is restarted, replayed and retried
        individually.  Only a shard whose *retry chain* exhausts the
        budget (or a relayed backend exception) surfaces — first in
        shard order, matching the executor's own ``map``.
        """
        outcomes = self._executor.map_scatter(calls)
        failure = None
        for index, call in enumerate(calls):
            if call is None:
                continue
            outcome = outcomes[index]
            if isinstance(outcome, RECOVERABLE_FAILURES):
                try:
                    self._recover(index, outcome)
                    outcome = self._attempt(index, call[0], call[1])
                except BaseException as exc:  # noqa: BLE001
                    if failure is None:
                        failure = exc
                    continue
            elif isinstance(outcome, BaseException):
                if failure is None:
                    failure = outcome
                continue
            outcomes[index] = outcome
            self._record(index, call)
        if failure is not None:
            raise failure
        return outcomes

    def close(self) -> None:
        self._executor.close()
