"""Distributed TCP shard executor: one remote worker process per shard.

The ROADMAP's "millions-of-users" step: the executor interface is tiny
(``call`` / ``map`` / ``map_scatter`` over plain data), so this module
turns the PR 5–7 process-pool deployment into a genuinely distributed
one by speaking the same call surface over sockets.  Workers are
launched out-of-band (``python -m repro shard-worker --port P``, one
per shard, on any host) and the parent connects with
``shard_executor="tcp"`` plus ``shard_workers=["host:port", ...]``.

**Wire format.**  Every message is a length-prefixed (8-byte
big-endian) pickled *control frame* followed by one raw *payload
frame* per bulk numpy array::

    parent -> worker:  ("hello", config, index, count, incarnation, fault_spec)
                       ("call", method, control)
                       ("bye",)
    worker -> parent:  ("ready", index)
                       ("ok", control)
                       ("error", exception)

The control/payload split reuses the exact descriptor framing of the
shm transport (:mod:`repro.shard.transport`): the declared bulk
positions of :data:`repro.shard.backend.BULK_CALLS` are walked with
``_extract``, every ndarray is replaced by a ``_Ref`` placeholder and
its ``(dtype, shape)`` descriptor rides the control frame; the bytes
themselves are streamed raw — **array data is never pickled in either
direction** — and rebuilt on receipt as read-only views over the
received buffers.

**Failure surface** mirrors :class:`ProcessShardExecutor` exactly:
every reply wait is deadline-bounded (``shard_call_timeout`` →
:class:`repro.errors.ShardTimeoutError`), a dead worker or reset
connection raises :class:`ShardWorkerLost`, and either failure poisons
the shard's connection until :meth:`TcpShardExecutor.restart_worker`
reconnects it.  Reconnecting starts a *fresh session*: the worker
rebuilds its backend from the hello (state empty, incarnation bumped),
so the :class:`repro.shard.supervisor.ShardSupervisor` recovers a
remote worker exactly as it respawns a local one — snapshot restore
plus journal replay.  An injected ``crash`` fault aborts the serving
session (state discarded, parent sees EOF) while the listener
survives, modeling a platform supervisor that restarts the worker
process on the same address.

Workers trust their parent: the control frames are pickles, so a
worker must only ever be reachable from the deployment's own router
(bind to loopback or a private interface, as the quickstart does).
"""

from __future__ import annotations

import contextlib
import pickle
import socket
import struct
import subprocess
import sys
import time
import traceback
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.config import EngineConfig
from repro.errors import ConfigError, ReproError, ShardTimeoutError
from repro.shard.backend import BULK_CALLS, ShardBackend
from repro.shard.executors import (
    RECOVERABLE_FAILURES,
    STARTUP_TIMEOUT_FLOOR,
    Call,
    ShardWorkerLost,
)
from repro.shard.faults import injector_for
from repro.shard.transport import _extract, _plant

#: How long a connect attempt sleeps before retrying, while the
#: startup deadline has not expired.  Covers both cold start (worker
#: still binding its listener) and recovery (a platform supervisor
#: restarting a crashed worker on the same address).
_CONNECT_RETRY_SECONDS = 0.05

_LENGTH = struct.Struct(">Q")


class _SessionCrash(Exception):
    """Injected ``crash`` inside a tcp worker: abort the session only."""


def _recv_exact(sock: socket.socket, n: int, deadline: Optional[float]) -> bytearray:
    """Read exactly ``n`` bytes; EOFError on close, timeout on deadline."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardTimeoutError("no reply within the deadline")
            sock.settimeout(remaining)
        else:
            sock.settimeout(None)
        try:
            count = sock.recv_into(view[got:])
        except socket.timeout:
            raise ShardTimeoutError("no reply within the deadline") from None
        if count == 0:
            raise EOFError("connection closed mid-message")
        got += count
    return buf


def _recv_frame(sock: socket.socket, deadline: Optional[float]) -> bytearray:
    header = _recv_exact(sock, _LENGTH.size, deadline)
    (length,) = _LENGTH.unpack(bytes(header))
    if length == 0:
        return bytearray()
    return _recv_exact(sock, length, deadline)


def write_message(
    sock: socket.socket, header: Any, arrays: Sequence[np.ndarray]
) -> None:
    """One control frame (pickled, with payload descriptors) + raw arrays.

    The pickle is built *before* any byte hits the socket, so a
    pickling failure leaves the stream clean — the error-relay
    fallback depends on that.
    """
    desc = [(arr.dtype.str, arr.shape) for arr in arrays]
    blob = pickle.dumps((header, desc), protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(blob)) + blob)
    for arr in arrays:
        sock.sendall(_LENGTH.pack(arr.nbytes))
        if arr.nbytes:
            sock.sendall(memoryview(arr).cast("B"))


def read_message(
    sock: socket.socket, deadline: Optional[float] = None
) -> Tuple[Any, List[np.ndarray]]:
    """One message back: the control header plus read-only array views.

    The views own their receive buffers, so — unlike shm views — they
    stay valid for as long as the caller holds them.
    """
    header, desc = pickle.loads(bytes(_recv_frame(sock, deadline)))
    views: List[np.ndarray] = []
    for dtype_str, shape in desc:
        dt = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        buf = _recv_frame(sock, deadline)
        flat = np.frombuffer(buf, dtype=dt, count=count)
        flat.flags.writeable = False
        views.append(flat.reshape(shape))
    return header, views


def _frame_args(method: str, args: Tuple[Any, ...]):
    """Split call args into (control, arrays) per the declared bulk spec."""
    spec = BULK_CALLS.get(method)
    if spec is None or not spec.arg_positions:
        return args, []
    arrays: List[np.ndarray] = []
    control = tuple(
        _extract(arg, arrays) if i in spec.arg_positions else arg
        for i, arg in enumerate(args)
    )
    return control, arrays


def _frame_result(method: str, result: Any):
    """Split a call result into (control, arrays) per the bulk spec."""
    spec = BULK_CALLS.get(method)
    if spec is None or not spec.bulk_result:
        return result, []
    arrays: List[np.ndarray] = []
    return _extract(result, arrays), arrays


class TcpShardExecutor:
    """One externally launched TCP worker per shard, fan-outs overlapped.

    Mirrors :class:`repro.shard.executors.ProcessShardExecutor`'s call
    and failure surface (``call`` / ``map`` / ``map_scatter`` /
    ``restart_worker`` / poisoned channels), but the workers live
    behind ``shard_workers`` addresses instead of pipes — the executor
    never spawns or reaps a process, it only (re)connects sessions.
    """

    def __init__(self, config: EngineConfig, shard_count: int) -> None:
        self.shard_count = shard_count
        self.transport = "tcp"
        self.call_timeout = config.resolved_shard_call_timeout
        self._fault_spec = config.resolved_shard_fault_plan
        self._config = config
        self._addresses = config.resolved_shard_workers
        if len(self._addresses) != shard_count:
            raise ConfigError(
                f"{len(self._addresses)} shard worker addresses for "
                f"{shard_count} shards; exactly one worker per shard is "
                f"required"
            )
        self._socks: List[Optional[socket.socket]] = [None] * shard_count
        self._incarnations: List[int] = [0] * shard_count
        self._poisoned: List[bool] = [False] * shard_count
        self._closed = False
        try:
            for index in range(shard_count):
                self._connect(index)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def _startup_timeout(self) -> float:
        return max(self.call_timeout, STARTUP_TIMEOUT_FLOOR)

    def _connect(self, index: int) -> None:
        """Open shard ``index``'s session: connect, hello, await ready.

        Retries the connect within the startup deadline, so both a
        worker that is still binding its listener and one being
        restarted by its platform supervisor are tolerated.
        """
        host, port = self._addresses[index]
        deadline = time.monotonic() + self._startup_timeout()
        while True:
            try:
                sock = socket.create_connection(
                    (host, port), timeout=max(deadline - time.monotonic(), 0.001)
                )
                break
            except (OSError, socket.timeout) as exc:
                if time.monotonic() >= deadline:
                    raise ShardWorkerLost(
                        f"cannot reach shard worker {index} at "
                        f"{host}:{port} within {self._startup_timeout():g}s; "
                        f"is 'python -m repro shard-worker' running there?"
                    ) from exc
                time.sleep(_CONNECT_RETRY_SECONDS)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            write_message(
                sock,
                (
                    "hello",
                    self._config,
                    index,
                    self.shard_count,
                    self._incarnations[index],
                    self._fault_spec,
                ),
                [],
            )
            header, _ = read_message(
                sock, deadline=time.monotonic() + self._startup_timeout()
            )
        except (
            ConnectionError,
            OSError,
            EOFError,
            pickle.UnpicklingError,
        ) as exc:
            sock.close()
            raise ShardWorkerLost(
                f"shard worker {index} at {host}:{port} did not complete "
                f"the session handshake"
            ) from exc
        if header[0] == "error":
            sock.close()
            raise header[1]
        if header[0] != "ready" or header[1] != index:
            sock.close()
            raise ShardWorkerLost(
                f"shard worker {index} at {host}:{port} answered the "
                f"hello with {header!r}"
            )
        self._socks[index] = sock
        self._poisoned[index] = False

    def restart_worker(self, index: int) -> None:
        """Drop shard ``index``'s session and open a fresh one.

        The recovery primitive the supervisor drives after a death or
        timeout.  The new session's backend is *empty* (the worker
        rebuilds it per hello, incarnation bumped); rebuilding its
        state is the caller's job — the supervisor restores the last
        snapshot and replays the journal suffix.
        """
        self._ensure_open()
        sock = self._socks[index]
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._socks[index] = None
        self._incarnations[index] += 1
        self._connect(index)

    def restart_count(self, index: int) -> int:
        """How many times shard ``index``'s session has been reopened."""
        return self._incarnations[index]

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ReproError(
                "this tcp shard executor is closed; calls after close() "
                "are a lifecycle bug in the caller"
            )

    def _send(self, shard_index: int, method: str, args: Tuple) -> None:
        if self._poisoned[shard_index]:
            raise ShardWorkerLost(
                f"shard worker {shard_index}'s connection is poisoned by "
                f"an earlier timeout or disconnect; the session must be "
                f"reopened before it can serve calls again"
            )
        sock = self._socks[shard_index]
        control, arrays = _frame_args(method, args)
        try:
            # Bound the send too: a worker that stopped reading (hung
            # with full buffers) must not block the parent forever.
            sock.settimeout(self.call_timeout)
            write_message(sock, ("call", method, control), arrays)
        except socket.timeout as exc:
            self._poisoned[shard_index] = True
            raise ShardTimeoutError(
                f"shard worker {shard_index} did not accept a call within "
                f"{self.call_timeout:g}s (shard_call_timeout)"
            ) from exc
        except (ConnectionError, BrokenPipeError, OSError) as exc:
            self._poisoned[shard_index] = True
            raise ShardWorkerLost(
                f"shard worker {shard_index} is gone (connection closed)"
            ) from exc

    def _recv(self, shard_index: int, timeout: Optional[float] = None) -> Any:
        if timeout is None:
            timeout = self.call_timeout
        sock = self._socks[shard_index]
        try:
            header, views = read_message(
                sock, deadline=time.monotonic() + timeout
            )
        except EOFError as exc:
            self._poisoned[shard_index] = True
            raise ShardWorkerLost(
                f"shard worker {shard_index} died mid-call"
            ) from exc
        # ShardTimeoutError subclasses TimeoutError (an OSError), so it
        # must be told apart before the generic connection failures.
        except ShardTimeoutError as exc:
            self._poisoned[shard_index] = True
            raise ShardTimeoutError(
                f"shard worker {shard_index} did not reply within "
                f"{timeout:g}s (shard_call_timeout); the worker is hung "
                f"and its session must be reopened before it can serve "
                f"calls again"
            ) from exc
        except (ConnectionError, OSError) as exc:
            self._poisoned[shard_index] = True
            raise ShardWorkerLost(
                f"shard worker {shard_index}'s connection failed mid-call"
            ) from exc
        tag = header[0]
        if tag == "error":
            raise header[1]
        return _plant(header[1], views)

    def call(self, shard_index: int, method: str, *args) -> Any:
        self._ensure_open()
        self._send(shard_index, method, args)
        return self._recv(shard_index)

    def map_scatter(self, calls: Sequence[Call]) -> List[Any]:
        """One outcome per shard: results and *failures*, never a raise.

        Identical contract to the process executor's: every involved
        shard's reply is drained, and a shard's failure comes back as
        the exception object in its slot so the supervisor can recover
        exactly the shards that failed.
        """
        self._ensure_open()
        results: List[Any] = [None] * len(calls)
        involved = []
        for index, call in enumerate(calls):
            if call is None:
                continue
            try:
                self._send(index, call[0], call[1])
            except RECOVERABLE_FAILURES as exc:
                results[index] = exc
                continue
            involved.append(index)
        for index in involved:
            try:
                results[index] = self._recv(index)
            except BaseException as exc:  # noqa: BLE001
                results[index] = exc
        return results

    def map(self, calls: Sequence[Call]) -> List[Any]:
        """One result (or ``None``) per shard, all shards in flight at once.

        Raises the first failure in shard order, after draining every
        reply.
        """
        results = self.map_scatter(calls)
        for outcome in results:
            if isinstance(outcome, BaseException):
                raise outcome
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """End every session; idempotent.  Workers themselves live on —
        they are external processes serving one session after another.
        """
        if self._closed:
            return
        self._closed = True
        for index, sock in enumerate(self._socks):
            if sock is None:
                continue
            if not self._poisoned[index]:
                try:
                    sock.settimeout(1.0)
                    write_message(sock, ("bye",), [])
                except (ConnectionError, OSError, socket.timeout):
                    pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self._socks[index] = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _send_error(sock: socket.socket, exc: BaseException) -> None:
    """Relay an exception without letting the relay kill the session.

    The pickle is built before any byte is written, so an unpicklable
    exception falls back to a :class:`ReproError` carrying the repr and
    traceback text — the stream stays in sync either way.
    """
    try:
        write_message(sock, ("error", exc), [])
    except (ConnectionError, BrokenPipeError, OSError):
        raise
    except Exception:
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        write_message(
            sock,
            (
                "error",
                ReproError(
                    f"shard backend raised an exception that could not be "
                    f"relayed over the socket: {exc!r}\n"
                    f"--- original traceback ---\n{detail}"
                ),
            ),
        )


def _serve_session(conn: socket.socket) -> None:
    """Serve one executor session: hello, then calls until bye/EOF.

    Each session owns a freshly built backend; ending the session (bye,
    EOF, or an injected crash) discards it — which is exactly the
    "worker restarted, state empty" contract the supervisor's
    snapshot-plus-replay recovery is built for.
    """
    try:
        header, _ = read_message(conn)
    except (EOFError, ConnectionError, OSError, pickle.UnpicklingError):
        return
    if not isinstance(header, tuple) or header[0] != "hello":
        with contextlib.suppress(ConnectionError, OSError):
            _send_error(
                conn, ReproError(f"expected a hello frame, got {header!r}")
            )
        return
    _, config, index, count, incarnation, fault_spec = header
    try:
        backend = ShardBackend(config, index, count)
        injector = injector_for(fault_spec, index, incarnation)
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        with contextlib.suppress(ConnectionError, OSError):
            _send_error(conn, exc)
        return
    try:
        write_message(conn, ("ready", index), [])
        while True:
            try:
                header, views = read_message(conn)
            except (EOFError, ConnectionError, OSError):
                return
            if not isinstance(header, tuple) or header[0] == "bye":
                return
            _, method, control = header
            args = _plant(control, views)
            if injector is not None:
                try:
                    injector.fire(method, on_crash=_raise_session_crash)
                except _SessionCrash:
                    # Abort without replying: the parent sees EOF, the
                    # state dies with the session, and the listener
                    # lives on to accept the recovery connection.
                    return
                except BaseException as exc:  # noqa: BLE001 - injected error
                    try:
                        _send_error(conn, exc)
                    except (ConnectionError, BrokenPipeError, OSError):
                        return
                    continue
            try:
                result = getattr(backend, method)(*args)
            except BaseException as exc:  # noqa: BLE001 - relayed
                try:
                    _send_error(conn, exc)
                except (ConnectionError, BrokenPipeError, OSError):
                    return
                continue
            control, arrays = _frame_result(method, result)
            try:
                write_message(conn, ("ok", control), arrays)
            except (ConnectionError, BrokenPipeError, OSError):
                return
            except Exception as exc:  # noqa: BLE001 - reply framing failed
                try:
                    _send_error(
                        conn,
                        ReproError(
                            f"shard {index} failed to frame a reply for "
                            f"{method!r}: {exc!r}"
                        ),
                    )
                except (ConnectionError, BrokenPipeError, OSError):
                    return
    finally:
        backend.close()


def _raise_session_crash() -> None:
    raise _SessionCrash()


def serve_worker(
    host: str = "127.0.0.1", port: int = 0, *, once: bool = False
) -> None:
    """Run one shard worker: bind, announce, serve sessions forever.

    The ``python -m repro shard-worker`` entry point.  ``port=0`` binds
    an ephemeral port; the chosen address is announced on stdout as
    ``shard worker listening on host:port`` (flushed), which is how the
    test/CI launcher discovers it.  One session is served at a time —
    an executor owns its worker for the session's lifetime — and the
    listener survives session failures, so a supervisor's reconnect
    always has somewhere to land.  ``once`` returns after the first
    session ends (tests).
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listener.bind((host, port))
        listener.listen(8)
        bound_host, bound_port = listener.getsockname()[:2]
        print(
            f"shard worker listening on {bound_host}:{bound_port}",
            flush=True,
        )
        while True:
            conn, _ = listener.accept()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                _serve_session(conn)
            finally:
                with contextlib.suppress(OSError):
                    conn.close()
            if once:
                return
    finally:
        with contextlib.suppress(OSError):
            listener.close()


# ----------------------------------------------------------------------
# Local worker launching (tests, CI, the quickstart)
# ----------------------------------------------------------------------


def spawn_worker_process(port: int = 0, host: str = "127.0.0.1"):
    """Launch one ``python -m repro shard-worker`` subprocess.

    Returns ``(process, "host:port")`` once the worker has announced
    its listening address.  ``port=0`` lets the worker pick a free
    ephemeral port.
    """
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "shard-worker",
            "--host",
            host,
            "--port",
            str(port),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    while True:
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            raise ReproError(
                f"shard worker exited with status {proc.returncode} "
                f"before announcing its address"
            )
        if "listening on" in line:
            address = line.rsplit(" ", 1)[-1].strip()
            return proc, address


def terminate_worker_process(proc) -> None:
    """Stop a worker launched by :func:`spawn_worker_process`."""
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - straggler
            proc.kill()
            proc.wait()
    if proc.stdout is not None:
        proc.stdout.close()


@contextlib.contextmanager
def local_workers(count: int):
    """``count`` localhost workers on ephemeral ports, reaped on exit.

    Yields the ``["host:port", ...]`` list ready for the
    ``shard_workers`` config knob.
    """
    procs = []
    addresses = []
    try:
        for _ in range(count):
            proc, address = spawn_worker_process()
            procs.append(proc)
            addresses.append(address)
        yield addresses
    finally:
        for proc in procs:
            terminate_worker_process(proc)


__all__ = [
    "TcpShardExecutor",
    "local_workers",
    "read_message",
    "serve_worker",
    "spawn_worker_process",
    "terminate_worker_process",
    "write_message",
]
