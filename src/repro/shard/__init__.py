"""repro.shard — horizontal scale-out behind the ``repro.api`` surface.

A sharded deployment partitions the cell registry across N per-shard
:class:`repro.api.Engine` instances by a deterministic hash of cell
ownership blocks, replicates halo cells so every shard computes exact
core status for what it owns, and merges per-shard GUM edge fragments
and per-cell query fragments at the boundary — at ``rho = 0`` the
merged results are bit-identical to a single engine's (proven by the
randomized differential harness in ``tests/test_shard_equivalence.py``).

Open one through the front door with the ``shards`` knob::

    import repro.api

    engine = repro.api.open(
        algorithm="full", eps=3.0, minpts=5, dim=2,
        shards=4, shard_executor="process",
    )
    pids = engine.ingest(points)        # routed + halo-replicated
    outcome = engine.cgroup_by(pids)    # merged, epoch-stamped

Layering: :class:`ShardTopology` (versioned ownership/halo geometry) →
:class:`ShardBackend` (one engine behind its trust predicate) →
executors (in-process serial, one worker process per shard, or one
remote TCP worker per shard via :class:`TcpShardExecutor`) →
:class:`ShardSupervisor` (per-shard journal with snapshot truncation,
deadline-bounded calls, restart/reconnect with exact replay) →
:class:`ShardRouter` (global id space, routing, boundary merge, online
``rebalance``) → :class:`ShardedEngine` (the ``repro.api``-shaped
facade).

Failures are first-class: a hung worker raises
:class:`repro.errors.ShardTimeoutError` within the configured
deadline, a dead one is respawned and rebuilt by journal replay
(bounded by ``shard_max_restarts``), and :mod:`repro.shard.faults`
injects crashes/hangs/delays/errors on a declarative schedule so the
chaos suite can prove recovery stays bit-identical at ``rho = 0``.
"""

from __future__ import annotations

from repro.shard.backend import ShardBackend
from repro.shard.engine import SHARD_EXECUTOR_CHOICES, ShardedEngine, ShardedStats
from repro.shard.executors import ProcessShardExecutor, SerialShardExecutor
from repro.shard.faults import FaultRule, parse_fault_plan
from repro.shard.router import ShardRouter
from repro.shard.rpc import TcpShardExecutor, local_workers, serve_worker
from repro.shard.supervisor import ShardSupervisor
from repro.shard.topology import ShardTopology

__all__ = [
    "SHARD_EXECUTOR_CHOICES",
    "FaultRule",
    "ProcessShardExecutor",
    "SerialShardExecutor",
    "ShardBackend",
    "ShardRouter",
    "ShardSupervisor",
    "ShardTopology",
    "ShardedEngine",
    "ShardedStats",
    "TcpShardExecutor",
    "local_workers",
    "parse_fault_plan",
    "serve_worker",
]
