"""Naive fully-dynamic connectivity: adjacency sets + lazy BFS relabeling.

Serves two purposes:

* the **correctness oracle** for :class:`repro.connectivity.hdt.HDTConnectivity`
  in property tests, and
* the **ablation baseline** showing why the paper needs a poly-log CC
  structure (this one pays O(V + E) on the first query after any edge
  deletion).

Component labels are recomputed lazily: edge insertions merge labels via a
cheap union-find-free shortcut when possible, and any deletion marks the
labeling dirty so the next query triggers a full BFS sweep.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterator, Set


class NaiveConnectivity:
    """BFS-based dynamic connectivity with the CC-structure interface."""

    def __init__(self) -> None:
        self._adj: Dict[Hashable, Set[Hashable]] = {}
        self._label: Dict[Hashable, int] = {}
        self._dirty = False
        self._next_label = 0

    def __contains__(self, v: Hashable) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def vertices(self) -> Iterator[Hashable]:
        return iter(self._adj)

    @property
    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return u in self._adj and v in self._adj[u]

    def add_vertex(self, v: Hashable) -> None:
        if v in self._adj:
            raise KeyError(f"vertex {v!r} already present")
        self._adj[v] = set()
        self._label[v] = self._next_label
        self._next_label += 1

    def remove_vertex(self, v: Hashable) -> None:
        """Remove an isolated vertex (raises if it still has edges)."""
        if self._adj[v]:
            raise ValueError(f"vertex {v!r} still has incident edges")
        del self._adj[v]
        del self._label[v]

    def insert_edge(self, u: Hashable, v: Hashable) -> None:
        if u == v:
            raise ValueError("self-loops are not allowed")
        if v in self._adj[u]:
            raise KeyError(f"edge ({u!r}, {v!r}) already present")
        self._adj[u].add(v)
        self._adj[v].add(u)
        if not self._dirty and self._label[u] != self._label[v]:
            # Relabel the smaller-labelled side eagerly only when clean and
            # small; otherwise just mark dirty.
            self._dirty = True

    def delete_edge(self, u: Hashable, v: Hashable) -> None:
        if v not in self._adj[u]:
            raise KeyError(f"edge ({u!r}, {v!r}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._dirty = True

    def _refresh(self) -> None:
        if not self._dirty:
            return
        seen: Set[Hashable] = set()
        for start in self._adj:
            if start in seen:
                continue
            label = self._next_label
            self._next_label += 1
            queue = deque([start])
            seen.add(start)
            while queue:
                x = queue.popleft()
                self._label[x] = label
                for y in self._adj[x]:
                    if y not in seen:
                        seen.add(y)
                        queue.append(y)
        self._dirty = False

    def connected(self, u: Hashable, v: Hashable) -> bool:
        self._refresh()
        return self._label[u] == self._label[v]

    def component_id(self, v: Hashable) -> int:
        """A component id stable until the next structural change."""
        self._refresh()
        return self._label[v]

    def component_count(self) -> int:
        self._refresh()
        return len(set(self._label.values()))
