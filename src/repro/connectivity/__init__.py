"""Connected-component (CC) structures for the grid graph (Section 4.2).

Three interchangeable implementations of the CC-structure contract:

* :class:`UnionFind` — semi-dynamic (no ``EdgeRemove``), Tarjan's
  union-by-rank with path compression; used by Theorem 1's algorithm.
* :class:`HDTConnectivity` — fully-dynamic poly-log connectivity of Holm,
  de Lichtenberg & Thorup (JACM 2001), built on treap Euler-tour trees;
  used by Theorem 4's algorithm.
* :class:`NaiveConnectivity` — adjacency sets with BFS recomputation; the
  correctness oracle for HDT in tests and the ablation baseline.
"""

from repro.connectivity.union_find import UnionFind
from repro.connectivity.naive import NaiveConnectivity
from repro.connectivity.euler_tour import EulerTourForest
from repro.connectivity.hdt import HDTConnectivity

__all__ = [
    "UnionFind",
    "NaiveConnectivity",
    "EulerTourForest",
    "HDTConnectivity",
]
