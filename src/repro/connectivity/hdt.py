"""Fully-dynamic connectivity of Holm, de Lichtenberg & Thorup (JACM 2001).

This is the CC structure the paper plugs into Theorem 4: ``EdgeInsert``,
``EdgeRemove`` and ``CC-Id`` all in O(log^2 n) amortized.

The classic construction: every edge carries a *level* >= 0.  Forest ``F_i``
is a spanning forest of the subgraph of edges with level >= i, and
``F_0 ⊇ F_1 ⊇ ...``.  Inserted edges start at level 0 (tree edge if the
endpoints were disconnected, non-tree otherwise).  Deleting a tree edge of
level ``l`` cuts it from ``F_0..F_l`` and searches levels ``l .. 0`` for a
replacement: at level ``i`` the smaller half ``T_v`` first has its level-i
tree edges pushed to level ``i+1`` (amortization), then its incident level-i
non-tree edges are scanned — an edge leaving ``T_v`` reconnects the forest,
an edge staying inside is promoted to level ``i+1``.  Pushing only the
smaller half keeps every level-``i`` component at <= n / 2^i vertices, so
levels stay O(log n) without any explicit cap.

Vertices are arbitrary hashable labels (the clusterer uses grid-cell
coordinate tuples).  Component ids are the identities of level-0 ETT roots:
stable between structural changes, which is exactly the consistency the
C-group-by query needs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterator, List, Optional, Set, Tuple

from repro.connectivity.euler_tour import EulerTourForest


def _key(u: Hashable, v: Hashable) -> FrozenSet[Hashable]:
    return frozenset((u, v))


class HDTConnectivity:
    """Poly-log fully-dynamic connectivity over hashable vertices."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._forests: List[EulerTourForest] = [EulerTourForest(seed)]
        self._edge_level: Dict[FrozenSet[Hashable], int] = {}
        self._is_tree: Dict[FrozenSet[Hashable], bool] = {}
        # Non-tree adjacency: vertex -> level -> neighbor set.
        self._adj: Dict[Hashable, List[Set[Hashable]]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __contains__(self, v: Hashable) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def vertices(self) -> Iterator[Hashable]:
        return iter(self._adj)

    @property
    def edge_count(self) -> int:
        return len(self._edge_level)

    @property
    def level_count(self) -> int:
        return len(self._forests)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return _key(u, v) in self._edge_level

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------

    def add_vertex(self, v: Hashable) -> None:
        if v in self._adj:
            raise KeyError(f"vertex {v!r} already present")
        self._adj[v] = []
        self._forests[0].ensure_vertex(v)

    def remove_vertex(self, v: Hashable) -> None:
        """Remove an isolated vertex (raises if it still has edges)."""
        if any(self._adj[v]):
            raise ValueError(f"vertex {v!r} still has non-tree edges")
        for forest in self._forests:
            if v in forest:
                forest.remove_vertex(v)  # raises if it has tree edges
        del self._adj[v]

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def insert_edge(self, u: Hashable, v: Hashable) -> None:
        if u == v:
            raise ValueError("self-loops are not allowed")
        key = _key(u, v)
        if key in self._edge_level:
            raise KeyError(f"edge ({u!r}, {v!r}) already present")
        if u not in self._adj:
            self.add_vertex(u)
        if v not in self._adj:
            self.add_vertex(v)
        self._edge_level[key] = 0
        forest = self._forests[0]
        if not forest.connected(u, v):
            self._is_tree[key] = True
            forest.link(u, v)
            forest.set_level_flag(u, v, True)
        else:
            self._is_tree[key] = False
            self._nontree_add(u, v, 0)

    def delete_edge(self, u: Hashable, v: Hashable) -> None:
        key = _key(u, v)
        level = self._edge_level.pop(key, None)
        if level is None:
            raise KeyError(f"edge ({u!r}, {v!r}) not present")
        if not self._is_tree.pop(key):
            self._nontree_remove(u, v, level)
            return
        for i in range(level + 1):
            self._forests[i].cut(u, v)
        for i in range(level, -1, -1):
            if self._replace(u, v, i):
                return

    def connected(self, u: Hashable, v: Hashable) -> bool:
        return self._forests[0].connected(u, v)

    def component_id(self, v: Hashable) -> int:
        """Component id, stable until the next structural change."""
        return id(self._forests[0].find_root(v))

    def component_size(self, v: Hashable) -> int:
        return self._forests[0].tree_size(v)

    def component_vertices(self, v: Hashable) -> List[Hashable]:
        return self._forests[0].tour_vertices(v)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _forest(self, i: int) -> EulerTourForest:
        while len(self._forests) <= i:
            self._forests.append(EulerTourForest(self._seed))
        return self._forests[i]

    def _adj_level(self, v: Hashable, i: int) -> Set[Hashable]:
        levels = self._adj[v]
        while len(levels) <= i:
            levels.append(set())
        return levels[i]

    def _nontree_add(self, u: Hashable, v: Hashable, i: int) -> None:
        forest = self._forest(i)
        for a, b in ((u, v), (v, u)):
            nbrs = self._adj_level(a, i)
            nbrs.add(b)
            if len(nbrs) == 1:
                forest.set_nontree_flag(a, True)

    def _nontree_remove(self, u: Hashable, v: Hashable, i: int) -> None:
        forest = self._forests[i]
        for a, b in ((u, v), (v, u)):
            nbrs = self._adj[a][i]
            nbrs.discard(b)
            if not nbrs:
                forest.set_nontree_flag(a, False)

    def _replace(self, u: Hashable, v: Hashable, i: int) -> bool:
        """Search level ``i`` for a replacement of deleted tree edge (u,v).

        Returns True if the two halves were reconnected.
        """
        forest = self._forests[i]
        root_u = forest.find_root(u)
        root_v = forest.find_root(v)
        if root_u.vcount <= root_v.vcount:
            small_root = root_u
        else:
            small_root = root_v

        # Amortization step: push the small side's level-i tree edges up.
        while True:
            edge = forest.find_level_edge(small_root)
            if edge is None:
                break
            x, y = edge
            forest.set_level_flag(x, y, False)
            upper = self._forest(i + 1)
            upper.ensure_vertex(x)
            upper.ensure_vertex(y)
            upper.link(x, y)
            upper.set_level_flag(x, y, True)
            self._edge_level[_key(x, y)] = i + 1

        # Scan level-i non-tree edges incident to the small side.
        while True:
            x = forest.find_nontree_vertex(small_root)
            if x is None:
                return False
            nbrs = self._adj[x][i]
            while nbrs:
                y = next(iter(nbrs))
                if forest.find_root(y) is small_root:
                    # Both endpoints inside the small side: promote.
                    self._nontree_remove(x, y, i)
                    self._nontree_add(x, y, i + 1)
                    self._edge_level[_key(x, y)] = i + 1
                else:
                    # Crosses the split: this is the replacement edge.
                    self._nontree_remove(x, y, i)
                    key = _key(x, y)
                    self._is_tree[key] = True
                    self._edge_level[key] = i
                    for j in range(i + 1):
                        lower = self._forest(j)
                        lower.ensure_vertex(x)
                        lower.ensure_vertex(y)
                        lower.link(x, y)
                    self._forests[i].set_level_flag(x, y, True)
                    return True
