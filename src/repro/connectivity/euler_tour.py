"""Euler-tour trees over randomized treaps with parent pointers.

An Euler-tour tree (ETT) represents each tree of a forest as the cyclic
Euler tour of its edges, stored as a balanced binary tree keyed by tour
position.  We use the representation in which the tour contains

* one **self-arc** node per vertex (also serving as the vertex's handle), and
* two **arc** nodes per tree edge (u, v): one for each direction.

``link`` and ``cut`` then reduce to O(log n) splits and merges.  Each node
carries the aggregate bits the HDT connectivity structure needs:

* ``flag_nontree`` (self-arcs): the vertex has non-tree edges at this level;
* ``flag_level`` (arcs): the tree edge has level exactly this forest's level;

with subtree ORs maintained bottom-up, so HDT can find a flagged node inside
any subtree in O(log n).

The forest is generic over hashable vertex labels.  One ``EulerTourForest``
instance is one level of the HDT hierarchy (or a standalone dynamic forest).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterator, List, Optional, Tuple


class EttNode:
    """A single position of an Euler tour (self-arc or directed arc)."""

    __slots__ = (
        "prio",
        "left",
        "right",
        "parent",
        "count",
        "vcount",
        "vertex",
        "edge",
        "flag_nontree",
        "flag_level",
        "sub_nontree",
        "sub_level",
    )

    def __init__(
        self,
        rng: random.Random,
        vertex: Optional[Hashable] = None,
        edge: Optional[Tuple[Hashable, Hashable]] = None,
    ) -> None:
        self.prio = rng.random()
        self.left: Optional[EttNode] = None
        self.right: Optional[EttNode] = None
        self.parent: Optional[EttNode] = None
        self.count = 1  # total nodes in subtree
        self.vcount = 1 if vertex is not None else 0  # self-arcs in subtree
        self.vertex = vertex  # set iff self-arc
        self.edge = edge  # set iff directed arc (u, v)
        self.flag_nontree = False
        self.flag_level = False
        self.sub_nontree = False
        self.sub_level = False

    def pull(self) -> None:
        """Recompute aggregates from children (local)."""
        count = 1
        vcount = 1 if self.vertex is not None else 0
        nontree = self.flag_nontree
        level = self.flag_level
        left = self.left
        if left is not None:
            count += left.count
            vcount += left.vcount
            nontree = nontree or left.sub_nontree
            level = level or left.sub_level
        right = self.right
        if right is not None:
            count += right.count
            vcount += right.vcount
            nontree = nontree or right.sub_nontree
            level = level or right.sub_level
        self.count = count
        self.vcount = vcount
        self.sub_nontree = nontree
        self.sub_level = level

    def pull_up(self) -> None:
        """Recompute aggregates on the path from this node to the root."""
        node: Optional[EttNode] = self
        while node is not None:
            node.pull()
            node = node.parent

    def root(self) -> "EttNode":
        node = self
        while node.parent is not None:
            node = node.parent
        return node


def _merge(a: Optional[EttNode], b: Optional[EttNode]) -> Optional[EttNode]:
    """Concatenate two treaps (all of ``a`` before all of ``b``)."""
    if a is None:
        return b
    if b is None:
        return a
    if a.prio > b.prio:
        right = _merge(a.right, b)
        a.right = right
        if right is not None:
            right.parent = a
        a.pull()
        a.parent = None
        return a
    left = _merge(a, b.left)
    b.left = left
    if left is not None:
        left.parent = b
    b.pull()
    b.parent = None
    return b


def _detach_child(parent: EttNode, child: EttNode) -> None:
    if parent.left is child:
        parent.left = None
    else:
        parent.right = None
    child.parent = None


def _split(x: EttNode, after: bool) -> Tuple[Optional[EttNode], Optional[EttNode]]:
    """Split the treap containing ``x`` into (prefix, suffix).

    With ``after=True`` the prefix ends at ``x``; with ``after=False`` the
    suffix begins at ``x``.
    """
    if after:
        left: Optional[EttNode] = x
        right = x.right
        if right is not None:
            right.parent = None
            x.right = None
            x.pull()
    else:
        left = x.left
        right = x
        if left is not None:
            left.parent = None
            x.left = None
            x.pull()
    # Fold ancestors into the two sides, walking up from x.
    node = x
    parent = node.parent
    if parent is not None:
        came_from_left = parent.left is node
        _detach_child(parent, node)
    while parent is not None:
        grand = parent.parent
        if grand is not None:
            next_from_left = grand.left is parent
            _detach_child(grand, parent)
        else:
            next_from_left = False
        if came_from_left:
            # parent (and its right subtree) come after x's side.
            parent.left = None
            parent.pull()
            right = _merge(right, parent)
        else:
            parent.right = None
            parent.pull()
            left = _merge(parent, left)
        node = parent
        parent = grand
        came_from_left = next_from_left
    if left is not None:
        left.parent = None
    if right is not None:
        right.parent = None
    return left, right


def _position(x: EttNode) -> int:
    """In-order index of ``x`` within its treap (0-based)."""
    pos = x.left.count if x.left is not None else 0
    node = x
    parent = node.parent
    while parent is not None:
        if parent.right is node:
            pos += 1 + (parent.left.count if parent.left is not None else 0)
        node = parent
        parent = node.parent
    return pos


class EulerTourForest:
    """A dynamic forest over hashable vertices with ETT representation."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)
        self._vnode: Dict[Hashable, EttNode] = {}
        # Arcs of the *tree edges currently in this forest*:
        self._arcs: Dict[Tuple[Hashable, Hashable], EttNode] = {}

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------

    def __contains__(self, v: Hashable) -> bool:
        return v in self._vnode

    def vertices(self) -> Iterator[Hashable]:
        return iter(self._vnode)

    def vertex_node(self, v: Hashable) -> EttNode:
        return self._vnode[v]

    def ensure_vertex(self, v: Hashable) -> EttNode:
        """Register ``v`` (as an isolated singleton tour) if unseen."""
        node = self._vnode.get(v)
        if node is None:
            node = EttNode(self._rng, vertex=v)
            self._vnode[v] = node
        return node

    def remove_vertex(self, v: Hashable) -> None:
        """Remove an isolated vertex (raises if it has tree edges)."""
        node = self._vnode[v]
        if node.root().count != 1:
            raise ValueError(f"vertex {v!r} is not isolated in this forest")
        del self._vnode[v]

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def find_root(self, v: Hashable) -> EttNode:
        """Treap root of the tour containing ``v`` (canonical per tree)."""
        return self._vnode[v].root()

    def connected(self, u: Hashable, v: Hashable) -> bool:
        return self.find_root(u) is self.find_root(v)

    def tree_size(self, v: Hashable) -> int:
        """Number of vertices in the tree containing ``v``."""
        return self.find_root(v).vcount

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return (u, v) in self._arcs

    def tour_vertices(self, v: Hashable) -> List[Hashable]:
        """All vertices in the tree containing ``v`` (in tour order)."""
        result: List[Hashable] = []
        stack = [self.find_root(v)]
        while stack:
            node = stack.pop()
            if node.vertex is not None:
                result.append(node.vertex)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return result

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _reroot(self, v: Hashable) -> EttNode:
        """Rotate the tour of ``v``'s tree to start at ``v``'s self-arc."""
        x = self._vnode[v]
        before, rest = _split(x, after=False)
        return _merge(rest, before)  # type: ignore[return-value]

    def link(self, u: Hashable, v: Hashable) -> None:
        """Add tree edge (u, v); the endpoints must be disconnected."""
        if (u, v) in self._arcs or (v, u) in self._arcs:
            raise KeyError(f"edge ({u!r}, {v!r}) already in forest")
        nu = self.ensure_vertex(u)
        nv = self.ensure_vertex(v)
        if nu.root() is nv.root():
            raise ValueError(f"link({u!r}, {v!r}): endpoints already connected")
        tour_u = self._reroot(u)
        tour_v = self._reroot(v)
        arc_uv = EttNode(self._rng, edge=(u, v))
        arc_vu = EttNode(self._rng, edge=(v, u))
        self._arcs[(u, v)] = arc_uv
        self._arcs[(v, u)] = arc_vu
        _merge(_merge(_merge(tour_u, arc_uv), tour_v), arc_vu)

    def cut(self, u: Hashable, v: Hashable) -> None:
        """Remove tree edge (u, v), splitting its tree in two."""
        a1 = self._arcs.pop((u, v), None)
        if a1 is None:
            u, v = v, u
            a1 = self._arcs.pop((u, v), None)
            if a1 is None:
                raise KeyError(f"edge ({u!r}, {v!r}) not in forest")
        a2 = self._arcs.pop((v, u))
        if _position(a1) > _position(a2):
            a1, a2 = a2, a1
        outer_left, rest = _split(a1, after=False)
        middle, outer_right = _split(a2, after=True)
        # middle = a1 ... a2; strip the two arc nodes off its ends.
        _, inner = _split(a1, after=True)
        if inner is not None:
            inner2, _ = _split(a2, after=False)
        _merge(outer_left, outer_right)

    # ------------------------------------------------------------------
    # HDT flag support
    # ------------------------------------------------------------------

    def set_nontree_flag(self, v: Hashable, value: bool) -> None:
        """Mark whether vertex ``v`` has non-tree edges at this level."""
        node = self.ensure_vertex(v)
        if node.flag_nontree != value:
            node.flag_nontree = value
            node.pull_up()

    def set_level_flag(self, u: Hashable, v: Hashable, value: bool) -> None:
        """Mark whether tree edge (u, v) has level == this forest's level.

        The flag is applied to both directed arcs, so callers may use
        either endpoint order to set or clear it.
        """
        arc = self._arcs.get((u, v))
        if arc is None:
            raise KeyError(f"edge ({u!r}, {v!r}) not in forest")
        for node in (arc, self._arcs[(v, u)]):
            if node.flag_level != value:
                node.flag_level = value
                node.pull_up()

    def find_nontree_vertex(self, root: EttNode) -> Optional[Hashable]:
        """Some vertex with the non-tree flag inside the given tree."""
        if not root.sub_nontree:
            return None
        node = root
        while True:
            if node.flag_nontree:
                return node.vertex
            if node.left is not None and node.left.sub_nontree:
                node = node.left
            else:
                assert node.right is not None
                node = node.right

    def find_level_edge(self, root: EttNode) -> Optional[Tuple[Hashable, Hashable]]:
        """Some tree edge flagged level == this forest, inside the tree."""
        if not root.sub_level:
            return None
        node = root
        while True:
            if node.flag_level:
                return node.edge
            if node.left is not None and node.left.sub_level:
                node = node.left
            else:
                assert node.right is not None
                node = node.right
