"""Disjoint-set forest (Tarjan) over arbitrary hashable items.

This is the semi-dynamic CC structure of the paper's Theorem 1 proof: it
supports ``EdgeInsert`` (union) and ``CC-Id`` (find) in inverse-Ackermann
amortized time, but no edge removal.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator


class UnionFind:
    """Union-find with union by rank and full path compression.

    Items are registered lazily: ``find``/``union`` on an unseen item
    creates a singleton set for it.
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._components = 0

    def __len__(self) -> int:
        """Number of registered items."""
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def items(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint sets among registered items."""
        return self._components

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton if unseen (no-op otherwise)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._components += 1

    def find(self, item: Hashable) -> Hashable:
        """Canonical representative of ``item``'s set (the CC id)."""
        parent = self._parent
        if item not in parent:
            self.add(item)
            return item
        root = item
        while parent[root] is not root:
            root = parent[root]
        while parent[item] is not root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra = self.find(a)
        rb = self.find(b)
        if ra is rb or ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._components -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are currently in the same set."""
        return self.find(a) == self.find(b)
