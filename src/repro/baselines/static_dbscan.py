"""Static exact DBSCAN (Ester et al. 1996) — the correctness oracle.

Two interchangeable implementations of the unique exact clustering:

* :func:`dbscan_brute` — O(n^2), no index, the simplest possible statement
  of the definition; trusted reference for everything else.
* :func:`dbscan_grid` — the grid-accelerated version (cells of side
  eps/sqrt(d), candidate neighbors from close cells only); used when the
  tests need a faster oracle.

Both return a :class:`StaticClustering` with clusters as sets of input
indices, the core-point set, and the noise set.  Non-core (border) points
may appear in several clusters, exactly as the paper defines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.connectivity.union_find import UnionFind
from repro.core.grid import Grid
from repro.geometry.points import sq_dist


@dataclass
class StaticClustering:
    """A concrete clustering over points addressed by input index."""

    clusters: List[Set[int]] = field(default_factory=list)
    core: Set[int] = field(default_factory=set)
    noise: Set[int] = field(default_factory=set)

    def canonical(self) -> FrozenSet[FrozenSet[int]]:
        """Order-independent form for equality comparisons."""
        return frozenset(frozenset(c) for c in self.clusters)

    def cluster_of_core(self, idx: int) -> Set[int]:
        """The unique cluster containing a core point."""
        for cluster in self.clusters:
            if idx in cluster:
                return cluster
        raise KeyError(f"index {idx} is not in any cluster")

    def memberships(self, idx: int) -> List[int]:
        """Indices of all clusters containing the point."""
        return [i for i, c in enumerate(self.clusters) if idx in c]


def _assemble(
    n: int,
    core: Set[int],
    core_uf: UnionFind,
    border_links: Dict[int, Set[int]],
) -> StaticClustering:
    """Build clusters from the core partition plus border attachments.

    ``border_links[p]`` holds, for non-core ``p``, the core points within
    the attachment radius.
    """
    by_root: Dict[object, Set[int]] = {}
    for idx in core:
        by_root.setdefault(core_uf.find(idx), set()).add(idx)
    clusters = list(by_root.values())
    root_index = {core_uf.find(next(iter(c))): i for i, c in enumerate(clusters)}
    noise: Set[int] = set()
    for idx in range(n):
        if idx in core:
            continue
        anchors = border_links.get(idx, set())
        if not anchors:
            noise.add(idx)
            continue
        for anchor in {core_uf.find(a) for a in anchors}:
            clusters[root_index[anchor]].add(idx)
    return StaticClustering(clusters=clusters, core=core, noise=noise)


def dbscan_brute(
    points: Sequence[Sequence[float]], eps: float, minpts: int
) -> StaticClustering:
    """Exact DBSCAN by definition, O(n^2)."""
    n = len(points)
    sq_eps = eps * eps
    neighbor_counts = [0] * n
    pairs: List[Tuple[int, int]] = []
    for i in range(n):
        neighbor_counts[i] += 1  # the point itself
        for j in range(i + 1, n):
            if sq_dist(points[i], points[j]) <= sq_eps:
                neighbor_counts[i] += 1
                neighbor_counts[j] += 1
                pairs.append((i, j))
    core = {i for i in range(n) if neighbor_counts[i] >= minpts}
    uf = UnionFind()
    for i in core:
        uf.add(i)
    border_links: Dict[int, Set[int]] = {}
    for i, j in pairs:
        i_core = i in core
        j_core = j in core
        if i_core and j_core:
            uf.union(i, j)
        elif i_core:
            border_links.setdefault(j, set()).add(i)
        elif j_core:
            border_links.setdefault(i, set()).add(j)
    return _assemble(n, core, uf, border_links)


def dbscan_grid(
    points: Sequence[Sequence[float]], eps: float, minpts: int
) -> StaticClustering:
    """Exact DBSCAN accelerated with the paper's grid (same output)."""
    n = len(points)
    if n == 0:
        return StaticClustering()
    dim = len(points[0])
    grid = Grid(eps, dim, rho=0.0)
    sq_eps = eps * eps
    cells: Dict[tuple, List[int]] = {}
    for idx, p in enumerate(points):
        cells.setdefault(grid.cell_of(p), []).append(idx)
    neighbor_cells: Dict[tuple, List[tuple]] = {
        cell: grid.neighbors_of(cell, cells) for cell in cells
    }

    def candidates(cell: tuple):
        yield from cells[cell]
        for other in neighbor_cells[cell]:
            yield from cells[other]

    core: Set[int] = set()
    for cell, members in cells.items():
        if len(members) >= minpts:
            core.update(members)
            continue
        for idx in members:
            p = points[idx]
            count = 0
            for j in candidates(cell):
                if sq_dist(p, points[j]) <= sq_eps:
                    count += 1
                    if count >= minpts:
                        break
            if count >= minpts:
                core.add(idx)

    uf = UnionFind()
    for idx in core:
        uf.add(idx)
    border_links: Dict[int, Set[int]] = {}
    for cell, members in cells.items():
        for idx in members:
            p = points[idx]
            idx_core = idx in core
            for j in candidates(cell):
                if j == idx:
                    continue
                if sq_dist(p, points[j]) > sq_eps:
                    continue
                if idx_core and j in core:
                    uf.union(idx, j)
                elif not idx_core and j in core:
                    border_links.setdefault(idx, set()).add(j)
    return _assemble(n, core, uf, border_links)
