"""Static rho-approximate DBSCAN (Gan & Tao, SIGMOD 2015).

The approximate semantics admit many legal outputs.  This module computes
one *canonical legal instantiation*: every "don't care" is resolved
**positively** —

* core graph edges exist between core points within ``(1+rho) * eps``
  (mandatory edges at ``<= eps`` are a subset, so the CC requirement holds);
* a border point joins every cluster with a core point within
  ``(1+rho) * eps`` (mandatory attachments at ``<= eps`` are a subset).

Core status itself is exact (``|B(p, eps)| >= MinPts``), per the
rho-approximate definition.  The result is therefore exact-DBSCAN core
points with ``(1+rho) eps`` connectivity — the upper edge of the sandwich
for the *approximate* (not double-approximate) semantics, and a useful
fixture for validation tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.baselines.static_dbscan import StaticClustering, _assemble
from repro.connectivity.union_find import UnionFind
from repro.geometry.points import sq_dist


def rho_dbscan_static(
    points: Sequence[Sequence[float]], eps: float, minpts: int, rho: float
) -> StaticClustering:
    """One legal rho-approximate DBSCAN clustering (don't-cares = yes)."""
    n = len(points)
    sq_eps = eps * eps
    relaxed = eps * (1.0 + rho)
    sq_relaxed = relaxed * relaxed
    counts = [0] * n
    near_pairs: List[tuple] = []  # pairs within the relaxed radius
    for i in range(n):
        counts[i] += 1
        for j in range(i + 1, n):
            d2 = sq_dist(points[i], points[j])
            if d2 <= sq_eps:
                counts[i] += 1
                counts[j] += 1
            if d2 <= sq_relaxed:
                near_pairs.append((i, j))
    core = {i for i in range(n) if counts[i] >= minpts}
    uf = UnionFind()
    for i in core:
        uf.add(i)
    border_links: Dict[int, Set[int]] = {}
    for i, j in near_pairs:
        i_core = i in core
        j_core = j in core
        if i_core and j_core:
            uf.union(i, j)
        elif i_core:
            border_links.setdefault(j, set()).add(i)
        elif j_core:
            border_links.setdefault(i, set()).add(j)
    return _assemble(n, core, uf, border_links)
