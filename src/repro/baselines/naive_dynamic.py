"""The "obvious attempt" baseline the paper's introduction dismisses.

Store the points, mark the clustering dirty on every update, and recompute
exact DBSCAN from scratch (grid-accelerated) on the first query after a
change.  Updates are O(1); queries are Omega(n) — exactly the trade-off
the C-group-by formulation is designed to expose.  Useful as

* a drop-in oracle for small integration tests (it is trivially correct),
* the baseline showing why "fast updates + recompute on demand" does not
  meet the paper's query bar (see ``benchmarks/test_table1_hardness.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.baselines.static_dbscan import StaticClustering, dbscan_grid
from repro.core.bulk import SequentialBulkMixin, SequentialQueryMixin
from repro.errors import ConfigError, UnknownPointError
from repro.core.framework import (
    CGroupByResult,
    Clustering,
    canonical_cgroup_result,
    validated_query_pids,
)
from repro.geometry.points import Point


class RecomputeClusterer(SequentialBulkMixin, SequentialQueryMixin):
    """Exact DBSCAN with O(1) updates and recompute-on-query semantics.

    The inherited sequential ``insert_many`` / ``delete_many`` are
    already optimal here: each update is O(1) cache invalidation, and
    ``cgroup_by_many`` shares the one recompute-on-demand ``cgroup_by``.
    """

    def __init__(self, eps: float, minpts: int, dim: int = 2) -> None:
        if eps <= 0:
            raise ConfigError(f"eps must be positive, got {eps}")
        if minpts < 1:
            raise ConfigError(f"minpts must be >= 1, got {minpts}")
        self.eps = eps
        self.minpts = minpts
        self.dim = dim
        self._points: Dict[int, Point] = {}
        self._next_id = 0
        self._cache: Optional[StaticClustering] = None
        self._cache_keys: List[int] = []
        self.recomputations = 0  # instrumentation for benchmarks

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, pid: int) -> bool:
        return pid in self._points

    def point(self, pid: int) -> Point:
        return self._points[pid]

    def ids(self) -> Iterable[int]:
        return self._points.keys()

    # ------------------------------------------------------------------
    # Updates: O(1), just invalidate
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float]) -> int:
        if len(point) != self.dim:
            raise ConfigError(
                f"point has dimension {len(point)}, expected {self.dim}"
            )
        pid = self._next_id
        self._next_id += 1
        self._points[pid] = tuple(float(x) for x in point)
        self._cache = None
        return pid

    def delete(self, pid: int) -> None:
        if pid not in self._points:
            raise UnknownPointError(f"point id {pid} is not live")
        del self._points[pid]
        self._cache = None

    # ------------------------------------------------------------------
    # Queries: recompute when dirty
    # ------------------------------------------------------------------

    def _refresh(self) -> StaticClustering:
        if self._cache is None:
            self._cache_keys = sorted(self._points)
            self._cache = dbscan_grid(
                [self._points[k] for k in self._cache_keys], self.eps, self.minpts
            )
            self.recomputations += 1
        return self._cache

    def is_core(self, pid: int) -> bool:
        ref = self._refresh()
        return self._cache_keys.index(pid) in ref.core

    def cgroup_by(self, pids: Iterable[int]) -> CGroupByResult:
        pid_list = validated_query_pids(pids, self._points)
        ref = self._refresh()
        position = {k: i for i, k in enumerate(self._cache_keys)}
        groups: Dict[int, List[int]] = {}
        noise: List[int] = []
        for pid in pid_list:
            idx = position[pid]
            memberships = [
                ci for ci, cluster in enumerate(ref.clusters) if idx in cluster
            ]
            if not memberships:
                noise.append(pid)
            for ci in memberships:
                groups.setdefault(ci, []).append(pid)
        return canonical_cgroup_result(groups.values(), noise)

    def clusters(self) -> Clustering:
        ref = self._refresh()
        back = dict(enumerate(self._cache_keys))
        return Clustering(
            clusters=[{back[i] for i in c} for c in ref.clusters],
            noise={back[i] for i in ref.noise},
        )

    def same_cluster(self, pid_a: int, pid_b: int) -> bool:
        validated_query_pids((pid_a, pid_b), self._points)
        ref = self._refresh()
        position = {k: i for i, k in enumerate(self._cache_keys)}
        a, b = position[pid_a], position[pid_b]
        return any(a in c and b in c for c in ref.clusters)
