"""Reference and competitor algorithms.

* :func:`dbscan_brute` / :func:`dbscan_grid` — static exact DBSCAN
  (Ester et al. 1996), used as the correctness oracle.
* :func:`rho_dbscan_static` — static rho-approximate DBSCAN (Gan & Tao
  2015), one legal instantiation of the approximate semantics.
* :class:`IncDBSCAN` — the dynamic competitor (Ester et al. 1998) the
  paper benchmarks against.
"""

from repro.baselines.static_dbscan import StaticClustering, dbscan_brute, dbscan_grid
from repro.baselines.static_rho import rho_dbscan_static
from repro.baselines.incdbscan import IncDBSCAN

__all__ = [
    "StaticClustering",
    "dbscan_brute",
    "dbscan_grid",
    "rho_dbscan_static",
    "IncDBSCAN",
]
