"""IncDBSCAN (Ester et al., VLDB 1998) — the dynamic competitor.

Maintains *exact* DBSCAN clusters under insertions and deletions:

* **Insertion** — one range query around the new point updates neighbor
  counts; points that just reached ``MinPts`` (plus the new point, if core)
  have their neighborhoods re-queried and their clusters merged.  Merges
  are recorded in a union-find over cluster ids — the paper's "merging
  history" — so no points are relabelled.
* **Deletion** — neighbor counts are decremented; core points adjacent to
  the deleted point or to points that just lost core status become *seeds*.
  Same-cluster seeds launch round-robin BFS threads over the core graph
  (one range query per expanded point); threads that touch merge, and if
  more than one thread survives to exhaustion the cluster has split and
  every surviving thread relabels its points.  This BFS is exactly the
  expense the paper's experiments expose.
* **C-group-by query** — core points are grouped by their (find-resolved)
  cluster id; each non-core query point performs one range query to find
  its adjacent core points.

Range queries run on the R-tree substrate (:mod:`repro.geometry.rtree`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.connectivity.union_find import UnionFind
from repro.core.bulk import SequentialBulkMixin, SequentialQueryMixin
from repro.errors import ConfigError, UnknownPointError
from repro.core.framework import (
    CGroupByResult,
    Clustering,
    canonical_cgroup_result,
    validated_query_pids,
)
from repro.geometry.points import Point
from repro.geometry.rtree import RTree


class IncDBSCAN(SequentialBulkMixin, SequentialQueryMixin):
    """Incremental exact DBSCAN with the C-group-by query interface.

    ``insert_many`` / ``delete_many`` / ``cgroup_by_many`` fall back to
    the sequential loops (IncDBSCAN has no batch formulation), keeping
    the baseline runner-compatible with batched workloads.
    """

    def __init__(self, eps: float, minpts: int, dim: int = 2) -> None:
        if eps <= 0:
            raise ConfigError(f"eps must be positive, got {eps}")
        if minpts < 1:
            raise ConfigError(f"minpts must be >= 1, got {minpts}")
        self.eps = eps
        self.minpts = minpts
        self.dim = dim
        self._sq_eps = eps * eps
        self._tree = RTree(dim)
        self._points: Dict[int, Point] = {}
        self._count: Dict[int, int] = {}  # |B(p, eps)| including p itself
        self._label: Dict[int, int] = {}  # core point -> cluster id
        self._merges = UnionFind()  # merging history over cluster ids
        self._next_id = 0
        self._next_cluster = 0
        self.range_queries = 0  # instrumentation for the benchmarks

    # ------------------------------------------------------------------
    # Point store
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, pid: int) -> bool:
        return pid in self._points

    def point(self, pid: int) -> Point:
        return self._points[pid]

    def ids(self) -> Iterable[int]:
        return self._points.keys()

    def is_core(self, pid: int) -> bool:
        return self._count[pid] >= self.minpts

    def _range(self, point: Sequence[float]) -> List[int]:
        self.range_queries += 1
        return self._tree.ball_ids(point, self._sq_eps)

    def _fresh_cluster(self) -> int:
        cid = self._next_cluster
        self._next_cluster += 1
        self._merges.add(cid)
        return cid

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, point: Sequence[float]) -> int:
        if len(point) != self.dim:
            raise ConfigError(
                f"point has dimension {len(point)}, expected {self.dim}"
            )
        pid = self._next_id
        self._next_id += 1
        pt = tuple(float(x) for x in point)
        neighbors = self._range(pt)
        self._points[pid] = pt
        self._tree.insert(pid, pt)
        self._count[pid] = len(neighbors) + 1

        newly_core: List[int] = []
        for q in neighbors:
            self._count[q] += 1
            if self._count[q] == self.minpts:
                newly_core.append(q)
        if self._count[pid] >= self.minpts:
            newly_core.append(pid)

        # Every newly-core point connects the clusters of its core neighbors.
        for q in newly_core:
            if q == pid:
                q_neighbors = neighbors
            else:
                q_neighbors = [x for x in self._range(self._points[q]) if x != q]
            anchor: Optional[int] = self._label.get(q)
            for x in q_neighbors:
                cid = self._label.get(x)
                if cid is None:
                    continue
                if anchor is None:
                    anchor = cid
                else:
                    self._merges.union(anchor, cid)
            if anchor is None:
                anchor = self._fresh_cluster()
            self._label[q] = anchor
        return pid

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, pid: int) -> None:
        if pid not in self._points:
            raise UnknownPointError(f"point id {pid} is not live")
        pt = self._points.pop(pid)
        self._tree.delete(pid)
        was_core = self._count.pop(pid) >= self.minpts
        self._label.pop(pid, None)
        neighbors = self._range(pt)

        lost_core: List[int] = []
        for q in neighbors:
            self._count[q] -= 1
            if self._count[q] == self.minpts - 1 and q in self._label:
                lost_core.append(q)
        for q in lost_core:
            self._label.pop(q, None)

        # Seeds: core points adjacent to the removed or demoted points.
        seeds: Set[int] = set()
        if was_core:
            seeds.update(q for q in neighbors if q in self._label)
        for q in lost_core:
            for x in self._range(self._points[q]):
                if x in self._label:
                    seeds.add(x)
        if not seeds:
            return

        by_cluster: Dict[int, List[int]] = {}
        for s in seeds:
            by_cluster.setdefault(self._merges.find(self._label[s]), []).append(s)
        for group in by_cluster.values():
            if len(group) >= 2:
                self._check_split(group)

    def _check_split(self, seeds: List[int]) -> None:
        """Round-robin multi-source BFS over the core graph (Section 3)."""
        owner: Dict[int, int] = {}
        thread_uf = UnionFind()
        queues: Dict[int, Deque[int]] = {}
        visited: Dict[int, List[int]] = {}
        for t, seed in enumerate(seeds):
            thread_uf.add(t)
            owner[seed] = t
            queues[t] = deque([seed])
            visited[t] = [seed]
        live = len(seeds)

        active = list(queues.keys())
        while live > 1:
            progressed = False
            for t in active:
                root_t = thread_uf.find(t)
                queue = queues.get(root_t)
                if not queue:
                    continue
                progressed = True
                x = queue.popleft()
                for y in self._range(self._points[x]):
                    if y not in self._label or y == x:
                        continue
                    prev = owner.get(y)
                    if prev is None:
                        owner[y] = root_t
                        queue.append(y)
                        visited[root_t].append(y)
                    else:
                        root_prev = thread_uf.find(prev)
                        if root_prev != root_t:
                            # Threads meet: combine them.
                            thread_uf.union(root_prev, root_t)
                            merged = thread_uf.find(root_t)
                            other = root_prev if merged == root_t else root_t
                            queues[merged].extend(queues.pop(other))
                            visited[merged].extend(visited.pop(other))
                            live -= 1
                            root_t = merged
                            queue = queues[merged]
                if live <= 1:
                    break
            if not progressed:
                break

        if live <= 1:
            return  # all threads met: no split happened
        # Each surviving exhausted thread is a spawned cluster: relabel.
        for root, members in visited.items():
            if queues.get(root):
                continue  # unfinished thread (early-terminated): keep label
            cid = self._fresh_cluster()
            for pid in members:
                if pid in self._label:
                    self._label[pid] = cid

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _cluster_ids_of(self, pid: int) -> List[int]:
        cid = self._label.get(pid)
        if cid is not None:
            return [self._merges.find(cid)]
        found: Set[int] = set()
        for q in self._range(self._points[pid]):
            qcid = self._label.get(q)
            if qcid is not None:
                found.add(self._merges.find(qcid))
        return list(found)

    def cgroup_by(self, pids: Iterable[int]) -> CGroupByResult:
        pid_list = validated_query_pids(pids, self._points)
        groups: Dict[int, List[int]] = {}
        noise: List[int] = []
        for pid in pid_list:
            cids = self._cluster_ids_of(pid)
            if not cids:
                noise.append(pid)
            for cid in cids:
                groups.setdefault(cid, []).append(pid)
        return canonical_cgroup_result(groups.values(), noise)

    def clusters(self) -> Clustering:
        result = self.cgroup_by(list(self._points.keys()))
        return Clustering(clusters=result.group_sets(), noise=set(result.noise))

    def same_cluster(self, pid_a: int, pid_b: int) -> bool:
        validated_query_pids((pid_a, pid_b), self._points)
        a = set(self._cluster_ids_of(pid_a))
        if not a:
            return False
        return bool(a.intersection(self._cluster_ids_of(pid_b)))
