"""The hardness side of the paper (Section 6.1).

* :mod:`repro.hardness.usec` — the unit-spherical emptiness checking
  (USEC) problem, its line-separated variant (USEC-LS), brute-force
  solvers, instance generators, and the Lemma 1 divide-and-conquer
  reduction from USEC to USEC-LS.
* :mod:`repro.hardness.reduction` — the Lemma 2 reduction: solving
  USEC-LS with *any* fully-dynamic clustering algorithm, which is what
  makes fully-dynamic rho-approximate DBSCAN hard.
"""

from repro.hardness.usec import (
    USECInstance,
    random_usec_instance,
    random_usec_ls_instance,
    usec_brute,
    usec_ls_brute,
    usec_via_ls_oracle,
)
from repro.hardness.reduction import solve_usec_ls_with_clusterer

__all__ = [
    "USECInstance",
    "random_usec_instance",
    "random_usec_ls_instance",
    "solve_usec_ls_with_clusterer",
    "usec_brute",
    "usec_ls_brute",
    "usec_via_ls_oracle",
]
